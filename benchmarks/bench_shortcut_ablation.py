"""E7 — Propositions 5 and 8 as an ablation: computing the summary of G∞
directly (saturate the full graph, then summarize) versus through the
shortcut (summarize, saturate the small summary, summarize again).

The two must produce isomorphic summaries for the weak and strong kinds, and
the shortcut must saturate a graph that is orders of magnitude smaller.  The
typed kinds are included to exhibit the counter-example behaviour
(Propositions 7 and 10): equality is *not* asserted for them.
"""

from __future__ import annotations

from conftest import print_series

from repro.core.shortcuts import (
    completeness_holds,
    direct_summary_of_saturation,
    shortcut_summary,
)
from repro.datasets.sample import typed_weak_counterexample_graph
from repro.schema.saturation import saturate


def test_shortcut_equals_direct_for_weak(lubm_graph, benchmark):
    comparison = benchmark.pedantic(
        completeness_holds, args=(lubm_graph, "weak"), rounds=1, iterations=1
    )
    assert comparison.equivalent


def test_shortcut_equals_direct_for_strong(lubm_graph, benchmark):
    comparison = benchmark.pedantic(
        completeness_holds, args=(lubm_graph, "strong"), rounds=1, iterations=1
    )
    assert comparison.equivalent


def test_typed_weak_counterexample_detected(benchmark):
    comparison = benchmark.pedantic(
        completeness_holds, args=(typed_weak_counterexample_graph(), "typed_weak"), rounds=1, iterations=1
    )
    assert not comparison.equivalent


def test_direct_path_cost(lubm_graph, benchmark):
    summary = benchmark(direct_summary_of_saturation, lubm_graph, "weak")
    assert len(summary.graph) > 0


def test_shortcut_path_cost(lubm_graph, benchmark):
    summary = benchmark(shortcut_summary, lubm_graph, "weak")
    assert len(summary.graph) > 0


def test_shortcut_saturates_a_much_smaller_graph(lubm_graph, benchmark):
    from repro.core.builders import weak_summary

    summary = weak_summary(lubm_graph)
    saturated_input = saturate(lubm_graph)
    saturated_summary = benchmark.pedantic(saturate, args=(summary.graph,), rounds=1, iterations=1)

    print_series(
        "Saturation workload: direct versus shortcut (weak summary, LUBM)",
        ("graph", "triples before", "triples after saturation"),
        [
            ("input G", len(lubm_graph), len(saturated_input)),
            ("summary W(G)", len(summary.graph), len(saturated_summary)),
        ],
    )
    assert len(summary.graph) * 5 < len(lubm_graph)
    assert len(saturated_summary) < len(saturated_input)
