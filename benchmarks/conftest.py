"""Shared fixtures and reporting helpers for the benchmark suite.

Every benchmark module regenerates one table or figure of the paper's
Section 7 (see DESIGN.md's experiment index).  Since the original experiments
ran on 10-100 million-triple BSBM datasets on a Xeon server and this
reproduction is pure Python, the scales are reduced; the *shapes* (relative
sizes of the four summaries, linear build time, compression ratios) are what
the assertions check, and the printed series are what EXPERIMENTS.md records.
"""

from __future__ import annotations

import pytest

from repro.datasets.bsbm import generate_bsbm
from repro.datasets.lubm import generate_lubm
from repro.datasets.sample import figure2_graph

#: BSBM scales (number of products) used by the Figure 11-13 sweeps.
BSBM_SCALES = (25, 50, 100, 200)


@pytest.fixture(scope="session")
def fig2():
    return figure2_graph()


@pytest.fixture(scope="session")
def bsbm_graphs():
    """One BSBM-like graph per sweep scale, generated once per session."""
    return {scale: generate_bsbm(scale=scale, seed=0) for scale in BSBM_SCALES}


@pytest.fixture(scope="session")
def bsbm_medium(bsbm_graphs):
    """The largest sweep graph, used by single-point benchmarks."""
    return bsbm_graphs[max(BSBM_SCALES)]


@pytest.fixture(scope="session")
def lubm_graph():
    return generate_lubm(universities=1, departments_per_university=3, seed=0)


def print_series(title, header, rows):
    """Print a small fixed-width table under a title (captured by pytest -s)."""
    print()
    print(title)
    print("  " + "  ".join(f"{column:>14}" for column in header))
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(f"{value:>14.5f}")
            else:
                cells.append(f"{value:>14}")
        print("  " + "  ".join(cells))
