"""E3 — Figure 11: number of data nodes (top) and all nodes (bottom) of the
four BSBM summaries, as a function of the input size.

The paper's observations that must hold here:

* the strong and weak summaries have very close node counts, orders of
  magnitude below the input size;
* the typed summaries are also close to each other but noticeably larger
  than the type-first (weak/strong) summaries;
* the number of class nodes dominates the number of data nodes for the weak
  and strong summaries.
"""

from __future__ import annotations

from conftest import BSBM_SCALES, print_series

from repro.analysis.metrics import PAPER_KINDS, summary_size_table


def _rows_for(graphs):
    rows = []
    for scale in BSBM_SCALES:
        rows.extend(summary_size_table(graphs[scale], kinds=PAPER_KINDS))
    return rows


def test_figure11_node_counts(bsbm_graphs, benchmark):
    rows = benchmark.pedantic(_rows_for, args=(bsbm_graphs,), rounds=1, iterations=1)

    print_series(
        "Figure 11 (top): data nodes per summary kind",
        ("input triples", *PAPER_KINDS),
        [
            (
                rows_at[0].input_triples,
                *[row.data_nodes for row in rows_at],
            )
            for rows_at in _group_by_scale(rows)
        ],
    )
    print_series(
        "Figure 11 (bottom): all nodes per summary kind",
        ("input triples", *PAPER_KINDS),
        [
            (
                rows_at[0].input_triples,
                *[row.all_nodes for row in rows_at],
            )
            for rows_at in _group_by_scale(rows)
        ],
    )

    for rows_at in _group_by_scale(rows):
        by_kind = {row.kind: row for row in rows_at}
        input_triples = rows_at[0].input_triples
        # weak and strong are close to each other (within 2x)
        assert by_kind["strong"].data_nodes <= 2 * by_kind["weak"].data_nodes + 5
        # typed summaries are larger than the type-first ones
        assert by_kind["typed_weak"].data_nodes > by_kind["weak"].data_nodes
        assert by_kind["typed_strong"].data_nodes > by_kind["strong"].data_nodes
        # summaries are far smaller than the input
        for kind in PAPER_KINDS:
            assert by_kind[kind].all_nodes < input_triples / 5


def _group_by_scale(rows):
    grouped = {}
    for row in rows:
        grouped.setdefault(row.input_triples, []).append(row)
    ordered = []
    for input_triples in sorted(grouped):
        kind_order = {kind: index for index, kind in enumerate(PAPER_KINDS)}
        ordered.append(sorted(grouped[input_triples], key=lambda row: kind_order[row.kind]))
    return ordered
