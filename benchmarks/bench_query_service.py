"""Summary-guarded query service vs. direct per-query evaluation.

A BSBM-scale graph is registered in a :class:`GraphCatalog` and a mixed
RBGP workload — at least half of it unsatisfiable, the paper's pruning
sweet spot — is answered twice over the same encoded store:

* **guarded** — :class:`QueryService`: dictionary-miss check, then the
  weak-summary guard, then (only for surviving queries) the encoded
  evaluator;
* **direct** — the same encoded evaluator on every query, no guard.

Both sides serve with the same per-query answer limit.  Every query's two
results are compared, and every verdict is checked against the workload's
generation-time ground truth — the run fails on any pruning error, i.e. a
satisfiable query declared empty, the unsoundness Proposition 1 rules out.

With ``--compare-strategies`` the benchmark instead A/B-tests the join
strategies of the encoded evaluator — the legacy per-binding
index-nested-loop (``strategy="nested"``), the statistics-planned
vectorized hash join (``strategy="hash"``), and the sorted-posting-run
merge join (``strategy="merge"``) — on a family-labelled join workload
(satisfiable chains/forks/long chains plus the structurally unsatisfiable
shapes), reporting per-family wall time and verifying the answer sets are
identical query by query across all three strategies.

Usage
-----
::

    PYTHONPATH=src python benchmarks/bench_query_service.py           # full run, 5x gate
    PYTHONPATH=src python benchmarks/bench_query_service.py --quick   # CI smoke run
    PYTHONPATH=src python benchmarks/bench_query_service.py --json out.json
    PYTHONPATH=src python benchmarks/bench_query_service.py --compare-strategies
    PYTHONPATH=src python benchmarks/bench_query_service.py --compare-strategies --quick

The full guarded run exits non-zero when the guarded service is not at
least ``--min-speedup`` (default 5.0) times faster end-to-end, or when any
verdict disagrees with full evaluation on the base graph.  The full
strategy comparison exits non-zero when the hash join is not at least
``--min-join-speedup`` (default 3.0) times faster than the nested loop on
the satisfiable join families, when the merge join is slower than the hash
join on those same families (``--min-merge-ratio``, default 1.0), or on
any answer-set difference.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List

from repro.analysis.harness import format_query_service_report, run_query_service_workload
from repro.datasets.bsbm import generate_bsbm
from repro.service.workload import run_strategy_comparison


def format_strategy_report(report: Dict[str, object]) -> str:
    """Render a :func:`run_strategy_comparison` report for the terminal."""
    lines = [
        f"graph {report['graph']}: {report['triples']} triples, "
        f"{report['queries']} queries on the {report['backend']} backend "
        f"(statistics built in {report['statistics_seconds']:.3f}s)",
        f"  {'family':<18}{'queries':>8}{'nested':>10}{'hash':>10}{'merge':>10}"
        f"{'speedup':>9}{'mrg/hash':>9}{'diffs':>7}",
    ]
    families: Dict[str, Dict[str, object]] = report["families"]  # type: ignore[assignment]
    for family in sorted(families):
        row = families[family]
        lines.append(
            f"  {family:<18}{row['queries']:>8}{row['nested_seconds']:>10.4f}"
            f"{row['hash_seconds']:>10.4f}{row['merge_seconds']:>10.4f}"
            f"{row['speedup']:>8.2f}x{row['merge_vs_hash']:>8.2f}x"
            f"{row['answer_differences']:>7}"
        )
    for label, key in (("satisfiable joins", "satisfiable_join"), ("overall", "overall")):
        aggregate = report[key]
        lines.append(
            f"  {label:<18}{aggregate['queries']:>8}{aggregate['nested_seconds']:>10.4f}"
            f"{aggregate['hash_seconds']:>10.4f}{aggregate['merge_seconds']:>10.4f}"
            f"{aggregate['speedup']:>8.2f}x{aggregate['merge_vs_hash']:>8.2f}x"
        )
    lines.append(
        f"  soundness        : {report['answer_differences']} answer-set differences "
        f"({'OK' if report['sound'] else 'FAILED'})"
    )
    return "\n".join(lines)


def run_compare_strategies(args) -> int:
    scale = 200 if args.quick else args.scale
    per_family = 3 if args.quick else args.per_family
    graph = generate_bsbm(scale=scale, seed=args.seed)
    print(
        f"bsbm scale {scale}: {len(graph)} triples, strategy A/B on the "
        f"{args.backend} backend ({per_family} queries per family)"
    )
    report = run_strategy_comparison(
        graph,
        per_family=per_family,
        seed=args.seed,
        backend=args.backend,
        max_join_size=args.max_join_size,
    )
    print(format_strategy_report(report))

    if args.json_output:
        with open(args.json_output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"report written to {args.json_output}")

    failures: List[str] = []
    if not report["sound"]:
        failures.append(f"{report['answer_differences']} answer-set differences between strategies")
    if report["satisfiable_join"]["queries"] == 0:
        failures.append(
            "workload degenerated: no satisfiable join queries were generated — "
            "the comparison (and its gate) would be vacuous"
        )
    join_speedup = report["satisfiable_join"]["speedup"]
    merge_ratio = report["satisfiable_join"]["merge_vs_hash"]
    if not args.quick and join_speedup < args.min_join_speedup:
        failures.append(
            f"hash-join speedup {join_speedup:.2f}x on the satisfiable join families "
            f"is below the {args.min_join_speedup:.1f}x gate"
        )
    if not args.quick and args.backend == "memory" and merge_ratio < args.min_merge_ratio:
        failures.append(
            f"merge-join is {merge_ratio:.2f}x the hash join on the satisfiable join "
            f"families — below the {args.min_merge_ratio:.2f}x gate (merge must not "
            f"lose to hash on sorted posting runs)"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    if args.quick:
        print("\nPASS: nested-loop, hash-join and merge-join answers identical on every query")
    else:
        print(
            f"\nPASS: hash join {join_speedup:.2f}x faster than the nested loop and "
            f"merge join {merge_ratio:.2f}x the hash join on the satisfiable join "
            f"families at {report['triples']} triples with zero answer-set "
            f"differences (gates: {args.min_join_speedup:.1f}x, {args.min_merge_ratio:.2f}x)"
        )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small input, soundness checks only (CI smoke mode; no speedup gate)",
    )
    parser.add_argument(
        "--compare-strategies",
        action="store_true",
        help="A/B the nested-loop vs hash-join strategies per query family "
        "instead of the guarded-vs-direct comparison",
    )
    parser.add_argument(
        "--backend",
        default="memory",
        choices=["memory", "sqlite"],
        help="store backend for --compare-strategies",
    )
    parser.add_argument(
        "--per-family",
        type=int,
        default=6,
        help="queries per family for --compare-strategies",
    )
    parser.add_argument(
        "--max-join-size",
        type=int,
        default=50_000,
        help="largest satisfiable join (embeddings) sampled per family",
    )
    parser.add_argument(
        "--min-join-speedup",
        type=float,
        default=3.0,
        help="required hash/nested speedup on the satisfiable join families "
        "(full --compare-strategies run only)",
    )
    parser.add_argument(
        "--min-merge-ratio",
        type=float,
        default=1.0,
        help="required hash/merge wall-time ratio on the satisfiable join "
        "families — merge must be at least this fraction as fast as hash "
        "(full --compare-strategies run on the memory backend only)",
    )
    parser.add_argument(
        "--scale", type=int, default=3200, help="BSBM scale for the full run (3200 ≈ 110k triples)"
    )
    parser.add_argument("--seed", type=int, default=0, help="generator/workload seed")
    parser.add_argument("--count", type=int, default=60, help="workload size")
    parser.add_argument(
        "--unsat-fraction",
        type=float,
        default=0.6,
        help="unsatisfiable share of the workload (acceptance floor: 0.5)",
    )
    parser.add_argument(
        "--kind",
        default="weak+strong",
        help="summary kind(s) used by the guard ('+'-joined cascade allowed)",
    )
    parser.add_argument(
        "--strategy",
        default="nested",
        choices=["nested", "hash"],
        help="join strategy for the guarded-vs-direct comparison; the "
        "historical 5x gate assumes nested — with hash, direct evaluation "
        "is itself fast on unsatisfiable joins and the guard's margin is "
        "structurally smaller",
    )
    parser.add_argument(
        "--limit", type=int, default=100, help="distinct answers served per query"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="required guarded/direct speedup (full run only; default 5.0 "
        "for the nested strategy, 1.0 for hash — a vectorized direct side "
        "leaves the guard a structurally smaller margin)",
    )
    parser.add_argument("--json", dest="json_output", help="write the report as JSON")
    args = parser.parse_args(argv)

    if args.compare_strategies:
        return run_compare_strategies(args)

    if args.min_speedup is None:
        args.min_speedup = 5.0 if args.strategy == "nested" else 1.0

    if args.unsat_fraction < 0.5:
        print("FAIL: the acceptance workload needs >= 50% unsatisfiable queries", file=sys.stderr)
        return 2

    scale = 200 if args.quick else args.scale
    count = 24 if args.quick else args.count
    graph = generate_bsbm(scale=scale, seed=args.seed)
    print(f"bsbm scale {scale}: {len(graph)} triples, workload of {count} queries "
          f"({args.unsat_fraction:.0%} unsatisfiable), guard: {args.kind} summary")

    report = run_query_service_workload(
        graph,
        count=count,
        unsatisfiable_fraction=args.unsat_fraction,
        kind=args.kind,
        seed=args.seed,
        answer_limit=args.limit,
        strategy=args.strategy,
    )
    print(format_query_service_report(report))

    if args.json_output:
        with open(args.json_output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"report written to {args.json_output}")

    failures: List[str] = []
    if not report["sound"]:
        failures.append(
            f"{report['pruning_errors']} pruning errors / "
            f"{report['disagreements']} disagreements with direct evaluation"
        )
    if report["queries"] < count:
        failures.append(
            f"workload degenerated: generation produced {report['queries']} of the "
            f"{count} requested queries"
        )
    if report["unsatisfiable_queries"] * 2 < report["queries"]:
        failures.append(
            f"workload degenerated: only {report['unsatisfiable_queries']} of "
            f"{report['queries']} queries unsatisfiable (need >= 50%)"
        )
    if not args.quick and report["speedup"] < args.min_speedup:
        failures.append(
            f"guarded speedup {report['speedup']:.2f}x below the {args.min_speedup:.1f}x gate"
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    if args.quick:
        print("\nPASS: every verdict agrees with full evaluation on the base graph")
    else:
        print(
            f"\nPASS: guarded service {report['speedup']:.2f}x faster than direct "
            f"evaluation on {report['triples']} triples with zero pruning errors "
            f"(gate: {args.min_speedup:.1f}x)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
