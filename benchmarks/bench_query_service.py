"""Summary-guarded query service vs. direct per-query evaluation.

A BSBM-scale graph is registered in a :class:`GraphCatalog` and a mixed
RBGP workload — at least half of it unsatisfiable, the paper's pruning
sweet spot — is answered twice over the same encoded store:

* **guarded** — :class:`QueryService`: dictionary-miss check, then the
  weak-summary guard, then (only for surviving queries) the encoded
  evaluator;
* **direct** — the same encoded evaluator on every query, no guard.

Both sides serve with the same per-query answer limit.  Every query's two
results are compared, and every verdict is checked against the workload's
generation-time ground truth — the run fails on any pruning error, i.e. a
satisfiable query declared empty, the unsoundness Proposition 1 rules out.

Usage
-----
::

    PYTHONPATH=src python benchmarks/bench_query_service.py           # full run, 5x gate
    PYTHONPATH=src python benchmarks/bench_query_service.py --quick   # CI smoke run
    PYTHONPATH=src python benchmarks/bench_query_service.py --json out.json

The full run exits non-zero when the guarded service is not at least
``--min-speedup`` (default 5.0) times faster end-to-end, or when any
verdict disagrees with full evaluation on the base graph.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List

from repro.analysis.harness import format_query_service_report, run_query_service_workload
from repro.datasets.bsbm import generate_bsbm


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small input, soundness checks only (CI smoke mode; no speedup gate)",
    )
    parser.add_argument(
        "--scale", type=int, default=3200, help="BSBM scale for the full run (3200 ≈ 110k triples)"
    )
    parser.add_argument("--seed", type=int, default=0, help="generator/workload seed")
    parser.add_argument("--count", type=int, default=60, help="workload size")
    parser.add_argument(
        "--unsat-fraction",
        type=float,
        default=0.6,
        help="unsatisfiable share of the workload (acceptance floor: 0.5)",
    )
    parser.add_argument(
        "--kind",
        default="weak+strong",
        help="summary kind(s) used by the guard ('+'-joined cascade allowed)",
    )
    parser.add_argument(
        "--limit", type=int, default=100, help="distinct answers served per query"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="required guarded/direct speedup (full run only)",
    )
    parser.add_argument("--json", dest="json_output", help="write the report as JSON")
    args = parser.parse_args(argv)

    if args.unsat_fraction < 0.5:
        print("FAIL: the acceptance workload needs >= 50% unsatisfiable queries", file=sys.stderr)
        return 2

    scale = 200 if args.quick else args.scale
    count = 24 if args.quick else args.count
    graph = generate_bsbm(scale=scale, seed=args.seed)
    print(f"bsbm scale {scale}: {len(graph)} triples, workload of {count} queries "
          f"({args.unsat_fraction:.0%} unsatisfiable), guard: {args.kind} summary")

    report = run_query_service_workload(
        graph,
        count=count,
        unsatisfiable_fraction=args.unsat_fraction,
        kind=args.kind,
        seed=args.seed,
        answer_limit=args.limit,
    )
    print(format_query_service_report(report))

    if args.json_output:
        with open(args.json_output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"report written to {args.json_output}")

    failures: List[str] = []
    if not report["sound"]:
        failures.append(
            f"{report['pruning_errors']} pruning errors / "
            f"{report['disagreements']} disagreements with direct evaluation"
        )
    if report["queries"] < count:
        failures.append(
            f"workload degenerated: generation produced {report['queries']} of the "
            f"{count} requested queries"
        )
    if report["unsatisfiable_queries"] * 2 < report["queries"]:
        failures.append(
            f"workload degenerated: only {report['unsatisfiable_queries']} of "
            f"{report['queries']} queries unsatisfiable (need >= 50%)"
        )
    if not args.quick and report["speedup"] < args.min_speedup:
        failures.append(
            f"guarded speedup {report['speedup']:.2f}x below the {args.min_speedup:.1f}x gate"
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    if args.quick:
        print("\nPASS: every verdict agrees with full evaluation on the base graph")
    else:
        print(
            f"\nPASS: guarded service {report['speedup']:.2f}x faster than direct "
            f"evaluation on {report['triples']} triples with zero pruning errors "
            f"(gate: {args.min_speedup:.1f}x)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
