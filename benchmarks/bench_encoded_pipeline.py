"""Encoded vs. legacy summarization pipeline benchmark.

Compares, for every summary kind, the legacy ``Term``-object pipeline
(``summarize(graph, kind, engine="term")``) against the integer-encoded
engine of :mod:`repro.core.encoded` running over a pre-loaded
:class:`~repro.store.memory.MemoryStore` — the apples-to-apples comparison
the paper's prototype makes: data lives dictionary-encoded in the store and
summarization works on integers, decoding only at the end.

Reported per kind:

* ``legacy`` — Term-pipeline wall time over the in-memory ``RDFGraph``;
* ``encoded`` — encoded-engine wall time over the loaded store;
* ``speedup`` — legacy / encoded;
* one-time store ``load`` (dictionary-encoding) cost, amortized across all
  kinds when the store is reused (the whole-pipeline rows).

Every measured pair is also checked for graph isomorphism, so the benchmark
doubles as an end-to-end equivalence test.

With ``--store-microbench`` the benchmark instead times the storage layer
itself: the pre-columnar dict-of-tuples :class:`DictReferenceStore` (kept
as a test oracle in :mod:`repro.store.reference`) against the columnar
:class:`MemoryStore`, on the three access patterns the refactor targets —
bulk load (append + index build), summarization-style full scans (per-row
attribute loops vs. ``scan_columns`` slices consumed by ``set.update``),
and batched ``select_many`` lookups under a constant predicate.

Usage
-----
::

    PYTHONPATH=src python benchmarks/bench_encoded_pipeline.py            # full run (>= 100k triples)
    PYTHONPATH=src python benchmarks/bench_encoded_pipeline.py --quick    # CI smoke run
    PYTHONPATH=src python benchmarks/bench_encoded_pipeline.py --store-microbench
    PYTHONPATH=src python benchmarks/bench_encoded_pipeline.py --store-microbench --quick

The full run exits non-zero when the encoded path is not at least
``--min-speedup`` (default 2.0) times faster than the legacy path on the
large BSBM input, or when any summary pair is not isomorphic.  The full
store microbench exits non-zero when the columnar summarization scan is
not at least ``--min-scan-speedup`` (default 2.0) times faster than the
dict layout's per-row scan.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from collections import Counter
from typing import Dict, List, Tuple

from repro.core.builders import summarize
from repro.core.encoded import encoded_summarize
from repro.core.isomorphism import graphs_isomorphic
from repro.datasets.bsbm import generate_bsbm
from repro.datasets.lubm import generate_lubm
from repro.model.graph import RDFGraph
from repro.model.triple import TripleKind
from repro.store.memory import MemoryStore
from repro.store.reference import DictReferenceStore

KINDS = ("weak", "strong", "type", "typed_weak", "typed_strong")


def _bench_dataset(
    name: str, graph: RDFGraph, check_isomorphism: bool = True
) -> Dict[str, object]:
    """Benchmark every kind on *graph*; return the per-kind timing rows."""
    start = time.perf_counter()
    store = MemoryStore()
    store.load_graph(graph)
    load_seconds = time.perf_counter() - start

    rows: List[Tuple[str, float, float, float, bool]] = []
    legacy_total = 0.0
    encoded_total = 0.0
    all_isomorphic = True
    for kind in KINDS:
        start = time.perf_counter()
        legacy = summarize(graph, kind, engine="term")
        legacy_seconds = time.perf_counter() - start

        start = time.perf_counter()
        encoded = encoded_summarize(store, kind)
        encoded_seconds = time.perf_counter() - start

        isomorphic = (
            graphs_isomorphic(legacy.graph, encoded.graph) if check_isomorphism else True
        )
        all_isomorphic = all_isomorphic and isomorphic
        legacy_total += legacy_seconds
        encoded_total += encoded_seconds
        rows.append(
            (kind, legacy_seconds, encoded_seconds, legacy_seconds / encoded_seconds, isomorphic)
        )
    store.close()

    print(f"\n{name}: {len(graph)} triples (store load/encode: {load_seconds:.3f}s)")
    print(f"  {'kind':<14}{'legacy (s)':>12}{'encoded (s)':>13}{'speedup':>10}{'isomorphic':>12}")
    for kind, legacy_seconds, encoded_seconds, speedup, isomorphic in rows:
        print(
            f"  {kind:<14}{legacy_seconds:>12.3f}{encoded_seconds:>13.3f}"
            f"{speedup:>9.2f}x{str(isomorphic):>12}"
        )
    pipeline_speedup = legacy_total / (encoded_total + load_seconds)
    print(
        f"  {'all kinds':<14}{legacy_total:>12.3f}{encoded_total:>13.3f}"
        f"{legacy_total / encoded_total:>9.2f}x"
        f"   (whole pipeline incl. one-time load: {pipeline_speedup:.2f}x)"
    )
    return {
        "name": name,
        "triples": len(graph),
        "rows": rows,
        "legacy_total": legacy_total,
        "encoded_total": encoded_total,
        "load_seconds": load_seconds,
        "all_isomorphic": all_isomorphic,
    }


def _encoded_rows(graph: RDFGraph) -> Tuple[Dict[TripleKind, List], int, List[int]]:
    """Dictionary-encode *graph* once; return rows per kind, the most common
    DATA predicate and the distinct DATA subject ids (in first-seen order)."""
    source = MemoryStore()
    source.load_graph(graph)
    rows: Dict[TripleKind, List] = {}
    predicate_counts: Counter = Counter()
    subjects: Dict[int, None] = {}
    for kind in (TripleKind.DATA, TripleKind.TYPE, TripleKind.SCHEMA):
        kind_rows: List = []
        for s_arr, p_arr, o_arr in source.scan_columns(kind):
            kind_rows.extend(zip(s_arr, p_arr, o_arr))
            if kind is TripleKind.DATA:
                predicate_counts.update(p_arr)
                for subject in s_arr:
                    subjects[subject] = None
        rows[kind] = kind_rows
    source.close()
    top_predicate = predicate_counts.most_common(1)[0][0] if predicate_counts else -1
    return rows, top_predicate, list(subjects)


def _best_of(repeat: int, operation) -> float:
    best = float("inf")
    for _round in range(repeat):
        start = time.perf_counter()
        operation()
        best = min(best, time.perf_counter() - start)
    return best


def _microbench_store(
    store, rows: Dict[TripleKind, List], predicate: int, sample: List[int], repeat: int
) -> Dict[str, float]:
    """Time bulk load, summarization scan and select_many on *store*."""
    tagged = [(kind, row) for kind, kind_rows in rows.items() for row in kind_rows]

    start = time.perf_counter()
    store.insert_encoded_rows(tagged)
    # a first indexed lookup forces the columnar store's deferred index
    # build, so both layouts pay their full load+index cost here
    store.select_many(TripleKind.DATA, subjects=sample[:1], predicate=predicate)
    bulk_load = time.perf_counter() - start

    columnar = getattr(store, "supports_column_snapshot", False)

    def scan_pass() -> int:
        nodes = set()
        typed = set()
        if columnar:
            for s_arr, _p_arr, o_arr in store.scan_columns(TripleKind.DATA):
                nodes.update(s_arr)
                nodes.update(o_arr)
            for s_arr, _p_arr, _o_arr in store.scan_columns(TripleKind.TYPE):
                typed.update(s_arr)
        else:
            for row in store.scan_data():
                nodes.add(row.subject)
                nodes.add(row.object)
            for row in store.scan_types():
                typed.add(row.subject)
        return len(nodes) + len(typed)

    scan = _best_of(repeat, scan_pass)
    select = _best_of(
        repeat, lambda: store.select_many(TripleKind.DATA, subjects=sample, predicate=predicate)
    )
    return {"bulk_load_seconds": bulk_load, "scan_seconds": scan, "select_many_seconds": select}


def run_store_microbench(args) -> int:
    scale = 100 if args.quick else args.scale
    repeat = 2 if args.quick else 3
    graph = generate_bsbm(scale=scale, seed=args.seed)
    rows, predicate, subjects = _encoded_rows(graph)
    data_rows = len(rows[TripleKind.DATA])
    rng = random.Random(args.seed)
    sample_size = min(len(subjects), 500 if args.quick else 5_000)
    sample = rng.sample(subjects, sample_size)
    sample += sample[: sample_size // 4]  # repeated keys exercise key dedup
    print(
        f"bsbm scale {scale}: {len(graph)} triples ({data_rows} data rows), "
        f"select_many over {len(sample)} subject keys, best of {repeat}"
    )

    dict_store = DictReferenceStore()
    dict_times = _microbench_store(dict_store, rows, predicate, sample, repeat)
    dict_store.close()
    columnar_store = MemoryStore()
    columnar_times = _microbench_store(columnar_store, rows, predicate, sample, repeat)
    columnar_store.close()

    report: Dict[str, object] = {
        "triples": len(graph),
        "data_rows": data_rows,
        "sample_keys": len(sample),
        "dict": dict_times,
        "columnar": columnar_times,
        "ratios": {},
    }
    print(f"  {'operation':<14}{'dict (s)':>12}{'columnar (s)':>14}{'speedup':>10}")
    for label, key in (
        ("bulk load", "bulk_load_seconds"),
        ("scan", "scan_seconds"),
        ("select_many", "select_many_seconds"),
    ):
        ratio = dict_times[key] / columnar_times[key] if columnar_times[key] > 0 else float("inf")
        report["ratios"][key] = ratio
        print(f"  {label:<14}{dict_times[key]:>12.4f}{columnar_times[key]:>14.4f}{ratio:>9.2f}x")

    if args.json_output:
        with open(args.json_output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"report written to {args.json_output}")

    scan_speedup = report["ratios"]["scan_seconds"]
    if not args.quick and scan_speedup < args.min_scan_speedup:
        print(
            f"FAIL: columnar summarization scan {scan_speedup:.2f}x "
            f"below the {args.min_scan_speedup:.1f}x gate",
            file=sys.stderr,
        )
        return 1
    if args.quick:
        print("\nPASS: store microbench completed (quick mode; no throughput gate)")
    else:
        print(
            f"\nPASS: columnar scan {scan_speedup:.2f}x faster than the dict layout "
            f"on {data_rows} data rows (gate: {args.min_scan_speedup:.1f}x)"
        )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small inputs, isomorphism checks only (CI smoke mode; no speedup gate)",
    )
    parser.add_argument(
        "--scale", type=int, default=3200, help="BSBM scale for the full run (3200 ≈ 110k triples)"
    )
    parser.add_argument("--seed", type=int, default=0, help="generator seed")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="required legacy/encoded speedup on the large BSBM input (full run only)",
    )
    parser.add_argument(
        "--store-microbench",
        action="store_true",
        help="time the dict-of-tuples reference store against the columnar "
        "MemoryStore (bulk load, summarization scan, select_many) instead "
        "of the pipeline comparison",
    )
    parser.add_argument(
        "--min-scan-speedup",
        type=float,
        default=2.0,
        help="required columnar/dict summarization-scan speedup "
        "(full --store-microbench run only)",
    )
    parser.add_argument("--json", dest="json_output", help="write the microbench report as JSON")
    args = parser.parse_args(argv)

    if args.store_microbench:
        return run_store_microbench(args)

    if args.quick:
        datasets = [
            ("bsbm-quick", generate_bsbm(scale=100, seed=args.seed)),
            ("lubm-quick", generate_lubm(universities=1, seed=args.seed)),
        ]
    else:
        datasets = [
            ("bsbm-large", generate_bsbm(scale=args.scale, seed=args.seed)),
            ("lubm", generate_lubm(universities=10, seed=args.seed)),
        ]

    results = [_bench_dataset(name, graph) for name, graph in datasets]

    failures: List[str] = []
    for result in results:
        if not result["all_isomorphic"]:
            failures.append(f"{result['name']}: encoded and legacy summaries differ")
    if not args.quick:
        main_result = results[0]
        if main_result["triples"] < 100_000:
            failures.append(
                f"{main_result['name']}: only {main_result['triples']} triples "
                "(need >= 100k for the speedup gate; raise --scale)"
            )
        speedup = main_result["legacy_total"] / main_result["encoded_total"]
        if speedup < args.min_speedup:
            failures.append(
                f"{main_result['name']}: encoded speedup {speedup:.2f}x "
                f"below the {args.min_speedup:.1f}x gate"
            )
        else:
            print(
                f"\nPASS: encoded engine {speedup:.2f}x faster than the legacy pipeline "
                f"on {main_result['triples']} triples (gate: {args.min_speedup:.1f}x)"
            )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    if args.quick:
        print("\nPASS: encoded and legacy summaries isomorphic on every kind")
    return 0


if __name__ == "__main__":
    sys.exit(main())
