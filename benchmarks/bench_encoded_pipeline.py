"""Encoded vs. legacy summarization pipeline benchmark.

Compares, for every summary kind, the legacy ``Term``-object pipeline
(``summarize(graph, kind, engine="term")``) against the integer-encoded
engine of :mod:`repro.core.encoded` running over a pre-loaded
:class:`~repro.store.memory.MemoryStore` — the apples-to-apples comparison
the paper's prototype makes: data lives dictionary-encoded in the store and
summarization works on integers, decoding only at the end.

Reported per kind:

* ``legacy`` — Term-pipeline wall time over the in-memory ``RDFGraph``;
* ``encoded`` — encoded-engine wall time over the loaded store;
* ``speedup`` — legacy / encoded;
* one-time store ``load`` (dictionary-encoding) cost, amortized across all
  kinds when the store is reused (the whole-pipeline rows).

Every measured pair is also checked for graph isomorphism, so the benchmark
doubles as an end-to-end equivalence test.

Usage
-----
::

    PYTHONPATH=src python benchmarks/bench_encoded_pipeline.py            # full run (>= 100k triples)
    PYTHONPATH=src python benchmarks/bench_encoded_pipeline.py --quick    # CI smoke run

The full run exits non-zero when the encoded path is not at least
``--min-speedup`` (default 2.0) times faster than the legacy path on the
large BSBM input, or when any summary pair is not isomorphic.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Tuple

from repro.core.builders import summarize
from repro.core.encoded import encoded_summarize
from repro.core.isomorphism import graphs_isomorphic
from repro.datasets.bsbm import generate_bsbm
from repro.datasets.lubm import generate_lubm
from repro.model.graph import RDFGraph
from repro.store.memory import MemoryStore

KINDS = ("weak", "strong", "type", "typed_weak", "typed_strong")


def _bench_dataset(
    name: str, graph: RDFGraph, check_isomorphism: bool = True
) -> Dict[str, object]:
    """Benchmark every kind on *graph*; return the per-kind timing rows."""
    start = time.perf_counter()
    store = MemoryStore()
    store.load_graph(graph)
    load_seconds = time.perf_counter() - start

    rows: List[Tuple[str, float, float, float, bool]] = []
    legacy_total = 0.0
    encoded_total = 0.0
    all_isomorphic = True
    for kind in KINDS:
        start = time.perf_counter()
        legacy = summarize(graph, kind, engine="term")
        legacy_seconds = time.perf_counter() - start

        start = time.perf_counter()
        encoded = encoded_summarize(store, kind)
        encoded_seconds = time.perf_counter() - start

        isomorphic = (
            graphs_isomorphic(legacy.graph, encoded.graph) if check_isomorphism else True
        )
        all_isomorphic = all_isomorphic and isomorphic
        legacy_total += legacy_seconds
        encoded_total += encoded_seconds
        rows.append(
            (kind, legacy_seconds, encoded_seconds, legacy_seconds / encoded_seconds, isomorphic)
        )
    store.close()

    print(f"\n{name}: {len(graph)} triples (store load/encode: {load_seconds:.3f}s)")
    print(f"  {'kind':<14}{'legacy (s)':>12}{'encoded (s)':>13}{'speedup':>10}{'isomorphic':>12}")
    for kind, legacy_seconds, encoded_seconds, speedup, isomorphic in rows:
        print(
            f"  {kind:<14}{legacy_seconds:>12.3f}{encoded_seconds:>13.3f}"
            f"{speedup:>9.2f}x{str(isomorphic):>12}"
        )
    pipeline_speedup = legacy_total / (encoded_total + load_seconds)
    print(
        f"  {'all kinds':<14}{legacy_total:>12.3f}{encoded_total:>13.3f}"
        f"{legacy_total / encoded_total:>9.2f}x"
        f"   (whole pipeline incl. one-time load: {pipeline_speedup:.2f}x)"
    )
    return {
        "name": name,
        "triples": len(graph),
        "rows": rows,
        "legacy_total": legacy_total,
        "encoded_total": encoded_total,
        "load_seconds": load_seconds,
        "all_isomorphic": all_isomorphic,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small inputs, isomorphism checks only (CI smoke mode; no speedup gate)",
    )
    parser.add_argument(
        "--scale", type=int, default=3200, help="BSBM scale for the full run (3200 ≈ 110k triples)"
    )
    parser.add_argument("--seed", type=int, default=0, help="generator seed")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="required legacy/encoded speedup on the large BSBM input (full run only)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        datasets = [
            ("bsbm-quick", generate_bsbm(scale=100, seed=args.seed)),
            ("lubm-quick", generate_lubm(universities=1, seed=args.seed)),
        ]
    else:
        datasets = [
            ("bsbm-large", generate_bsbm(scale=args.scale, seed=args.seed)),
            ("lubm", generate_lubm(universities=10, seed=args.seed)),
        ]

    results = [_bench_dataset(name, graph) for name, graph in datasets]

    failures: List[str] = []
    for result in results:
        if not result["all_isomorphic"]:
            failures.append(f"{result['name']}: encoded and legacy summaries differ")
    if not args.quick:
        main_result = results[0]
        if main_result["triples"] < 100_000:
            failures.append(
                f"{main_result['name']}: only {main_result['triples']} triples "
                "(need >= 100k for the speedup gate; raise --scale)"
            )
        speedup = main_result["legacy_total"] / main_result["encoded_total"]
        if speedup < args.min_speedup:
            failures.append(
                f"{main_result['name']}: encoded speedup {speedup:.2f}x "
                f"below the {args.min_speedup:.1f}x gate"
            )
        else:
            print(
                f"\nPASS: encoded engine {speedup:.2f}x faster than the legacy pipeline "
                f"on {main_result['triples']} triples (gate: {args.min_speedup:.1f}x)"
            )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    if args.quick:
        print("\nPASS: encoded and legacy summaries isomorphic on every kind")
    return 0


if __name__ == "__main__":
    sys.exit(main())
