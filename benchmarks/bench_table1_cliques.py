"""E1 — Table 1: source and target cliques of the sample graph (Figure 2).

Regenerates the clique table of the paper and benchmarks clique computation,
both on the 16-triple example and on a BSBM-scale graph (the clique pass is
the first stage of strong/typed-strong summarization, whose cost shows up in
Figure 13).
"""

from __future__ import annotations

from conftest import print_series

from repro.core.cliques import compute_cliques
from repro.datasets.sample import FIG2


def _names(clique):
    return "{" + ", ".join(sorted(uri.local_name for uri in clique)) + "}" if clique else "∅"


def test_table1_cliques_of_sample_graph(fig2, benchmark):
    cliques = benchmark(compute_cliques, fig2)

    resources = [FIG2.term(name) for name in (
        "r1", "r2", "r3", "r4", "r5", "a1", "t1", "t2", "e1", "e2", "c1", "t4", "a2", "t3", "r6",
    )]
    rows = [
        (resource.local_name, _names(cliques.source_clique_of(resource)), _names(cliques.target_clique_of(resource)))
        for resource in resources
    ]
    print_series("Table 1: source and target cliques of the sample RDF graph", ("r", "SC(r)", "TC(r)"), rows)

    # the paper's Table 1, row by row
    sc1 = {"author", "title", "editor", "comment"}
    assert {u.local_name for u in cliques.source_clique_of(FIG2.r1)} == sc1
    assert {u.local_name for u in cliques.source_clique_of(FIG2.r5)} == sc1
    assert {u.local_name for u in cliques.target_clique_of(FIG2.r4)} == {"reviewed", "published"}
    assert {u.local_name for u in cliques.source_clique_of(FIG2.a1)} == {"reviewed"}
    assert {u.local_name for u in cliques.source_clique_of(FIG2.e1)} == {"published"}
    assert cliques.source_clique_of(FIG2.r6) == frozenset()
    assert len(cliques.source_cliques) == 3
    assert len(cliques.target_cliques) == 5


def test_clique_computation_scales_to_bsbm(bsbm_medium, benchmark):
    cliques = benchmark(compute_cliques, bsbm_medium)
    # cliques partition the data properties of the generated graph
    assert cliques.is_partition_of(bsbm_medium.data_properties())
