"""E4 — Figure 12: number of data edges (top) and all edges (bottom) of the
four BSBM summaries, as a function of the input size.

Checked shapes: weak ≈ strong, typed_weak ≈ typed_strong, typed ≥ type-first,
and every summary stays a tiny fraction of the input size (the paper reports
at most 28 210 edges for 10-100M-triple inputs, i.e. a ratio ≤ 0.028).
"""

from __future__ import annotations

from conftest import BSBM_SCALES, print_series

from repro.analysis.metrics import PAPER_KINDS, summary_size_table


def _rows_for(graphs):
    rows = []
    for scale in BSBM_SCALES:
        rows.extend(summary_size_table(graphs[scale], kinds=PAPER_KINDS))
    return rows


def _group_by_scale(rows):
    grouped = {}
    for row in rows:
        grouped.setdefault(row.input_triples, []).append(row)
    kind_order = {kind: index for index, kind in enumerate(PAPER_KINDS)}
    return [
        sorted(grouped[size], key=lambda row: kind_order[row.kind]) for size in sorted(grouped)
    ]


def test_figure12_edge_counts(bsbm_graphs, benchmark):
    rows = benchmark.pedantic(_rows_for, args=(bsbm_graphs,), rounds=1, iterations=1)

    print_series(
        "Figure 12 (top): data edges per summary kind",
        ("input triples", *PAPER_KINDS),
        [(group[0].input_triples, *[row.data_edges for row in group]) for group in _group_by_scale(rows)],
    )
    print_series(
        "Figure 12 (bottom): all edges per summary kind",
        ("input triples", *PAPER_KINDS),
        [(group[0].input_triples, *[row.all_edges for row in group]) for group in _group_by_scale(rows)],
    )

    for group in _group_by_scale(rows):
        by_kind = {row.kind: row for row in group}
        # weak data edges == number of distinct data properties (Prop. 4),
        # strong has at least as many
        assert by_kind["strong"].data_edges >= by_kind["weak"].data_edges
        # typed summaries carry more edges than the type-first ones
        assert by_kind["typed_weak"].all_edges >= by_kind["weak"].all_edges
        assert by_kind["typed_strong"].all_edges >= by_kind["strong"].all_edges
        # the two typed summaries are close to each other (within 25%)
        weak_typed, strong_typed = by_kind["typed_weak"].all_edges, by_kind["typed_strong"].all_edges
        assert abs(weak_typed - strong_typed) <= 0.25 * max(weak_typed, strong_typed)


def test_figure12_compression_stays_small_as_input_grows(bsbm_graphs, benchmark):
    """Summary edge counts grow far slower than the input size."""
    small, large = benchmark.pedantic(
        lambda: (
            summary_size_table(bsbm_graphs[min(BSBM_SCALES)], kinds=("weak",))[0],
            summary_size_table(bsbm_graphs[max(BSBM_SCALES)], kinds=("weak",))[0],
        ),
        rounds=1,
        iterations=1,
    )
    input_growth = large.input_triples / small.input_triples
    summary_growth = large.all_edges / max(1, small.all_edges)
    assert summary_growth < input_growth / 2
