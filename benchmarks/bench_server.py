"""Durable serving layer benchmark: warm-start time and multi-client QPS.

Three measurements over one BSBM-scale graph served from a persistent
catalog (``GraphCatalog.open``):

* **warm start** — the catalog is built and checkpointed cold (load +
  encode + summarize + statistics + durable write), then reopened; the
  warm open must be faster than the cold build and must answer its first
  guarded query with **zero** re-summarization / re-scan, asserted via the
  entry's ``build_counters``;
* **read throughput** — a mixed guarded workload is answered once
  serially and once through the :class:`QueryExecutor` thread pool;
  per-query answer sets must be identical, and the full run gates
  ``--threads``-way throughput at ``--min-scaling`` × the serial QPS.
  The parallel win comes from SQLite's C evaluation releasing the GIL, so
  the gate applies to the (default) file-backed ``sqlite`` backend;
* **HTTP smoke** — the real :class:`ThreadingHTTPServer` front end is
  started on the warm catalog, queried over HTTP (query / statistics /
  summary / healthz / ingest), restarted once more (a warm-restart cycle),
  and must return byte-identical answers across the restart.

``--cluster`` switches to the **sharded serving tier benchmark**: the same
BSBM graph is served by :class:`repro.cluster.ClusterCoordinator` pools of
growing worker counts.  Every clustered answer is checked bit-identical
against the serial :class:`QueryService` reference (hard gate), a worker is
SIGKILLed mid-workload and every in-flight client request must still
succeed with the right answers (hard gate), and the worker-count → QPS
scaling curve is recorded (and written to the ``--json`` artifact).  The
``--min-cluster-scaling`` gate (default 2× QPS at the largest worker count
vs one worker) needs real cores: it is skipped with a notice on hosts with
fewer CPUs than workers.

``--telemetry`` switches to the **telemetry plane benchmark**: the same
workload is answered by two freshly built stacks, one with the metrics
registry enabled and one with telemetry disabled (no-op instruments), with
laps interleaved; the enabled/disabled QPS ratio gates the instrumentation
overhead (default ≤ 3%, relaxed to 10% under ``--quick`` where timings are
noise).  The enabled stack is then served over HTTP: the ``/metrics``
scrape must parse as Prometheus text and agree with the work done, a
query with ``"trace": true`` must return a span tree, and an induced slow
query must land in ``/debug/slow``.

``--saturated`` switches to the **incremental saturation benchmark**: a
graph is registered and its maintained ``G∞`` store built once, then a
series of small ``add_triples`` batches is ingested.  Each batch must
update ``G∞`` through the delta rules (the saturated build counter stays
at 1), in time proportional to the delta's derivations — gated at
``--min-saturation-speedup`` (default 10×) over the legacy rebuild path
(decode + ``saturate()`` + re-encode), with the maintained store asserted
*identical* to a from-scratch saturation and saturated answers asserted
identical across a warm restart (zero saturated rebuilds on reopen).

Usage
-----
::

    PYTHONPATH=src python benchmarks/bench_server.py            # full run, gates on
    PYTHONPATH=src python benchmarks/bench_server.py --quick    # CI smoke run
    PYTHONPATH=src python benchmarks/bench_server.py --saturated --quick
    PYTHONPATH=src python benchmarks/bench_server.py --json out.json
"""

from __future__ import annotations

import argparse
import json
import os
import random
import re
import shutil
import signal
import sys
import tempfile
import threading
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter, sleep
from typing import Dict, List, Optional

from repro import telemetry
from repro.cli import _sqlite_store_factory
from repro.cluster import ClusterCoordinator, shm
from repro.datasets.bsbm import generate_bsbm
from repro.model.graph import RDFGraph
from repro.queries.parser import parse_query
from repro.schema.saturation import saturate
from repro.server.executor import QueryExecutor
from repro.server.http import ServerApp, start_background
from repro.service.catalog import GraphCatalog
from repro.service.service import QueryService
from repro.service.workload import generate_mixed_workload
from repro.store.memory import MemoryStore

GRAPH_NAME = "bsbm"


def _store_factory(backend: str, directory: str):
    if backend == "memory":
        return MemoryStore
    return _sqlite_store_factory(os.path.join(directory, "stores"))


def _http(method: str, url: str, body: Optional[Dict] = None):
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(
        url,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"} if body is not None else {},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return response.status, json.loads(response.read())


def _http_text(url: str):
    with urllib.request.urlopen(url, timeout=60) as response:
        return response.status, response.read().decode("utf-8")


def run_benchmark(args) -> Dict[str, object]:
    scale = 200 if args.quick else args.scale
    count = 16 if args.quick else args.count
    workdir = tempfile.mkdtemp(prefix="bench-server-")
    catalog_path = os.path.join(workdir, "catalog.db")
    report: Dict[str, object] = {
        "scale": scale,
        "backend": args.backend,
        "threads": args.threads,
        "kind": args.kind,
        "strategy": args.strategy,
        "queries": count,
        "quick": args.quick,
    }
    try:
        graph = generate_bsbm(scale=scale, seed=args.seed)
        report["triples"] = len(graph)
        print(f"bsbm scale {scale}: {len(graph)} triples, backend {args.backend}")

        # ------------------------------------------------------------------
        # cold build + durable checkpoint
        # ------------------------------------------------------------------
        start = perf_counter()
        catalog = GraphCatalog.open(catalog_path, store_factory=_store_factory(args.backend, workdir))
        catalog.register(GRAPH_NAME, graph=graph)
        # build every summary the guard cascade can escalate to, then
        # checkpoint so the warm start below must rebuild *nothing*
        cold_service = QueryService(catalog, kind=args.kind)
        for kind in cold_service.kinds:
            catalog.entry(GRAPH_NAME).summary(kind)
        catalog.checkpoint()
        cold_seconds = perf_counter() - start
        catalog.close()
        report["cold_build_seconds"] = cold_seconds

        # ------------------------------------------------------------------
        # warm start: reopen, first guarded query, zero rebuilds
        # ------------------------------------------------------------------
        start = perf_counter()
        catalog = GraphCatalog.open(catalog_path, store_factory=_store_factory(args.backend, workdir))
        warm_seconds = perf_counter() - start
        entry = catalog.entry(GRAPH_NAME)
        service = QueryService(catalog, kind=args.kind, strategy=args.strategy)
        workload = generate_mixed_workload(
            graph,
            count=count,
            unsatisfiable_fraction=args.unsat_fraction,
            seed=args.seed,
            answer_limit=args.limit,
        )
        report["warm_open_seconds"] = warm_seconds
        first = service.answer(GRAPH_NAME, workload[0].query, limit=args.limit)
        rebuilt = {name: hits for name, hits in entry.build_counters.items() if hits}
        report["warm_first_query_rebuilds"] = rebuilt
        report["warm_speedup"] = cold_seconds / warm_seconds if warm_seconds else float("inf")
        print(
            f"cold build {cold_seconds:.3f}s, warm open {warm_seconds:.3f}s "
            f"({report['warm_speedup']:.1f}x), first query "
            f"{'PRUNED' if first.pruned else f'{len(first.answers)} answers'}, "
            f"rebuilds on warm start: {rebuilt or 'none'}"
        )

        # ------------------------------------------------------------------
        # serial vs concurrent read throughput (same workload, same limits)
        # ------------------------------------------------------------------
        queries = [item.query for item in workload]
        start = perf_counter()
        serial_answers = [
            service.answer(GRAPH_NAME, query, limit=args.limit).answers for query in queries
        ]
        serial_seconds = perf_counter() - start

        # soundness: the serving strategy must agree, query by query, with
        # the reference hash executor.  Under a limit two strategies may
        # legitimately pick different answer subsets, so a clipped result
        # is checked for size and containment against the full answer set.
        reference = QueryService(catalog, kind=args.kind, strategy="hash")
        strategy_differences = 0
        for query, served in zip(queries, serial_answers):
            full = reference.answer(GRAPH_NAME, query).answers
            if args.limit is not None and len(full) > args.limit:
                agrees = len(served) == args.limit and served <= full
            else:
                agrees = served == full
            if not agrees:
                strategy_differences += 1
        report["strategy_differences"] = strategy_differences

        executor = QueryExecutor(service, max_workers=args.threads)
        # one warm lap primes every worker thread's SQLite read connection
        executor.map_answers(GRAPH_NAME, queries[: args.threads], limit=args.limit)
        start = perf_counter()
        concurrent = executor.map_answers(GRAPH_NAME, queries, limit=args.limit)
        concurrent_seconds = perf_counter() - start
        executor.shutdown()

        differences = sum(
            1
            for serial, parallel in zip(serial_answers, concurrent)
            if serial != parallel.answers
        )
        serial_qps = len(queries) / serial_seconds if serial_seconds else float("inf")
        concurrent_qps = (
            len(queries) / concurrent_seconds if concurrent_seconds else float("inf")
        )
        scaling = concurrent_qps / serial_qps if serial_qps else float("inf")
        report.update(
            {
                "serial_seconds": serial_seconds,
                "concurrent_seconds": concurrent_seconds,
                "serial_qps": serial_qps,
                "concurrent_qps": concurrent_qps,
                "scaling": scaling,
                "answer_differences": differences,
                "cpus": os.cpu_count() or 1,
            }
        )
        print(
            f"read throughput: serial {serial_qps:.1f} qps, "
            f"{args.threads}-thread {concurrent_qps:.1f} qps "
            f"({scaling:.2f}x on {report['cpus']} cpu(s)), "
            f"{differences} answer-set differences, "
            f"{strategy_differences} strategy disagreements vs hash"
        )

        # ------------------------------------------------------------------
        # HTTP smoke with one warm-restart cycle
        # ------------------------------------------------------------------
        probe = next(
            (item.query for item in workload if item.satisfiable), workload[0].query
        )
        probe_body = {"query": probe.to_sparql(), "limit": args.limit}

        app = ServerApp(catalog, kind=args.kind, strategy=args.strategy, max_workers=args.threads)
        server, _thread = start_background(app)
        base = f"http://127.0.0.1:{server.server_address[1]}"
        status, health = _http("GET", f"{base}/healthz")
        assert status == 200 and health["status"] == "ok", health
        status, before = _http("POST", f"{base}/graphs/{GRAPH_NAME}/query", probe_body)
        assert status == 200, before
        status, statistics = _http("GET", f"{base}/graphs/{GRAPH_NAME}/statistics")
        assert status == 200 and statistics["store"]["total_rows"] == len(graph), statistics
        status, summary = _http("GET", f"{base}/graphs/{GRAPH_NAME}/summary/weak")
        assert status == 200 and summary["statistics"]["all_edge_count"] > 0, summary
        status, ingest = _http(
            "POST",
            f"{base}/graphs/{GRAPH_NAME}/triples",
            {"triples": "<http://bench.example/s> <http://bench.example/p> <http://bench.example/o> .\n"},
        )
        assert status == 200 and ingest["inserted"] == 1, ingest
        server.shutdown()
        server.server_close()
        app.close()
        catalog.close()

        # warm-restart cycle: reopen the catalog (the ingest above must have
        # been written through), serve again, answers must match
        catalog = GraphCatalog.open(catalog_path, store_factory=_store_factory(args.backend, workdir))
        restarted_entry = catalog.entry(GRAPH_NAME)
        app = ServerApp(catalog, kind=args.kind, strategy=args.strategy, max_workers=args.threads)
        server, _thread = start_background(app)
        base = f"http://127.0.0.1:{server.server_address[1]}"
        status, after = _http("POST", f"{base}/graphs/{GRAPH_NAME}/query", probe_body)
        assert status == 200, after
        restart_consistent = before["answers"] == after["answers"]
        restart_rebuilds = {
            name: hits for name, hits in restarted_entry.build_counters.items() if hits
        }
        status, restarted_stats = _http("GET", f"{base}/graphs/{GRAPH_NAME}/statistics")
        ingest_survived = restarted_stats["store"]["total_rows"] == len(graph) + 1
        server.shutdown()
        server.server_close()
        app.close()
        catalog.close()
        report.update(
            {
                "http_restart_consistent": restart_consistent,
                "http_restart_rebuilds": restart_rebuilds,
                "http_ingest_survived_restart": ingest_survived,
            }
        )
        print(
            f"http smoke: restart answers {'identical' if restart_consistent else 'DIFFER'}, "
            f"ingest {'survived' if ingest_survived else 'LOST'}, "
            f"warm-restart rebuilds: {restart_rebuilds or 'none'}"
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return report


def run_saturation_benchmark(args) -> Dict[str, object]:
    """Incremental G∞ maintenance vs the legacy rebuild-per-update path."""
    scale = 200 if args.quick else args.scale
    batch_size = args.ingest_batch
    batch_count = 2 if args.quick else args.ingest_batches
    workdir = tempfile.mkdtemp(prefix="bench-saturation-")
    catalog_path = os.path.join(workdir, "catalog.db")
    report: Dict[str, object] = {
        "mode": "saturated",
        "scale": scale,
        "quick": args.quick,
        "ingest_batch": batch_size,
        "ingest_batches": batch_count,
    }
    try:
        graph = generate_bsbm(scale=scale, seed=args.seed)
        triples = sorted(graph)
        # hold the update batches out of the initial load; shuffling mixes
        # data / type / (occasionally) schema rows into the deltas
        random.Random(args.seed).shuffle(triples)
        holdout = batch_size * batch_count
        base = RDFGraph(triples[:-holdout], name=GRAPH_NAME)
        batches = [
            triples[len(triples) - holdout + index * batch_size :][:batch_size]
            for index in range(batch_count)
        ]
        report["triples"] = len(graph)
        print(
            f"bsbm scale {scale}: {len(graph)} triples, "
            f"{batch_count} ingest batches of {batch_size}"
        )

        catalog = GraphCatalog.open(catalog_path)
        entry = catalog.register(GRAPH_NAME, graph=base)
        service = QueryService(catalog)
        workload = generate_mixed_workload(
            base, count=16, unsatisfiable_fraction=0.25, seed=args.seed, answer_limit=args.limit
        )
        queries = [item.query for item in workload]

        # initial G∞ build (the one full-cost pass of the graph's lifetime)
        entry.saturated_evaluator()
        # no limit on the probe answers: monotonicity (G-inf only grows
        # under ingest) is only checkable on full answer sets
        before_answers = [
            service.answer(GRAPH_NAME, query, saturated=True).answers for query in queries
        ]
        metrics = entry.saturation_metrics()
        report["build_seconds"] = metrics["build_seconds"]
        report["saturated_rows"] = metrics["store_rows"]
        print(
            f"initial G-inf build: {metrics['store_rows']} rows "
            f"({metrics['derived_rows']} derived) in {metrics['build_seconds']:.3f}s"
        )

        for batch in batches:
            catalog.add_triples(GRAPH_NAME, batch)
        metrics = entry.saturation_metrics()
        delta_seconds = metrics["total_delta_seconds"] / max(1, metrics["deltas"])
        report["delta_seconds_mean"] = delta_seconds
        report["saturation_builds"] = entry.build_counters["saturation_builds"]

        # the legacy path: decode the whole store, saturate, re-encode
        rebuild_start = perf_counter()
        rebuilt_graph = saturate(entry.to_graph())
        rebuilt_store = MemoryStore()
        rebuilt_store.load_graph(rebuilt_graph)
        rebuild_seconds = perf_counter() - rebuild_start
        report["rebuild_seconds"] = rebuild_seconds
        speedup = rebuild_seconds / delta_seconds if delta_seconds else float("inf")
        report["saturation_speedup"] = speedup

        maintained = set(entry.saturated_evaluator().store.to_graph())
        report["stores_identical"] = maintained == set(rebuilt_graph)
        rebuilt_store.close()
        after_answers = [
            service.answer(GRAPH_NAME, query, saturated=True).answers for query in queries
        ]
        report["answers_monotone"] = all(
            before <= after for before, after in zip(before_answers, after_answers)
        )
        print(
            f"delta maintenance: {delta_seconds*1000:.2f} ms/batch vs rebuild "
            f"{rebuild_seconds*1000:.1f} ms ({speedup:.1f}x), stores "
            f"{'identical' if report['stores_identical'] else 'DIFFER'}"
        )

        # warm restart: G∞ must come back without a single rule application
        catalog.checkpoint()
        catalog.close()
        catalog = GraphCatalog.open(catalog_path)
        entry = catalog.entry(GRAPH_NAME)
        service = QueryService(catalog)
        warm_answers = [
            service.answer(GRAPH_NAME, query, saturated=True).answers for query in queries
        ]
        report["warm_answers_identical"] = warm_answers == after_answers
        report["warm_saturation_rebuilds"] = {
            name: hits
            for name, hits in entry.build_counters.items()
            if hits and name in ("saturation_builds", "saturated_statistics_scans")
        }
        catalog.close()
        print(
            f"warm restart: answers "
            f"{'identical' if report['warm_answers_identical'] else 'DIFFER'}, "
            f"saturated rebuilds: {report['warm_saturation_rebuilds'] or 'none'}"
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return report


_PROM_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r" (?P<value>-?(?:[0-9]+(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?|\+?Inf|NaN))$"
)


def parse_prometheus(text: str) -> Dict[str, object]:
    """Parse a Prometheus text exposition; raises ValueError on bad lines.

    Returns ``{"samples": {series: value}, "types": {metric: kind}}`` where
    *series* is the metric name with its label set verbatim.
    """
    samples: Dict[str, float] = {}
    types: Dict[str, str] = {}
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "gauge", "histogram"):
                raise ValueError(f"malformed TYPE line: {line!r}")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _PROM_SAMPLE.match(line)
        if match is None:
            raise ValueError(f"malformed exposition line: {line!r}")
        series = match.group("name") + (match.group("labels") or "")
        if series in samples:
            raise ValueError(f"duplicate series: {series!r}")
        samples[series] = float(match.group("value").replace("Inf", "inf"))
    return {"samples": samples, "types": types}


def _check_scrape(scrape: Dict[str, object], queries_run: int) -> List[str]:
    """Internal-consistency checks of one parsed /metrics scrape."""
    problems: List[str] = []
    samples = scrape["samples"]
    types = scrape["types"]
    count = samples.get("repro_query_count_total")
    if count is None or count < queries_run:
        problems.append(
            f"repro_query_count_total is {count}, expected >= {queries_run}"
        )
    for metric, kind in types.items():
        if kind != "histogram":
            continue
        total = samples.get(f"{metric}_count")
        if total is None:
            problems.append(f"{metric} has no _count sample")
            continue
        buckets = []
        for series, value in samples.items():
            if not series.startswith(f"{metric}_bucket{{"):
                continue
            le = re.search(r'le="([^"]+)"', series)
            if le is None:
                problems.append(f"{series} has no le label")
                continue
            buckets.append((float(le.group(1).replace("+Inf", "inf")), value))
        buckets.sort()
        if not buckets or buckets[-1][0] != float("inf"):
            problems.append(f"{metric} buckets do not end at +Inf")
            continue
        cumulative = [value for _le, value in buckets]
        if any(a > b for a, b in zip(cumulative, cumulative[1:])):
            problems.append(f"{metric} bucket counts are not cumulative")
        if cumulative[-1] != total:
            problems.append(
                f"{metric} +Inf bucket ({cumulative[-1]}) != _count ({total})"
            )
    if samples.get("repro_query_total_seconds_count", 0) < queries_run:
        problems.append("repro_query_total_seconds histogram missed queries")
    return problems


def run_telemetry_benchmark(args) -> Dict[str, object]:
    """Telemetry plane: overhead gate, scrape parseability, slow-log capture."""
    scale = 200 if args.quick else args.scale
    count = 16 if args.quick else args.count
    reps = 3
    report: Dict[str, object] = {
        "mode": "telemetry",
        "scale": scale,
        "queries": count,
        "reps": reps,
        "quick": args.quick,
    }
    graph = generate_bsbm(scale=scale, seed=args.seed)
    report["triples"] = len(graph)
    workload = generate_mixed_workload(
        graph,
        count=count,
        unsatisfiable_fraction=args.unsat_fraction,
        seed=args.seed,
        answer_limit=args.limit,
    )
    queries = [item.query for item in workload]
    print(
        f"bsbm scale {scale}: {len(graph)} triples, {count} queries x {reps} "
        f"interleaved laps per mode (memory store, hash joins)"
    )

    # two stacks, built under their own enablement (instruments — real or
    # no-op — are captured at construction time)
    telemetry.REGISTRY.clear()
    telemetry.SLOW_LOG.clear()
    telemetry.set_enabled(False)
    catalog_off = GraphCatalog()
    catalog_off.register(GRAPH_NAME, graph=graph)
    service_off = QueryService(catalog_off, kind=args.kind, strategy="hash")
    report["disabled_registry_entries"] = len(telemetry.REGISTRY)

    telemetry.set_enabled(True)
    catalog_on = GraphCatalog()
    catalog_on.register(GRAPH_NAME, graph=graph)
    service_on = QueryService(catalog_on, kind=args.kind, strategy="hash")

    def lap(service) -> float:
        start = perf_counter()
        for query in queries:
            service.answer(GRAPH_NAME, query, limit=args.limit)
        return perf_counter() - start

    try:
        # one warm lap each primes summaries and plan caches off the clock
        lap(service_on)
        lap(service_off)
        on_laps: List[float] = []
        off_laps: List[float] = []
        for _ in range(reps):
            on_laps.append(lap(service_on))
            off_laps.append(lap(service_off))
        enabled_qps = count / min(on_laps)
        disabled_qps = count / min(off_laps)
        overhead = min(on_laps) / min(off_laps) - 1.0
        queries_on = service_on.statistics.queries
        report.update(
            {
                "enabled_qps": enabled_qps,
                "disabled_qps": disabled_qps,
                "overhead_fraction": overhead,
                "enabled_queries_recorded": queries_on,
            }
        )
        print(
            f"overhead: enabled {enabled_qps:.1f} qps vs disabled "
            f"{disabled_qps:.1f} qps ({overhead*100:+.2f}%), "
            f"{report['disabled_registry_entries']} registry entries created "
            f"by the disabled stack"
        )

        # ------------------------------------------------------------------
        # HTTP: scrape, span tree, induced slow query
        # ------------------------------------------------------------------
        probe = next(
            (item.query for item in workload if item.satisfiable), workload[0].query
        )
        app = ServerApp(catalog_on, kind=args.kind, strategy="hash", max_workers=4)
        server, _thread = start_background(app)
        base = f"http://127.0.0.1:{server.server_address[1]}"
        old_threshold = telemetry.SLOW_LOG.threshold_seconds
        try:
            status, traced = _http(
                "POST",
                f"{base}/graphs/{GRAPH_NAME}/query",
                {"query": probe.to_sparql(), "limit": args.limit, "trace": True},
            )
            assert status == 200, traced
            tree = traced.get("query_trace")
            trace_ok = (
                isinstance(tree, dict)
                and bool(tree.get("trace_id"))
                and tree.get("name") == "query"
                and bool(tree.get("children"))
            )
            report["trace_tree_ok"] = trace_ok

            # induce a slow query: with the threshold at ~0, anything lands
            telemetry.SLOW_LOG.clear()
            telemetry.SLOW_LOG.threshold_seconds = 1e-9
            status, _answer = _http(
                "POST",
                f"{base}/graphs/{GRAPH_NAME}/query",
                {"query": probe.to_sparql(), "limit": args.limit},
            )
            assert status == 200
            status, slow = _http("GET", f"{base}/debug/slow")
            assert status == 200, slow
            report["slow_log_captured"] = any(
                entry["graph"] == GRAPH_NAME for entry in slow["entries"]
            )

            status, scrape_text = _http_text(f"{base}/metrics")
            assert status == 200
            if args.scrape_output:
                with open(args.scrape_output, "w", encoding="utf-8") as handle:
                    handle.write(scrape_text)
                print(f"scrape written to {args.scrape_output}")
            try:
                scrape = parse_prometheus(scrape_text)
                report["scrape_errors"] = _check_scrape(scrape, queries_on)
                report["scrape_series"] = len(scrape["samples"])
                report["scrape_metrics"] = len(scrape["types"])
            except ValueError as error:
                report["scrape_errors"] = [str(error)]
                report["scrape_series"] = 0
                report["scrape_metrics"] = 0
            print(
                f"http: span tree {'ok' if trace_ok else 'MISSING'}, slow query "
                f"{'captured' if report['slow_log_captured'] else 'LOST'}, scrape "
                f"{report['scrape_metrics']} metrics / {report['scrape_series']} series, "
                f"{len(report['scrape_errors'])} consistency problem(s)"
            )
        finally:
            telemetry.SLOW_LOG.threshold_seconds = old_threshold
            telemetry.SLOW_LOG.clear()
            server.shutdown()
            server.server_close()
            app.close()
    finally:
        catalog_on.close()
        catalog_off.close()
    return report


def run_cluster_benchmark(args) -> Dict[str, object]:
    """Sharded serving tier: scaling curve, answer parity, crash recovery."""
    scale = 200 if args.quick else args.scale
    count = 16 if args.quick else args.count
    laps = 2 if args.quick else 4
    worker_counts = sorted({int(part) for part in args.cluster_workers.split(",")})
    # cluster workers hold shard/replica state in MemoryStores, where the
    # sql strategy has no backing table — same clamp the serve CLI applies
    strategy = args.strategy if args.strategy != "sql" else "hash"
    report: Dict[str, object] = {
        "mode": "cluster",
        "scale": scale,
        "queries": count,
        "laps": laps,
        "kind": args.kind,
        "strategy": strategy,
        "client_threads": args.threads,
        "worker_counts": worker_counts,
        "quick": args.quick,
        "cpus": os.cpu_count() or 1,
    }
    graph = generate_bsbm(scale=scale, seed=args.seed)
    report["triples"] = len(graph)
    print(
        f"bsbm scale {scale}: {len(graph)} triples, worker counts {worker_counts}, "
        f"{args.threads} client thread(s) on {report['cpus']} cpu(s)"
    )

    catalog = GraphCatalog()
    catalog.register(GRAPH_NAME, graph=graph)
    serial = QueryService(catalog, kind=args.kind, strategy=strategy)
    workload = generate_mixed_workload(
        graph,
        count=count,
        unsatisfiable_fraction=args.unsat_fraction,
        seed=args.seed,
        answer_limit=args.limit,
    )
    queries = [item.query for item in workload]
    # full (unlimited) answer sets so parity is exact set equality — under a
    # limit, two evaluation orders may legitimately pick different subsets
    reference = [serial.answer(GRAPH_NAME, query, limit=None).answers for query in queries]

    # ----------------------------------------------------------------------
    # scaling curve: the same workload through coordinators of growing size
    # ----------------------------------------------------------------------
    curve: List[Dict[str, object]] = []
    differences = 0
    scattered = 0
    try:
        for workers in worker_counts:
            coordinator = ClusterCoordinator(
                catalog,
                workers=workers,
                kind=args.kind,
                strategy=strategy,
                heartbeat_seconds=0,
            )
            try:
                # warm lap: primes shard summaries, verifies bit-identical
                # answers against the serial reference, query by query
                for query, expected in zip(queries, reference):
                    answer = coordinator.answer(GRAPH_NAME, query, limit=None)
                    if answer.answers != expected:
                        differences += 1
                    if answer.cluster and answer.cluster["mode"] == "scatter":
                        scattered += 1

                timed = queries * laps
                start = perf_counter()
                with ThreadPoolExecutor(max_workers=args.threads) as pool:
                    list(
                        pool.map(
                            lambda query: coordinator.answer(GRAPH_NAME, query, limit=None),
                            timed,
                        )
                    )
                seconds = perf_counter() - start
                qps = len(timed) / seconds if seconds else float("inf")
                curve.append({"workers": workers, "qps": qps, "seconds": seconds})
                print(f"  {workers} worker(s): {qps:.1f} qps ({len(timed)} queries in {seconds:.3f}s)")
            finally:
                coordinator.close()
        report["scaling_curve"] = curve
        report["answer_differences"] = differences
        report["scattered_queries_per_lap"] = scattered // max(1, len(worker_counts))
        baseline = curve[0]["qps"]
        peak = curve[-1]["qps"]
        report["cluster_scaling"] = peak / baseline if baseline else float("inf")
        print(
            f"scaling: {curve[-1]['workers']} workers at {report['cluster_scaling']:.2f}x "
            f"the 1-worker QPS, {differences} answer-set differences vs serial"
        )

        # ------------------------------------------------------------------
        # shipping plane: shared-memory attach vs pipe-blob ship, and the
        # per-worker memory footprint of each mode
        # ------------------------------------------------------------------
        ship_workers = max(worker_counts)
        shipping: Dict[str, object] = {
            "workers": ship_workers,
            "shm_available": shm.shm_available(),
        }
        for mode, use_shm in (("shm", True), ("pipe", False)):
            if use_shm and not shm.shm_available():
                continue
            # a private empty catalog: the workers spawn and drain a ping
            # first, so the measured ship excludes interpreter start-up
            ship_catalog = GraphCatalog()
            coordinator = ClusterCoordinator(
                ship_catalog,
                workers=ship_workers,
                kind=args.kind,
                strategy=strategy,
                heartbeat_seconds=0.2,
                use_shm=use_shm,
            )
            try:
                coordinator.worker_metrics()  # barrier: every main loop is up
                coordinator.register(GRAPH_NAME, graph=graph)
                ship_seconds = coordinator.ship_metrics["ship_seconds_total"]
                # parity in this shipping mode, query by query
                mode_diffs = 0
                for query, expected in zip(queries, reference):
                    answer = coordinator.answer(GRAPH_NAME, query, limit=None)
                    if answer.answers != expected:
                        mode_diffs += 1
                # re-ship: SIGKILL one worker, let the heartbeat respawn it
                victim = coordinator.status()["workers"][0]["pid"]
                os.kill(victim, signal.SIGKILL)
                deadline = perf_counter() + 60.0
                while perf_counter() < deadline:
                    status = coordinator.status()
                    if (
                        status["ship_metrics"]["reships"] >= 1
                        and all(w["alive"] for w in status["workers"])
                    ):
                        break
                    sleep(0.05)
                status = coordinator.status()
                worker_metrics = coordinator.worker_metrics()
                loads = [w["last_load"] for w in status["workers"]]
                private = sum(
                    (m or {}).get("column_memory", {}).get("private_bytes", 0)
                    for m in worker_metrics
                )
                adopted = sum(
                    (m or {}).get("column_memory", {}).get("adopted_bytes", 0)
                    for m in worker_metrics
                )
                shipping[mode] = {
                    "ship_seconds": ship_seconds,
                    "reship_seconds": status["ship_metrics"]["reship_seconds_total"],
                    "answer_differences": mode_diffs,
                    "aggregate_private_bytes": private,
                    "aggregate_adopted_bytes": adopted,
                    "worker_rss_kb": [(m or {}).get("rss_kb") for m in worker_metrics],
                    "attach_seconds": [
                        (load or {}).get("attach_seconds") for load in loads
                    ],
                    "segments": status["shm"].get("segments", []),
                    "packs": status["shm"].get("packs", 0),
                }
                print(
                    f"  {mode} shipping x{ship_workers} workers: ship {ship_seconds:.3f}s, "
                    f"re-ship {shipping[mode]['reship_seconds']:.3f}s, "
                    f"{private / 1e6:.1f} MB private / {adopted / 1e6:.1f} MB adopted columns, "
                    f"{mode_diffs} answer-set differences"
                )
            finally:
                coordinator.close()
                ship_catalog.close()
        if "shm" in shipping and "pipe" in shipping:
            pipe_info, shm_info = shipping["pipe"], shipping["shm"]
            shipping["ship_speedup"] = (
                pipe_info["ship_seconds"] / shm_info["ship_seconds"]
                if shm_info["ship_seconds"]
                else float("inf")
            )
            shipping["reship_speedup"] = (
                pipe_info["reship_seconds"] / shm_info["reship_seconds"]
                if shm_info["reship_seconds"]
                else float("inf")
            )
            print(
                f"shipping: shm {shipping['ship_speedup']:.2f}x faster than pipe blobs "
                f"(re-ship {shipping['reship_speedup']:.2f}x)"
            )
        report["shipping"] = shipping

        # ------------------------------------------------------------------
        # crash injection: SIGKILL workers under a live client stream
        # ------------------------------------------------------------------
        coordinator = ClusterCoordinator(
            catalog,
            workers=min(2, max(worker_counts)),
            kind=args.kind,
            strategy=strategy,
            heartbeat_seconds=0.2,
        )
        errors: List[BaseException] = []
        crash_diffs = 0
        stop = threading.Event()
        expected_by_text = dict(zip([q.to_sparql() for q in queries], reference))

        def client() -> None:
            nonlocal crash_diffs
            while not stop.is_set():
                for query in queries:
                    try:
                        answer = coordinator.answer(GRAPH_NAME, query, limit=None)
                    except Exception as error:  # noqa: BLE001 - recorded as a gate
                        errors.append(error)
                        stop.set()
                        return
                    if answer.answers != expected_by_text[query.to_sparql()]:
                        crash_diffs += 1

        try:
            clients = [threading.Thread(target=client) for _ in range(3)]
            for thread in clients:
                thread.start()
            kills = 0
            for _ in range(2):
                deadline = perf_counter() + 10.0
                while perf_counter() < deadline:
                    victims = [
                        worker
                        for worker in coordinator.status()["workers"]
                        if worker["alive"] and worker["pid"] is not None
                    ]
                    if victims:
                        os.kill(victims[0]["pid"], signal.SIGKILL)
                        kills += 1
                        break
                    stop.wait(0.05)  # a respawn is in flight; wait for a target
                # let the stream run over the respawn before the next kill
                stop.wait(0.4)
            stop.wait(0.3)
            stop.set()
            for thread in clients:
                thread.join(timeout=120)
            status = coordinator.status()
            respawns = sum(worker["respawns"] for worker in status["workers"])
            crash_packs = status["shm"].get("packs", 0)
        finally:
            coordinator.close()
        report.update(
            {
                "crash_kills": kills,
                "crash_respawns": respawns,
                "crash_failed_requests": len(errors),
                "crash_answer_differences": crash_diffs,
                # with shm enabled, respawn recovery must re-attach, never
                # repack: one pack at register, zero after any kill
                "crash_packs": crash_packs,
                "crash_repacked": status["shm"]["enabled"] and crash_packs != 1,
                # every coordinator is closed by now: a clean run leaves
                # nothing named in /dev/shm
                "leaked_segments": shm.list_segments(),
                "crash_recovered": kills >= 1
                and respawns >= 1
                and not errors
                and not crash_diffs,
            }
        )
        print(
            f"crash injection: {kills} SIGKILL(s), {respawns} respawn(s), "
            f"{len(errors)} failed request(s), {crash_diffs} wrong answer(s)"
        )
        if errors:
            report["crash_first_error"] = repr(errors[0])
            print(f"  first failure: {errors[0]!r}", file=sys.stderr)
    finally:
        catalog.close()
    return report


def evaluate_serving_gates(args, report) -> List[str]:
    failures: List[str] = []
    if report["answer_differences"]:
        failures.append(
            f"{report['answer_differences']} answer-set differences between the "
            f"serial and the concurrent path"
        )
    if report["strategy_differences"]:
        failures.append(
            f"{report['strategy_differences']} queries where the "
            f"{args.strategy} strategy disagrees with the hash reference"
        )
    if report["warm_first_query_rebuilds"]:
        failures.append(
            f"warm start rebuilt state: {report['warm_first_query_rebuilds']} "
            f"(expected zero re-summarization / re-scan)"
        )
    if not report["http_restart_consistent"]:
        failures.append("answers changed across the HTTP warm-restart cycle")
    if not report["http_ingest_survived_restart"]:
        failures.append("an ingested triple was lost across the restart")
    if not args.quick:
        if report["warm_speedup"] < 1.0:
            failures.append(
                f"warm open ({report['warm_open_seconds']:.3f}s) is slower than the "
                f"cold build ({report['cold_build_seconds']:.3f}s)"
            )
        if args.backend == "sqlite" and report["cpus"] < 2:
            # a single-core host cannot exhibit thread scaling whatever the
            # executor does; report instead of failing vacuously
            print(
                f"SKIPPED: the {args.min_scaling:.1f}x scaling gate needs >= 2 CPUs "
                f"(this host has {report['cpus']})",
                file=sys.stderr,
            )
        elif args.backend == "sqlite" and report["scaling"] < args.min_scaling:
            failures.append(
                f"{args.threads}-thread throughput is only {report['scaling']:.2f}x the "
                f"serial QPS (gate: {args.min_scaling:.1f}x)"
            )
    return failures


def evaluate_saturation_gates(args, report) -> List[str]:
    failures: List[str] = []
    if not report["stores_identical"]:
        failures.append("the maintained G-inf store differs from saturate()-from-scratch")
    if not report["answers_monotone"]:
        failures.append("a saturated answer set shrank after ingest (lost derivations)")
    if report["saturation_builds"] != 1:
        failures.append(
            f"expected exactly 1 full saturation build, counted "
            f"{report['saturation_builds']} (the delta path fell back to rebuilds)"
        )
    if not report["warm_answers_identical"]:
        failures.append("saturated answers changed across the warm restart")
    if report["warm_saturation_rebuilds"]:
        failures.append(
            f"warm restart rebuilt the saturated side: {report['warm_saturation_rebuilds']}"
        )
    if report["rebuild_seconds"] < 0.05:
        # too small to time the rebuild reliably — the correctness gates
        # above still ran; report the ratio without gating on it
        print(
            f"SKIPPED: the {args.min_saturation_speedup:.0f}x saturation-speedup gate "
            f"needs a rebuild baseline >= 50 ms to be meaningful (measured "
            f"{report['rebuild_seconds']*1000:.1f} ms on this input/runner); "
            f"measured ratio: {report['saturation_speedup']:.1f}x",
            file=sys.stderr,
        )
    elif report["saturation_speedup"] < args.min_saturation_speedup:
        failures.append(
            f"delta maintenance is only {report['saturation_speedup']:.1f}x faster than "
            f"the rebuild path (gate: {args.min_saturation_speedup:.0f}x)"
        )
    return failures


def evaluate_telemetry_gates(args, report) -> List[str]:
    failures: List[str] = []
    if report["disabled_registry_entries"]:
        failures.append(
            f"the disabled stack registered {report['disabled_registry_entries']} "
            f"metric(s) (no-op instruments must leave the registry empty)"
        )
    if not report["trace_tree_ok"]:
        failures.append("the traced HTTP query returned no usable span tree")
    if not report["slow_log_captured"]:
        failures.append("the induced slow query did not land in /debug/slow")
    for problem in report["scrape_errors"]:
        failures.append(f"/metrics scrape: {problem}")
    # timing gate: interleaved best-of-laps keeps scheduler noise down, but
    # smoke-scale runs still jitter — the quick bound is deliberately loose
    max_overhead = 0.10 if args.quick else args.max_telemetry_overhead
    if report["overhead_fraction"] > max_overhead:
        failures.append(
            f"telemetry overhead is {report['overhead_fraction']*100:.2f}% "
            f"(gate: {max_overhead*100:.0f}%)"
        )
    return failures


def evaluate_cluster_gates(args, report) -> List[str]:
    failures: List[str] = []
    if report["answer_differences"]:
        failures.append(
            f"{report['answer_differences']} answer-set differences between the "
            f"cluster and the serial reference"
        )
    if report["leaked_segments"]:
        failures.append(
            f"named shared-memory segments leaked past shutdown: "
            f"{report['leaked_segments']}"
        )
    if report["crash_repacked"]:
        failures.append(
            f"crash injection repacked the segment plane: {report['crash_packs']} "
            f"pack(s) for an unchanged generation (re-ship must re-attach)"
        )
    shipping = report.get("shipping", {})
    if "shm" in shipping and "pipe" in shipping:
        if shipping["shm"]["answer_differences"] or shipping["pipe"]["answer_differences"]:
            failures.append(
                f"shipping-mode parity broke: "
                f"{shipping['shm']['answer_differences']} shm / "
                f"{shipping['pipe']['answer_differences']} pipe answer-set "
                f"differences vs serial"
            )
        # one replica per host: adopted segment pages are shared, so the
        # private column bytes across K shm workers must be well below the
        # per-worker copies the pipe mode makes (deterministic accounting,
        # not RSS — shared pages charge every attached process)
        if (
            shipping["shm"]["aggregate_private_bytes"]
            >= shipping["pipe"]["aggregate_private_bytes"] / 2
        ):
            failures.append(
                f"shm worker memory is not sub-linear in worker count: "
                f"{shipping['shm']['aggregate_private_bytes']} private bytes vs "
                f"{shipping['pipe']['aggregate_private_bytes']} for pipe blobs"
            )
        if args.quick:
            pass  # ship timings at smoke scale are noise, recorded only
        elif shipping["ship_speedup"] < args.min_ship_speedup:
            failures.append(
                f"shm ship is only {shipping['ship_speedup']:.2f}x faster than "
                f"pipe blobs at {shipping['workers']} workers "
                f"(gate: {args.min_ship_speedup:.1f}x)"
            )
    elif shipping.get("shm_available"):
        failures.append("shipping comparison did not run in both modes")
    else:
        print(
            "SKIPPED: the shm-vs-pipe shipping gates need named shared memory, "
            "unavailable on this host",
            file=sys.stderr,
        )
    if not report["crash_recovered"]:
        failures.append(
            f"crash injection did not recover cleanly: {report['crash_kills']} kill(s), "
            f"{report['crash_respawns']} respawn(s), "
            f"{report['crash_failed_requests']} failed request(s), "
            f"{report['crash_answer_differences']} wrong answer(s)"
        )
    peak_workers = report["worker_counts"][-1]
    if report["cpus"] < peak_workers:
        # worker processes beyond the core count time-slice instead of
        # running in parallel; the curve is still recorded, but gating on
        # it would fail for reasons unrelated to the code under test
        print(
            f"SKIPPED: the {args.min_cluster_scaling:.1f}x cluster scaling gate needs "
            f">= {peak_workers} CPUs (this host has {report['cpus']}); "
            f"measured ratio: {report['cluster_scaling']:.2f}x",
            file=sys.stderr,
        )
    elif report["cluster_scaling"] < args.min_cluster_scaling:
        failures.append(
            f"{peak_workers}-worker throughput is only {report['cluster_scaling']:.2f}x "
            f"the 1-worker QPS (gate: {args.min_cluster_scaling:.1f}x)"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small input, correctness checks only (CI smoke mode; no gates)",
    )
    parser.add_argument(
        "--scale", type=int, default=3200, help="BSBM scale for the full run (3200 ≈ 110k triples)"
    )
    parser.add_argument("--seed", type=int, default=0, help="generator/workload seed")
    parser.add_argument("--count", type=int, default=64, help="workload size")
    parser.add_argument(
        "--unsat-fraction",
        type=float,
        default=0.4,
        help="unsatisfiable share of the workload",
    )
    parser.add_argument(
        "--threads", type=int, default=8, help="concurrent reader threads"
    )
    parser.add_argument(
        "--backend",
        default="sqlite",
        choices=["memory", "sqlite"],
        help="store backend; the scaling gate assumes sqlite (file-backed, "
        "GIL-releasing reads) — memory reads are serialized by the GIL",
    )
    parser.add_argument(
        "--kind", default="weak+strong", help="guard summary kind(s) for the service"
    )
    parser.add_argument(
        "--strategy",
        default="sql",
        choices=["hash", "nested", "sql"],
        help="serving join strategy; sql (whole-join pushdown, the default) "
        "is what the thread pool scales on — its answers are cross-checked "
        "against the hash reference either way",
    )
    parser.add_argument(
        "--limit", type=int, default=100, help="distinct answers served per query"
    )
    parser.add_argument(
        "--min-scaling",
        type=float,
        default=2.0,
        help="required concurrent/serial QPS ratio (full sqlite run only)",
    )
    parser.add_argument(
        "--cluster",
        action="store_true",
        help="run the sharded serving tier benchmark instead of the serving "
        "benchmark (scaling curve, answer parity, crash injection)",
    )
    parser.add_argument(
        "--cluster-workers",
        default="1,2,4",
        help="comma-separated worker counts for the --cluster scaling curve",
    )
    parser.add_argument(
        "--min-cluster-scaling",
        type=float,
        default=2.0,
        help="required peak/1-worker QPS ratio in --cluster mode (skipped "
        "with notice when the host has fewer CPUs than peak workers)",
    )
    parser.add_argument(
        "--min-ship-speedup",
        type=float,
        default=3.0,
        help="required pipe-blob/shm (re-)ship time ratio in --cluster mode "
        "(full runs only; recorded without gating under --quick)",
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="run the telemetry plane benchmark instead of the serving "
        "benchmark (instrumentation overhead, /metrics scrape, slow-query log)",
    )
    parser.add_argument(
        "--max-telemetry-overhead",
        type=float,
        default=0.03,
        help="largest tolerated enabled/disabled slowdown fraction in "
        "--telemetry mode (relaxed to 0.10 under --quick)",
    )
    parser.add_argument(
        "--scrape-out",
        dest="scrape_output",
        help="write the raw /metrics exposition to this file (--telemetry mode)",
    )
    parser.add_argument(
        "--saturated",
        action="store_true",
        help="run the incremental G∞ maintenance benchmark instead of the "
        "serving benchmark (delta ingest vs rebuild-per-update)",
    )
    parser.add_argument(
        "--ingest-batch",
        type=int,
        default=100,
        help="triples per add_triples batch in --saturated mode",
    )
    parser.add_argument(
        "--ingest-batches",
        type=int,
        default=5,
        help="number of ingest batches in --saturated mode (2 under --quick)",
    )
    parser.add_argument(
        "--min-saturation-speedup",
        type=float,
        default=10.0,
        help="required rebuild/delta time ratio in --saturated mode "
        "(skipped with notice when the rebuild baseline is too small to time)",
    )
    parser.add_argument("--json", dest="json_output", help="write the report as JSON")
    args = parser.parse_args(argv)

    if args.cluster:
        report = run_cluster_benchmark(args)
        failures = evaluate_cluster_gates(args, report)
        shipping = report.get("shipping", {})
        ship_note = (
            f", shm ship {shipping['ship_speedup']:.2f}x pipe blobs"
            if "ship_speedup" in shipping
            else ""
        )
        pass_line = (
            f"\nPASS: cluster answers identical to serial at every worker count, "
            f"crash injection recovered ({report['crash_respawns']} respawn(s), zero "
            f"failed requests, zero leaked segments), peak scaling "
            f"{report['cluster_scaling']:.2f}x{ship_note}"
        )
    elif args.telemetry:
        report = run_telemetry_benchmark(args)
        failures = evaluate_telemetry_gates(args, report)
        pass_line = (
            f"\nPASS: telemetry overhead {report['overhead_fraction']*100:+.2f}% "
            f"({report['enabled_qps']:.1f} vs {report['disabled_qps']:.1f} qps), "
            f"scrape parsed ({report['scrape_metrics']} metrics), span tree ok, "
            f"slow query captured, disabled mode registered nothing"
        )
    elif args.saturated:
        report = run_saturation_benchmark(args)
        failures = evaluate_saturation_gates(args, report)
        pass_line = (
            f"\nPASS: G-inf maintained in place ({report['saturation_builds']} build, "
            f"{report['saturation_speedup']:.1f}x over the rebuild path), stores identical, "
            f"warm restart rebuilt nothing"
        )
    else:
        report = run_benchmark(args)
        failures = evaluate_serving_gates(args, report)
        if args.quick:
            pass_line = (
                "\nPASS: warm start rebuilt nothing; serial and concurrent answers identical"
            )
        else:
            pass_line = (
                f"\nPASS: warm open {report['warm_speedup']:.1f}x faster than the cold build, "
                f"{args.threads}-thread throughput {report['scaling']:.2f}x serial "
                f"(gate: {args.min_scaling:.1f}x), zero answer differences"
            )

    if args.json_output:
        with open(args.json_output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"report written to {args.json_output}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(pass_line)
    return 0


if __name__ == "__main__":
    sys.exit(main())
