"""E2 — Figures 4, 6, 7 and 9: the four summaries of the sample graph.

Regenerates the summary sizes of the paper's running example and checks the
exact node/edge counts of the weak (Figure 4) and strong (Figure 9)
summaries.
"""

from __future__ import annotations

from conftest import print_series

from repro.analysis.metrics import summary_size_table
from repro.core.builders import summarize


def test_sample_graph_summaries(fig2, benchmark):
    rows = benchmark(summary_size_table, fig2, ("weak", "strong", "typed_weak", "typed_strong", "type"))

    print_series(
        "Figures 4/6/7/9: summaries of the Figure 2 sample graph",
        ("kind", "data nodes", "all nodes", "data edges", "all edges"),
        [(row.kind, row.data_nodes, row.all_nodes, row.data_edges, row.all_edges) for row in rows],
    )

    by_kind = {row.kind: row for row in rows}
    # Figure 4 (weak): 6 data nodes + 3 class nodes, 6 data edges + 3 type edges
    assert by_kind["weak"].data_nodes == 6
    assert by_kind["weak"].all_nodes == 9
    assert by_kind["weak"].all_edges == 9
    # Figure 9 (strong): 9 data nodes + 3 class nodes, 12 edges
    assert by_kind["strong"].data_nodes == 9
    assert by_kind["strong"].all_edges == 12
    # typed summaries sit between the type-first summaries and the input size
    assert by_kind["weak"].all_edges <= by_kind["typed_weak"].all_edges <= len(fig2)
    assert by_kind["strong"].all_edges <= by_kind["typed_strong"].all_edges <= len(fig2)


def test_weak_summary_of_sample_graph_construction(fig2, benchmark):
    summary = benchmark(summarize, fig2, "weak")
    assert len(summary.graph) == 9


def test_strong_summary_of_sample_graph_construction(fig2, benchmark):
    summary = benchmark(summarize, fig2, "strong")
    assert len(summary.graph) == 12
