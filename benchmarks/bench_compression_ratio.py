"""E6 — Section 7's compression claim: the summary occupies a small fraction
of the data size (at most 0.028 in the paper, down to 2.8e-4 at the largest
scale).

The absolute ratio depends on the dataset scale (the ratio shrinks as the
input grows, since summary size is essentially determined by the schema
shape, not the instance count); what is asserted is that the ratio is small
and decreases with the input size.
"""

from __future__ import annotations

from conftest import BSBM_SCALES, print_series

from repro.analysis.metrics import PAPER_KINDS, summary_size_table


def test_compression_ratio_decreases_with_scale(bsbm_graphs, benchmark):
    def collect():
        ratio_rows = []
        for scale in sorted(BSBM_SCALES):
            for row in summary_size_table(bsbm_graphs[scale], kinds=PAPER_KINDS):
                ratio_rows.append(row)
        return ratio_rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)

    grouped = {}
    for row in rows:
        grouped.setdefault(row.input_triples, {})[row.kind] = row
    sizes = sorted(grouped)

    print_series(
        "Summary size as a fraction of the input size (edge ratio)",
        ("input triples", *PAPER_KINDS),
        [(size, *[grouped[size][kind].edge_ratio for kind in PAPER_KINDS]) for size in sizes],
    )

    for kind in PAPER_KINDS:
        # the ratio decreases (or stays flat) as the input grows
        assert grouped[sizes[-1]][kind].edge_ratio <= grouped[sizes[0]][kind].edge_ratio * 1.1
    # at the largest scale the weak/strong summaries are below 5% of the input
    assert grouped[sizes[-1]]["weak"].edge_ratio < 0.05
    assert grouped[sizes[-1]]["strong"].edge_ratio < 0.05


def test_weak_summary_nodes_bounded_by_properties(bsbm_medium, benchmark):
    """Prop. 4 corollary: weak data nodes ≤ 2 · |D_G|^0_p regardless of scale."""
    row = benchmark.pedantic(
        lambda: summary_size_table(bsbm_medium, kinds=("weak",))[0], rounds=1, iterations=1
    )
    assert row.data_edges == len(bsbm_medium.data_properties())
    assert row.data_nodes <= 2 * len(bsbm_medium.data_properties())
