"""E9 — Section 6's architecture choice: the encoded-store substrate.

The paper's prototype drives summarization through SQL queries against
PostgreSQL; this reproduction offers an in-memory store and a SQLite-backed
store behind the same interface.  The benchmark compares loading plus
incremental weak summarization on both backends and checks that both produce
the weak summary (isomorphic to the declarative quotient construction).
"""

from __future__ import annotations

from conftest import print_series

from repro.core.builders import weak_summary
from repro.core.incremental import incremental_weak_summary
from repro.core.isomorphism import graphs_isomorphic
from repro.store.memory import MemoryStore
from repro.store.sqlite import SQLiteStore
from repro.utils.timing import Stopwatch


def _pipeline(graph, backend):
    with backend() as store:
        store.load_graph(graph)
        return incremental_weak_summary(store)


def test_memory_store_pipeline(bsbm_medium, benchmark):
    summary = benchmark(_pipeline, bsbm_medium, MemoryStore)
    assert graphs_isomorphic(summary.graph, weak_summary(bsbm_medium).graph)


def test_sqlite_store_pipeline(bsbm_medium, benchmark):
    summary = benchmark(_pipeline, bsbm_medium, SQLiteStore)
    assert graphs_isomorphic(summary.graph, weak_summary(bsbm_medium).graph)


def test_backend_comparison_report(bsbm_medium, benchmark):
    def measure():
        measured = []
        for label, backend in (("memory", MemoryStore), ("sqlite", SQLiteStore)):
            with Stopwatch() as load_watch, backend() as store:
                store.load_graph(bsbm_medium)
            with backend() as store:
                store.load_graph(bsbm_medium)
                with Stopwatch() as summarize_watch:
                    summary = incremental_weak_summary(store)
            measured.append(
                (label, len(bsbm_medium), load_watch.elapsed, summarize_watch.elapsed, len(summary.graph))
            )
        return measured

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    print_series(
        "Store backends: load + incremental weak summarization",
        ("backend", "input triples", "load (s)", "summarize (s)", "summary edges"),
        rows,
    )
    # both backends produce the same-size summary
    assert rows[0][4] == rows[1][4]


def test_declarative_vs_incremental_weak(bsbm_medium, benchmark):
    """The declarative quotient construction as a reference point."""
    summary = benchmark(weak_summary, bsbm_medium)
    assert len(summary.graph) > 0
