"""E10 (extension) — Section 8's related-work argument, quantified.

The paper rejects bisimulation-based summaries because their size "grows
exponentially and can be as large as the input graph".  This benchmark
builds the forward / backward / full bisimulation quotients next to the four
clique-based summaries on the same BSBM-like graph and compares sizes and
construction times, making the argument measurable.
"""

from __future__ import annotations

from conftest import print_series

from repro.core.bisimulation import bisimulation_summary
from repro.core.builders import summarize


def test_bisimulation_versus_clique_summaries(bsbm_medium, benchmark):
    def build_all():
        results = {}
        for kind in ("weak", "strong", "typed_weak", "typed_strong"):
            results[kind] = summarize(bsbm_medium, kind)
        for direction in ("forward", "backward", "full"):
            results[f"bisim_{direction}"] = bisimulation_summary(bsbm_medium, direction)
        return results

    results = benchmark.pedantic(build_all, rounds=1, iterations=1)

    rows = []
    for kind, summary in results.items():
        statistics = summary.statistics()
        rows.append((kind, statistics.all_node_count, statistics.all_edge_count,
                     statistics.all_edge_count / max(1, len(bsbm_medium))))
    print_series(
        f"Clique-based summaries versus bisimulation baselines ({len(bsbm_medium)} input triples)",
        ("summary", "nodes", "edges", "edge ratio"),
        rows,
    )

    weak_edges = len(results["weak"].graph)
    full_bisim_edges = len(results["bisim_full"].graph)
    # the paper's argument: bisimulation is close to the input size, the
    # clique-based summaries are orders of magnitude below it
    assert full_bisim_edges > 5 * weak_edges
    assert full_bisim_edges > 0.5 * len(bsbm_medium)
    assert weak_edges < 0.05 * len(bsbm_medium)


def test_full_bisimulation_construction_time(bsbm_medium, benchmark):
    summary = benchmark(bisimulation_summary, bsbm_medium, "full")
    assert len(summary.graph) > 0


def test_bounded_bisimulation_construction_time(bsbm_medium, benchmark):
    summary = benchmark(bisimulation_summary, bsbm_medium, "forward", 2)
    assert len(summary.graph) > 0
