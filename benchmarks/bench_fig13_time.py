"""E5 — Figure 13: summarization time for the four summaries vs. input size.

Paper observations that must hold here: build time grows roughly linearly
with the input size, and the summaries that materialise cliques or isolate
typed nodes (strong, typed weak, typed strong) cost more than the plain weak
summary.  Absolute times are not comparable (Java + PostgreSQL on a Xeon in
the paper versus pure Python here).
"""

from __future__ import annotations

from conftest import BSBM_SCALES, print_series

from repro.analysis.metrics import PAPER_KINDS, summary_size_table
from repro.core.builders import summarize


def test_figure13_summarization_time(bsbm_graphs, benchmark):
    def collect():
        collected = []
        for scale in BSBM_SCALES:
            collected.extend(summary_size_table(bsbm_graphs[scale], kinds=PAPER_KINDS))
        return collected

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)

    grouped = {}
    for row in rows:
        grouped.setdefault(row.input_triples, {})[row.kind] = row
    sizes = sorted(grouped)

    print_series(
        "Figure 13: summarization time (seconds) per summary kind",
        ("input triples", *PAPER_KINDS),
        [(size, *[grouped[size][kind].build_seconds for kind in PAPER_KINDS]) for size in sizes],
    )

    # build time increases with the data size for every kind (allowing noise
    # by comparing the smallest against the largest scale only)
    for kind in PAPER_KINDS:
        assert grouped[sizes[-1]][kind].build_seconds >= grouped[sizes[0]][kind].build_seconds * 0.8

    # roughly linear behaviour: time per input triple does not blow up
    for kind in PAPER_KINDS:
        per_triple_small = grouped[sizes[0]][kind].build_seconds / sizes[0]
        per_triple_large = grouped[sizes[-1]][kind].build_seconds / sizes[-1]
        assert per_triple_large < per_triple_small * 5


def test_weak_summary_build_time(bsbm_medium, benchmark):
    benchmark(summarize, bsbm_medium, "weak")


def test_strong_summary_build_time(bsbm_medium, benchmark):
    benchmark(summarize, bsbm_medium, "strong")


def test_typed_weak_summary_build_time(bsbm_medium, benchmark):
    benchmark(summarize, bsbm_medium, "typed_weak")


def test_typed_strong_summary_build_time(bsbm_medium, benchmark):
    benchmark(summarize, bsbm_medium, "typed_strong")
