"""E8 — Proposition 1 / Definitions 1-2: RBGP representativeness and
accuracy measured on generated query workloads.

Every RBGP query with answers on ``G∞`` must have answers on the saturation
of each of the four summaries; the benchmark also measures how much cheaper
it is to evaluate the workload on the summary than on the graph (the
query-formulation / static-analysis use case motivating the paper).
"""

from __future__ import annotations

from conftest import print_series

from repro.analysis.metrics import PAPER_KINDS
from repro.core.builders import summarize
from repro.core.properties import check_representativeness
from repro.queries.evaluation import has_answers
from repro.queries.generator import generate_rbgp_workload
from repro.schema.saturation import saturate


WORKLOAD_SIZE = 20


def _workload(graph):
    return generate_rbgp_workload(saturate(graph), count=WORKLOAD_SIZE, size=2, seed=42)


def test_representativeness_of_all_kinds(bsbm_medium, benchmark):
    queries = _workload(bsbm_medium)

    def check_all():
        results = {}
        for kind in PAPER_KINDS:
            summary = summarize(bsbm_medium, kind)
            results[kind] = check_representativeness(bsbm_medium, summary, queries)
        return results

    results = benchmark.pedantic(check_all, rounds=1, iterations=1)

    print_series(
        f"RBGP representativeness over a {WORKLOAD_SIZE}-query workload (BSBM)",
        ("kind", "queries with answers on G∞", "preserved on summary", "ratio"),
        [(kind, report.total, report.preserved, report.ratio) for kind, report in results.items()],
    )
    for kind, report in results.items():
        assert report.holds, (kind, [str(q) for q in report.failures])


def test_query_answering_on_summary_is_cheaper(bsbm_medium, benchmark):
    queries = _workload(bsbm_medium)
    summary_graph = saturate(summarize(bsbm_medium, "weak").graph)

    def evaluate_on_summary():
        return sum(1 for query in queries if has_answers(summary_graph, query))

    answered = benchmark(evaluate_on_summary)
    assert answered == len(queries)
    # the summary explored by static analysis is far smaller than the graph
    assert len(summary_graph) * 10 < len(bsbm_medium)


def test_boolean_query_workload_on_graph(bsbm_medium, benchmark):
    """Reference point: the same workload evaluated on the full graph."""
    queries = _workload(bsbm_medium)

    def evaluate_on_graph():
        return sum(1 for query in queries if has_answers(bsbm_medium, query))

    answered = benchmark(evaluate_on_graph)
    assert answered == len(queries)
