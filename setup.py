"""Setup shim for environments lacking the ``wheel`` package.

All metadata lives in pyproject.toml; this file only enables legacy
(`--no-use-pep517`) editable installs where PEP 517 builds are unavailable.
"""

from setuptools import setup

setup()
