"""Using a summary for query pruning and static analysis.

The paper's query-oriented design guarantees (Proposition 1) that any RBGP
query with answers on ``G∞`` also has answers on the summary's saturation.
The contrapositive is the useful direction for an optimizer: if a query has
NO match on the (tiny) summary, it certainly has no answer on the (huge)
graph, so evaluation can be skipped entirely.

The script generates a bibliography dataset, a workload of satisfiable
queries and a workload of unsatisfiable ones, and shows how the weak summary
separates them without touching the full graph.

Run with::

    python examples/query_representativeness.py
"""

from __future__ import annotations

from repro.core.builders import summarize
from repro.core.properties import check_representativeness
from repro.datasets.bibliography import BIB, generate_bibliography
from repro.queries.evaluation import has_answers
from repro.queries.generator import generate_rbgp_workload
from repro.queries.parser import parse_query
from repro.schema.saturation import saturate
from repro.utils.timing import Stopwatch


def main() -> None:
    graph = generate_bibliography(publications=300, untyped_fraction=0.3, seed=0)
    saturated_graph = saturate(graph)
    print(f"bibliography dataset: {len(graph)} triples ({len(saturated_graph)} after saturation)")

    summary = summarize(graph, "weak")
    saturated_summary = saturate(summary.graph)
    print(f"weak summary: {len(summary.graph)} triples "
          f"({len(saturated_summary)} after saturation)")
    print()

    # ------------------------------------------------------------------
    # Proposition 1 on a generated workload
    # ------------------------------------------------------------------
    workload = generate_rbgp_workload(saturated_graph, count=25, size=2, seed=7)
    report = check_representativeness(graph, summary, workload)
    print(f"representativeness on a generated workload: "
          f"{report.preserved}/{report.total} queries preserved (holds: {report.holds})")
    print()

    # ------------------------------------------------------------------
    # query pruning: unsatisfiable queries are rejected on the summary
    # ------------------------------------------------------------------
    candidate_queries = {
        "books with an author": """
            PREFIX b: <http://bib.example.org/>
            ASK { ?x a b:Book . ?x b:writtenBy ?y }
        """,
        "books with a price (not in this dataset)": """
            PREFIX b: <http://bib.example.org/>
            ASK { ?x a b:Book . ?x b:hasPrice ?p }
        """,
        "people who reviewed something": """
            PREFIX b: <http://bib.example.org/>
            ASK { ?p b:reviewed ?x }
        """,
        "resources citing other resources (absent)": """
            PREFIX b: <http://bib.example.org/>
            ASK { ?x b:cites ?y }
        """,
    }

    print("static analysis against the summary (cheap) versus the graph (reference):")
    for label, text in candidate_queries.items():
        query = parse_query(text, name=label)
        with Stopwatch() as summary_watch:
            on_summary = has_answers(saturated_summary, query)
        with Stopwatch() as graph_watch:
            on_graph = has_answers(saturated_graph, query)
        verdict = "may have answers" if on_summary else "certainly empty -> prune"
        print(f"  {label:<45} summary: {str(on_summary):<5} ({summary_watch.elapsed*1000:6.1f} ms)  "
              f"graph: {str(on_graph):<5} ({graph_watch.elapsed*1000:6.1f} ms)  -> {verdict}")
        # soundness of pruning: never prune a satisfiable query
        assert on_summary or not on_graph


if __name__ == "__main__":
    main()
