"""Exploring an unfamiliar dataset through its summaries (BSBM workload).

This is the paper's first motivating use case: an application designer gets
a large, heterogeneous RDF dataset and wants to understand its structure
without scanning millions of triples.  The script:

1. generates a BSBM-like e-commerce graph;
2. builds the weak and typed-weak summaries;
3. prints what the summaries reveal — which classes exist, which properties
   connect which kinds of resources, how heterogeneous each class is;
4. reports the compression ratios (the paper's Figures 11-12 observation).

Run with::

    python examples/bsbm_exploration.py [scale]
"""

from __future__ import annotations

import sys

from repro.core.builders import summarize
from repro.datasets.bsbm import generate_bsbm
from repro.utils.timing import Stopwatch


def main(scale: int = 150) -> None:
    with Stopwatch() as generation_watch:
        graph = generate_bsbm(scale=scale, seed=0)
    print(
        f"generated BSBM-like graph: {len(graph)} triples, "
        f"{len(graph.nodes())} nodes ({generation_watch.elapsed:.2f}s)"
    )
    print(f"  {len(graph.data_properties())} distinct data properties, "
          f"{len(graph.class_nodes())} classes")
    print()

    # ------------------------------------------------------------------
    # the weak summary: one edge per property — a property-connectivity map
    # ------------------------------------------------------------------
    with Stopwatch() as weak_watch:
        weak = summarize(graph, "weak")
    statistics = weak.statistics()
    print(
        f"weak summary: {statistics.all_node_count} nodes, {statistics.all_edge_count} edges "
        f"({weak_watch.elapsed:.2f}s, ratio {statistics.compression_ratio:.4f})"
    )
    print("  property connectivity (source node -> property -> target node):")
    for triple in sorted(weak.graph.data_triples, key=lambda t: t.predicate.value)[:12]:
        print(f"    {triple.subject.local_name:<30} --{triple.predicate.local_name}--> {triple.object.local_name}")
    if len(weak.graph.data_triples) > 12:
        print(f"    ... and {len(weak.graph.data_triples) - 12} more properties")
    print()

    # ------------------------------------------------------------------
    # the typed-weak summary: structure per class set
    # ------------------------------------------------------------------
    with Stopwatch() as typed_watch:
        typed_weak = summarize(graph, "typed_weak")
    typed_statistics = typed_weak.statistics()
    print(
        f"typed weak summary: {typed_statistics.all_node_count} nodes, "
        f"{typed_statistics.all_edge_count} edges "
        f"({typed_watch.elapsed:.2f}s, ratio {typed_statistics.compression_ratio:.4f})"
    )
    print("  per class set: outgoing properties (what a resource of that kind looks like):")
    shown = 0
    for node in sorted(typed_weak.summary_data_nodes(), key=lambda n: n.value):
        types = typed_weak.graph.types_of(node)
        if not types or shown >= 6:
            continue
        outgoing = sorted({t.predicate.local_name for t in typed_weak.graph.triples(subject=node) if t.is_data()})
        class_names = ", ".join(sorted(c.local_name for c in types))
        extent_size = len(typed_weak.extent(node))
        print(f"    [{class_names}] ({extent_size} resources): {', '.join(outgoing) or '(no data properties)'}")
        shown += 1
    print()

    # ------------------------------------------------------------------
    # summary sizes versus data size: the Figures 11-12 observation
    # ------------------------------------------------------------------
    print("compression overview:")
    for kind in ("weak", "strong", "typed_weak", "typed_strong"):
        report = summarize(graph, kind).compression_report()
        print(
            f"  {kind:>13}: {report['summary_edges']:5.0f} edges for "
            f"{report['input_edges']} input triples "
            f"(edge ratio {report['edge_ratio']:.4f})"
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 150)
