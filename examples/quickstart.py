"""Quickstart: build the four summaries of a small RDF graph.

Run with::

    python examples/quickstart.py

The script parses a tiny Turtle document, builds the weak, strong, typed
weak and typed strong summaries, and prints their sizes plus the weak
summary's triples.
"""

from __future__ import annotations

from repro import summarize
from repro.io.ntriples import serialize_ntriples
from repro.io.turtle_lite import parse_turtle

DOCUMENT = """
@prefix ex: <http://example.org/> .

ex:doi1 a ex:Book ;
    ex:writtenBy ex:simenon ;
    ex:hasTitle "Le Port des Brumes" ;
    ex:publishedIn 1932 .

ex:doi2 a ex:Book ;
    ex:writtenBy ex:simenon ;
    ex:hasTitle "Maigret et la Grande Perche" .

ex:doi3 ex:hasTitle "An untyped tech report" ;
    ex:editedBy ex:someone .

ex:simenon ex:hasName "G. Simenon" .
ex:someone ex:hasName "A. N. Editor" .
"""


def main() -> None:
    graph = parse_turtle(DOCUMENT, name="quickstart")
    print(f"input graph: {len(graph)} triples, "
          f"{len(graph.data_properties())} data properties, "
          f"{len(graph.class_nodes())} classes")
    print()

    for kind in ("weak", "strong", "typed_weak", "typed_strong"):
        summary = summarize(graph, kind)
        statistics = summary.statistics()
        print(
            f"{kind:>13} summary: {statistics.all_node_count:3d} nodes, "
            f"{statistics.all_edge_count:3d} edges "
            f"(compression ratio {statistics.compression_ratio:.3f})"
        )

    print()
    print("weak summary triples:")
    print(serialize_ntriples(summarize(graph, "weak").graph))


if __name__ == "__main__":
    main()
