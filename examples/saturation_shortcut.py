"""Summarizing the semantics of a graph without saturating it (Prop. 5 / 8).

The semantics of an RDF graph with an RDFS schema is its saturation ``G∞``,
which can be much larger than ``G``.  For the weak and strong summaries the
paper proves a shortcut: ``W(G∞) = W((W_G)∞)`` — summarize first, saturate
the (tiny) summary, summarize again.  This script demonstrates the shortcut
on a schema-rich LUBM-like graph and shows the typed-weak counter-example
of Proposition 7.

Run with::

    python examples/saturation_shortcut.py
"""

from __future__ import annotations

from repro.core.builders import summarize
from repro.core.shortcuts import completeness_holds
from repro.datasets.lubm import generate_lubm
from repro.datasets.sample import typed_weak_counterexample_graph
from repro.schema.saturation import saturate
from repro.utils.timing import Stopwatch


def main() -> None:
    graph = generate_lubm(universities=1, departments_per_university=3, seed=0)
    print(f"LUBM-like input: {len(graph)} triples "
          f"({len(graph.schema_triples)} RDFS constraints)")

    with Stopwatch() as saturation_watch:
        saturated = saturate(graph)
    print(f"saturation G∞: {len(saturated)} triples ({saturation_watch.elapsed:.2f}s)")
    print()

    for kind in ("weak", "strong"):
        # direct: saturate the full graph, then summarize
        with Stopwatch() as direct_watch:
            direct = summarize(saturate(graph), kind)
        # shortcut: summarize, saturate the summary, summarize again
        with Stopwatch() as shortcut_watch:
            first = summarize(graph, kind)
            shortcut = summarize(saturate(first.graph), kind)

        comparison = completeness_holds(graph, kind)
        print(f"{kind} summary of G∞:")
        print(f"  direct   (saturate {len(graph)} triples, then summarize): "
              f"{len(direct.graph)} edges in {direct_watch.elapsed:.2f}s")
        print(f"  shortcut (summarize, saturate {len(first.graph)} triples, re-summarize): "
              f"{len(shortcut.graph)} edges in {shortcut_watch.elapsed:.2f}s")
        print(f"  identical up to node renaming: {comparison.equivalent}")
        print()

    # ------------------------------------------------------------------
    # the typed weak summary does NOT enjoy the shortcut (Prop. 7)
    # ------------------------------------------------------------------
    counterexample = typed_weak_counterexample_graph()
    comparison = completeness_holds(counterexample, "typed_weak")
    print("typed weak summary on the Figure 8 counter-example:")
    print(f"  TW(G∞) has {len(comparison.direct.graph)} edges, "
          f"TW((TW_G)∞) has {len(comparison.shortcut.graph)} edges "
          f"-> equal: {comparison.equivalent}")
    print("  (the domain constraint types an untyped resource in G∞, which the")
    print("   typed summary of the unsaturated graph cannot anticipate)")


if __name__ == "__main__":
    main()
