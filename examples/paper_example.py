"""The paper's running example, end to end.

Rebuilds Figure 2's sample graph, prints its property cliques (Table 1),
builds the four summaries (Figures 4, 6, 7 and 9), and writes one GraphViz
DOT file per summary into the current directory
(``paper_example_<kind>.dot``), ready for ``dot -Tpng``.

Run with::

    python examples/paper_example.py
"""

from __future__ import annotations

from pathlib import Path

from repro.core.builders import summarize
from repro.core.cliques import compute_cliques
from repro.core.properties import check_fixpoint, has_unique_data_properties
from repro.datasets.sample import FIG2, figure2_graph
from repro.io.dot import summary_to_dot, write_dot


def _clique_label(clique) -> str:
    if not clique:
        return "∅"
    return "{" + ", ".join(sorted(uri.local_name for uri in clique)) + "}"


def main() -> None:
    graph = figure2_graph()
    print(f"Figure 2 sample graph: {len(graph)} triples")
    print()

    # ------------------------------------------------------------------
    # Table 1: source and target cliques
    # ------------------------------------------------------------------
    cliques = compute_cliques(graph)
    print("Table 1: source and target cliques")
    print(f"{'resource':>10}  {'SC(r)':<34} {'TC(r)':<24}")
    resources = ["r1", "r2", "r3", "r4", "r5", "a1", "a2", "t1", "t2", "t3", "t4", "e1", "e2", "c1", "r6"]
    for name in resources:
        resource = FIG2.term(name)
        print(
            f"{name:>10}  {_clique_label(cliques.source_clique_of(resource)):<34} "
            f"{_clique_label(cliques.target_clique_of(resource)):<24}"
        )
    print()

    # ------------------------------------------------------------------
    # Figures 4, 6, 7, 9: the summaries
    # ------------------------------------------------------------------
    output_dir = Path.cwd()
    for kind, figure in (("weak", "Figure 4"), ("type", "Figure 6"),
                         ("typed_weak", "Figure 7"), ("typed_strong", "Figure 7 (TS)"),
                         ("strong", "Figure 9")):
        summary = summarize(graph, kind)
        statistics = summary.statistics()
        notes = []
        if kind == "weak":
            notes.append("unique data properties" if has_unique_data_properties(summary) else "!")
        notes.append("fixpoint" if check_fixpoint(summary) else "not a fixpoint")
        print(
            f"{figure:<14} {kind:>13}: {statistics.all_node_count:2d} nodes, "
            f"{statistics.all_edge_count:2d} edges   [{', '.join(notes)}]"
        )
        dot_path = output_dir / f"paper_example_{kind}.dot"
        write_dot(summary_to_dot(summary, name=kind, show_extents=True), dot_path)
    print()
    print(f"DOT files written to the current directory ({output_dir}).")

    # ------------------------------------------------------------------
    # who is represented by whom, in the weak summary
    # ------------------------------------------------------------------
    weak = summarize(graph, "weak")
    print()
    print("Weak summary extents (summary node <- represented resources):")
    for node in sorted(weak.summary_data_nodes(), key=lambda n: n.value):
        members = ", ".join(sorted(term.local_name if hasattr(term, "local_name") else str(term)
                                   for term in weak.extent(node)))
        print(f"  {node.local_name:<28} <- {members}")


if __name__ == "__main__":
    main()
