"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single exception type at API boundaries while still being able to
discriminate parse errors from store errors from summarization errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ParseError(ReproError):
    """Raised when an RDF serialization (N-Triples, Turtle) cannot be parsed.

    Attributes
    ----------
    line_number:
        1-based line number at which the error was detected, when known.
    line:
        The offending source line, when known.
    """

    def __init__(self, message, line_number=None, line=None):
        location = f" (line {line_number})" if line_number is not None else ""
        super().__init__(f"{message}{location}")
        self.line_number = line_number
        self.line = line


class MalformedTripleError(ReproError):
    """Raised when a triple violates RDF well-formedness constraints."""


class StoreError(ReproError):
    """Raised for failures inside a :class:`repro.store.base.TripleStore`."""


class StoreClosedError(StoreError):
    """Raised when operating on a store that has already been closed."""


class DictionaryError(ReproError):
    """Raised when encoding/decoding through a :class:`Dictionary` fails."""


class UnknownTermError(DictionaryError):
    """Raised when decoding an integer id that was never assigned."""


class QueryError(ReproError):
    """Raised when a query is syntactically or semantically invalid."""


class QueryParseError(QueryError):
    """Raised when a BGP query string cannot be parsed."""


class NotRBGPError(QueryError):
    """Raised when a query does not belong to the RBGP dialect (Def. 3)."""


class SummarizationError(ReproError):
    """Raised when a summary cannot be built from the input graph."""


class UnknownSummaryKindError(SummarizationError):
    """Raised when an unsupported summary kind name is requested."""


class SaturationError(ReproError):
    """Raised when RDFS saturation fails (e.g. ill-formed schema triples)."""


class ServiceError(ReproError):
    """Raised for failures inside the query service layer."""


class CatalogError(ServiceError):
    """Raised for failures of a :class:`repro.service.catalog.GraphCatalog`.

    Catching this single type covers every catalog misuse — unknown names,
    duplicate registrations, persistence failures — while the subclasses
    keep the individual conditions distinguishable.
    """


class UnknownGraphError(CatalogError):
    """Raised when a catalog lookup names a graph that was never registered."""


class DuplicateGraphError(CatalogError):
    """Raised when registering a graph under a name already in use.

    The existing entry is left untouched: the failed registration neither
    replaces, mutates nor closes it.
    """


class PersistenceError(CatalogError):
    """Raised when a persistent catalog file cannot be opened or written
    (missing file in read-only contexts, schema-version mismatch, corrupt
    artifact payloads)."""


class ClusterError(ServiceError):
    """Raised for failures of the sharded multi-process serving tier
    (:mod:`repro.cluster`): protocol violations, worker-side faults that
    survive the coordinator's retry budget, shutdown failures."""


class WorkerCrashedError(ClusterError):
    """Raised when a cluster worker process died (pipe EOF / dead process)
    while a request was outstanding.  The coordinator catches this
    internally, respawns the worker and retries; it only escapes to callers
    once the retry budget is exhausted."""


class WorkerTimeoutError(ClusterError):
    """Raised when a cluster worker failed to reply within the request
    timeout (the process is alive but unresponsive — e.g. wedged in a
    pathological join).  Unlike a crash this is *not* auto-retried: the
    same request would wedge the respawned worker again."""
