"""The project rule set: each rule encodes a bug this repo actually had.

* ``guarded-by``            — PR 7-era races on shared state documented but
                              not enforced as lock-protected.
* ``no-blocking-under-lock``— the PR 7 ingest-vs-respawn deadlock class:
                              blocking pipe/queue traffic under a ship lock.
* ``no-nested-rwlock``      — the non-reentrant ``ReadWriteLock`` contract:
                              nothing reachable under the lock may re-enter
                              ``QueryService.answer`` / ``add_triples``.
* ``no-pickled-terms``      — PR 4/8: ``Term`` hashes are process-salted, so
                              pickling them across processes corrupts
                              dictionaries; cluster code must use the
                              ``repro.cluster.protocol`` pack paths.
* ``wall-clock-duration``   — ``time()`` deltas jump under NTP; durations
                              must come from ``perf_counter``/``monotonic``.
* ``telemetry-instrument-in-hot-loop`` — ``telemetry.counter(...)`` is a
                              get-or-create (format + registry lock); in a
                              loop body it turns a counter bump into a
                              registry transaction per iteration.
"""

from __future__ import annotations

import ast
import re
from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.engine import FileContext, Finding, Rule

__all__ = ["ALL_RULES"]

_GUARDED_BY_RE = re.compile(r"#:?\s*guarded by\s+([A-Za-z_][A-Za-z0-9_.]*)")


def _unparse(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse failures are cosmetic
        return "<expr>"


def _attr_path(node: ast.AST) -> Optional[str]:
    """Dotted path of a Name/Attribute chain (``self._lock``), else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _with_item_paths(stmt: ast.With) -> List[str]:
    """Normalised context-expression paths of a ``with`` statement.

    ``with self._lock:`` yields ``self._lock``; ``with
    entry.rwlock.read_locked():`` yields ``entry.rwlock.read_locked()``.
    """
    paths: List[str] = []
    for item in stmt.items:
        expr = item.context_expr
        if isinstance(expr, ast.Call) and not expr.args and not expr.keywords:
            base = _attr_path(expr.func)
            if base is not None:
                paths.append(f"{base}()")
                continue
        path = _attr_path(expr)
        paths.append(path if path is not None else _unparse(expr))
    return paths


class _AncestryVisitor(ast.NodeVisitor):
    """NodeVisitor that maintains the stack of enclosing statements."""

    def __init__(self):
        self.stack: List[ast.AST] = []

    def generic_visit(self, node: ast.AST) -> None:
        self.stack.append(node)
        try:
            super().generic_visit(node)
        finally:
            self.stack.pop()


# ----------------------------------------------------------------------
# guarded-by
# ----------------------------------------------------------------------
class GuardedByRule(Rule):
    name = "guarded-by"
    description = (
        "attributes annotated '#: guarded by <lock>' must only be touched "
        "inside the matching with/read_locked()/write_locked() block"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(ctx, node))
        return findings

    # -- annotation harvesting ----------------------------------------
    def _guard_annotations(
        self, ctx: FileContext, class_node: ast.ClassDef
    ) -> Dict[str, str]:
        """attribute name -> guard expression (e.g. ``self._lock``)."""
        guards: Dict[str, str] = {}
        for method in class_node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for stmt in ast.walk(method):
                targets: List[ast.expr] = []
                if isinstance(stmt, ast.Assign):
                    targets = stmt.targets
                elif isinstance(stmt, ast.AnnAssign):
                    targets = [stmt.target]
                else:
                    continue
                for target in targets:
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    guard = self._annotation_for(ctx, stmt.lineno)
                    if guard is not None:
                        guards[target.attr] = guard
        return guards

    def _annotation_for(self, ctx: FileContext, line: int) -> Optional[str]:
        """Guard expr from a trailing comment or the ``#:`` block above."""
        comment = ctx.comment_on(line)
        if comment:
            match = _GUARDED_BY_RE.search(comment)
            if match:
                return match.group(1)
        lines = ctx.lines
        probe = line - 1
        while probe >= 1 and probe - 1 < len(lines):
            text = lines[probe - 1].strip()
            if not text.startswith("#"):
                break
            match = _GUARDED_BY_RE.search(text)
            if match:
                return match.group(1)
            probe -= 1
        return None

    # -- enforcement --------------------------------------------------
    def _check_class(
        self, ctx: FileContext, class_node: ast.ClassDef
    ) -> Iterable[Finding]:
        guards = self._guard_annotations(ctx, class_node)
        if not guards:
            return ()
        findings: List[Finding] = []
        for method in class_node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name in {"__init__", "__del__"}:
                continue
            findings.extend(self._check_method(ctx, method, guards))
        return findings

    def _check_method(
        self,
        ctx: FileContext,
        method: ast.AST,
        guards: Dict[str, str],
    ) -> Iterable[Finding]:
        findings: List[Finding] = []
        rule = self

        class Visitor(_AncestryVisitor):
            def visit_Attribute(self, node: ast.Attribute) -> None:
                if (
                    isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and node.attr in guards
                ):
                    guard = guards[node.attr]
                    if not rule._guard_held(self.stack, guard):
                        findings.append(
                            Finding(
                                rule=rule.name,
                                path=str(ctx.path),
                                line=node.lineno,
                                col=node.col_offset,
                                message=(
                                    f"'self.{node.attr}' is documented as "
                                    f"guarded by '{guard}' but is accessed "
                                    f"outside a 'with {guard}' / "
                                    f"'{guard}.read_locked()' / "
                                    f"'{guard}.write_locked()' block"
                                ),
                            )
                        )
                self.generic_visit(node)

        Visitor().visit(method)
        return findings

    @staticmethod
    def _guard_held(stack: Sequence[ast.AST], guard: str) -> bool:
        accepted = {guard, f"{guard}.read_locked()", f"{guard}.write_locked()"}
        for ancestor in stack:
            if isinstance(ancestor, ast.With):
                if accepted & set(_with_item_paths(ancestor)):
                    return True
        return False


# ----------------------------------------------------------------------
# no-blocking-under-lock
# ----------------------------------------------------------------------
class NoBlockingUnderLockRule(Rule):
    name = "no-blocking-under-lock"
    description = (
        "no pipe send/recv, untimed Queue.put, untimed join(), or worker "
        "spawn inside a 'with <ship_lock>' body (the PR 7 deadlock class)"
    )

    _LOCK_MARKER = "ship_lock"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.With) and any(
                self._LOCK_MARKER in path for path in _with_item_paths(node)
            ):
                for stmt in node.body:
                    findings.extend(self._scan(ctx, stmt))
        return findings

    def _scan(self, ctx: FileContext, root: ast.AST) -> Iterable[Finding]:
        findings: List[Finding] = []
        # Manual walk that does not descend into nested defs: calls inside
        # a nested def execute later, outside the lock.
        pending: List[ast.AST] = [root]
        nodes: List[ast.AST] = []
        while pending:
            node = pending.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            nodes.append(node)
            pending.extend(ast.iter_child_nodes(node))
        for node in nodes:
            if not isinstance(node, ast.Call):
                continue
            reason = self._blocking_reason(node)
            if reason is not None:
                findings.append(
                    Finding(
                        rule=self.name,
                        path=str(ctx.path),
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"{reason} inside a 'with {self._LOCK_MARKER}' "
                            "body can deadlock against the re-ship path "
                            "(PR 7); move it outside the lock or use a "
                            "timed variant"
                        ),
                    )
                )
        return findings

    @staticmethod
    def _blocking_reason(call: ast.Call) -> Optional[str]:
        func = call.func
        keyword_names = {kw.arg for kw in call.keywords}
        if isinstance(func, ast.Attribute):
            attr = func.attr
            if attr in {"send", "recv"}:
                return f"pipe '{attr}()'"
            if attr == "put" and "timeout" not in keyword_names:
                return "untimed 'Queue.put()'"
            if attr == "join" and not call.args and "timeout" not in keyword_names:
                return "untimed 'join()'"
            if "spawn" in attr:
                return f"worker spawn '{attr}()'"
            return None
        if isinstance(func, ast.Name) and "spawn" in func.id:
            return f"worker spawn '{func.id}()'"
        return None


# ----------------------------------------------------------------------
# no-nested-rwlock
# ----------------------------------------------------------------------
class _FunctionInfo:
    __slots__ = ("qualname", "module", "class_name", "name", "calls", "path")

    def __init__(self, qualname, module, class_name, name, path):
        self.qualname = qualname
        self.module = module
        self.class_name = class_name
        self.name = name
        self.path = path
        #: (kind, callee_name, lineno, col, under_rwlock)
        self.calls: List[Tuple[str, str, int, int, bool]] = []


class NoNestedRwlockRule(Rule):
    name = "no-nested-rwlock"
    description = (
        "call-graph check: code reachable while a ReadWriteLock is held "
        "must not re-enter QueryService.answer / add_triples (the lock is "
        "non-reentrant)"
    )

    _FORBIDDEN = {"answer", "add_triples", "add_encoded_rows"}
    _MAX_DEPTH = 8

    def __init__(self):
        self._functions: Dict[str, _FunctionInfo] = {}
        self._methods_by_name: Dict[str, Set[str]] = {}
        self._module_functions: Dict[Tuple[str, str], str] = {}
        self._imports: Dict[str, Dict[str, str]] = {}

    # -- collection ---------------------------------------------------
    def collect(self, ctx: FileContext) -> None:
        imports: Dict[str, str] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
        self._imports[ctx.module] = imports

        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._collect_function(ctx, node, class_name=None)
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._collect_function(ctx, item, class_name=node.name)

    def _collect_function(
        self, ctx: FileContext, node: ast.AST, class_name: Optional[str]
    ) -> None:
        qualname = (
            f"{ctx.module}:{class_name}.{node.name}"
            if class_name
            else f"{ctx.module}:{node.name}"
        )
        info = _FunctionInfo(qualname, ctx.module, class_name, node.name, str(ctx.path))
        self._walk_body(node.body, info, under=False)
        self._functions[qualname] = info
        if class_name:
            self._methods_by_name.setdefault(node.name, set()).add(qualname)
        else:
            self._module_functions[(ctx.module, node.name)] = qualname

    def _walk_body(
        self, body: Sequence[ast.stmt], info: _FunctionInfo, under: bool
    ) -> None:
        region = under
        for stmt in body:
            if self._is_rw_acquire(stmt):
                # `x.acquire_read()` then a try/finally (or trailing
                # statements) is the raw-span idiom: everything after the
                # acquire in this block runs under the lock.
                region = True
                continue
            self._walk_stmt(stmt, info, region)
            if region and not under and self._releases_rwlock(stmt):
                # The try/finally released the lock; the rest of the
                # block runs outside it again.
                region = False

    def _walk_stmt(self, stmt: ast.stmt, info: _FunctionInfo, under: bool) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested defs run later, not under this region
        if isinstance(stmt, ast.With):
            held = under or any(
                path.endswith(".read_locked()") or path.endswith(".write_locked()")
                for path in _with_item_paths(stmt)
            )
            for item in stmt.items:
                self._record_calls(item.context_expr, info, under)
            self._walk_body(stmt.body, info, held)
            return
        # Record calls in the statement's own expressions, then recurse
        # into sub-blocks with the same region flag.
        for expr_field in ast.iter_fields(stmt):
            name, value = expr_field
            if isinstance(value, ast.expr):
                self._record_calls(value, info, under)
            elif isinstance(value, list):
                for child in value:
                    if isinstance(child, ast.expr):
                        self._record_calls(child, info, under)
                    elif isinstance(child, ast.stmt):
                        self._walk_stmt(child, info, under)
                    elif isinstance(child, ast.excepthandler):
                        self._walk_body(child.body, info, under)

    def _record_calls(self, expr: ast.expr, info: _FunctionInfo, under: bool) -> None:
        for node in ast.walk(expr):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                if (
                    isinstance(func.value, ast.Name)
                    and func.value.id == "self"
                ):
                    info.calls.append(
                        ("self", func.attr, node.lineno, node.col_offset, under)
                    )
                else:
                    info.calls.append(
                        ("attr", func.attr, node.lineno, node.col_offset, under)
                    )
            elif isinstance(func, ast.Name):
                info.calls.append(
                    ("plain", func.id, node.lineno, node.col_offset, under)
                )

    @staticmethod
    def _releases_rwlock(stmt: ast.stmt) -> bool:
        if not isinstance(stmt, ast.Try) or not stmt.finalbody:
            return False
        for node in ast.walk(ast.Module(body=list(stmt.finalbody), type_ignores=[])):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in {"release_read", "release_write"}
            ):
                return True
        return False

    @staticmethod
    def _is_rw_acquire(stmt: ast.stmt) -> bool:
        if not isinstance(stmt, ast.Expr) or not isinstance(stmt.value, ast.Call):
            return False
        func = stmt.value.func
        return isinstance(func, ast.Attribute) and func.attr in {
            "acquire_read",
            "acquire_write",
        }

    # -- resolution ---------------------------------------------------
    def _resolve(self, info: _FunctionInfo, kind: str, name: str) -> Set[str]:
        if kind == "self" and info.class_name:
            own = f"{info.module}:{info.class_name}.{name}"
            if own in self._functions:
                return {own}
            return self._methods_by_name.get(name, set())
        if kind in {"self", "attr"}:
            return self._methods_by_name.get(name, set())
        # plain call: same-module function, then explicit import
        own = self._module_functions.get((info.module, name))
        if own is not None:
            return {own}
        target = self._imports.get(info.module, {}).get(name)
        if target is not None:
            module, _, func_name = target.rpartition(".")
            resolved = self._module_functions.get((module, func_name))
            if resolved is not None:
                return {resolved}
            # Imported from outside the linted tree: only its own name
            # can condemn it.
            return set()
        return set()

    def _is_forbidden(self, kind: str, name: str) -> bool:
        if name not in self._FORBIDDEN:
            return False
        if kind == "plain":
            # A plain call is only the entry point if it is not an
            # imported helper shadowing the name (e.g. queries.has_answers).
            return False
        return True

    # -- reporting ----------------------------------------------------
    def finalize(self) -> Iterable[Finding]:
        findings: List[Finding] = []
        for info in self._functions.values():
            for kind, callee, lineno, col, under in info.calls:
                if not under:
                    continue
                chain = self._find_violation(info, kind, callee)
                if chain is not None:
                    findings.append(
                        Finding(
                            rule=self.name,
                            path=info.path,
                            line=lineno,
                            col=col,
                            message=(
                                f"call under a held ReadWriteLock reaches "
                                f"the RW entry point via "
                                f"{' -> '.join(chain)}; the lock is "
                                "non-reentrant, so this can deadlock behind "
                                "a waiting writer"
                            ),
                        )
                    )
        return findings

    def _find_violation(
        self, info: _FunctionInfo, kind: str, callee: str
    ) -> Optional[List[str]]:
        if self._is_forbidden(kind, callee):
            return [f"{callee}()"]
        queue = deque(
            (target, [callee]) for target in self._resolve(info, kind, callee)
        )
        seen: Set[str] = set()
        while queue:
            qualname, chain = queue.popleft()
            if qualname in seen or len(chain) > self._MAX_DEPTH:
                continue
            seen.add(qualname)
            target_info = self._functions.get(qualname)
            if target_info is None:
                continue
            for next_kind, next_callee, _line, _col, _under in target_info.calls:
                if self._is_forbidden(next_kind, next_callee):
                    return chain + [f"{next_callee}()"]
                for target in self._resolve(target_info, next_kind, next_callee):
                    if target not in seen:
                        queue.append((target, chain + [next_callee]))
        return None


# ----------------------------------------------------------------------
# no-pickled-terms
# ----------------------------------------------------------------------
class NoPickledTermsRule(Rule):
    name = "no-pickled-terms"
    description = (
        "cluster code must ship terms through repro.cluster.protocol pack "
        "paths, never pickle Term objects (their hashes are process-salted)"
    )

    _TERMISH = re.compile(r"(?i)\bterm")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if ".cluster" not in ctx.module and not ctx.module.startswith("cluster"):
            return ()
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "pickle"
                and func.attr in {"dumps", "dump", "loads", "load"}
            ):
                continue
            for arg in node.args:
                text = _unparse(arg)
                if self._TERMISH.search(text) or "Term(" in text:
                    findings.append(
                        Finding(
                            rule=self.name,
                            path=str(ctx.path),
                            line=node.lineno,
                            col=node.col_offset,
                            message=(
                                f"pickle.{func.attr}({text!r}) looks like it "
                                "moves terms; Term hashes are process-salted, "
                                "so terms must cross process boundaries via "
                                "the repro.cluster.protocol pack paths"
                            ),
                        )
                    )
                    break
        return findings


# ----------------------------------------------------------------------
# wall-clock-duration
# ----------------------------------------------------------------------
class WallClockDurationRule(Rule):
    name = "wall-clock-duration"
    description = (
        "time.time() deltas used as durations must be perf_counter()/"
        "monotonic() — the wall clock jumps under NTP"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        wall_clock_names = self._wall_clock_names(ctx.tree)
        if not wall_clock_names:
            return ()
        findings: List[Finding] = []
        rule = self
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(
                    rule._check_scope(ctx, node.body, wall_clock_names)
                )
        findings.extend(self._check_scope(ctx, ctx.tree.body, wall_clock_names))
        # De-duplicate (module scope walk also sees function bodies).
        unique = {(f.line, f.col): f for f in findings}
        return list(unique.values())

    @staticmethod
    def _wall_clock_names(tree: ast.Module) -> Set[str]:
        """Local names that mean the wall clock: ``time.time`` or ``time``."""
        names: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        names.add(f"{alias.asname or alias.name}.time")
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name == "time":
                        names.add(alias.asname or alias.name)
        return names

    def _is_wall_clock_call(self, node: ast.AST, names: Set[str]) -> bool:
        if not isinstance(node, ast.Call):
            return False
        path = _attr_path(node.func)
        return path is not None and path in names

    def _contains_wall_clock_call(self, node: ast.AST, names: Set[str]) -> bool:
        return any(
            self._is_wall_clock_call(child, names) for child in ast.walk(node)
        )

    def _check_scope(
        self, ctx: FileContext, body: Sequence[ast.stmt], names: Set[str]
    ) -> Iterable[Finding]:
        tainted: Set[str] = set()
        findings: List[Finding] = []
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if isinstance(node, ast.Assign) and self._contains_wall_clock_call(
                    node.value, names
                ):
                    for target in node.targets:
                        path = _attr_path(target)
                        if path is not None:
                            tainted.add(path)
                if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Sub):
                    for operand in (node.left, node.right):
                        if self._is_wall_clock_call(operand, names) or (
                            _attr_path(operand) in tainted
                        ):
                            findings.append(
                                Finding(
                                    rule=self.name,
                                    path=str(ctx.path),
                                    line=node.lineno,
                                    col=node.col_offset,
                                    message=(
                                        "wall-clock time() delta used as a "
                                        "duration; use perf_counter() (or "
                                        "monotonic() for deadlines) — "
                                        "time() jumps under NTP/DST"
                                    ),
                                )
                            )
                            break
        return findings


# ----------------------------------------------------------------------
# telemetry-instrument-in-hot-loop
# ----------------------------------------------------------------------
class TelemetryInstrumentInHotLoopRule(Rule):
    name = "telemetry-instrument-in-hot-loop"
    description = (
        "no telemetry.counter/gauge/histogram get-or-create inside loop "
        "bodies; hoist the instrument and reuse it"
    )

    _INSTRUMENTS = {"counter", "gauge", "histogram"}

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        rule = self

        class Visitor(_AncestryVisitor):
            def visit_Call(self, node: ast.Call) -> None:
                if rule._is_instrument_call(node) and rule._in_loop(self.stack):
                    func_path = _attr_path(node.func) or "telemetry.<instrument>"
                    findings.append(
                        Finding(
                            rule=rule.name,
                            path=str(ctx.path),
                            line=node.lineno,
                            col=node.col_offset,
                            message=(
                                f"'{func_path}(...)' is a registry "
                                "get-or-create (name formatting plus a "
                                "registry lock) executed every iteration; "
                                "hoist the instrument out of the loop"
                            ),
                        )
                    )
                self.generic_visit(node)

        Visitor().visit(ctx.tree)
        return findings

    def _is_instrument_call(self, node: ast.Call) -> bool:
        func = node.func
        return (
            isinstance(func, ast.Attribute)
            and func.attr in self._INSTRUMENTS
            and isinstance(func.value, ast.Name)
            and func.value.id == "telemetry"
        )

    @staticmethod
    def _in_loop(stack: Sequence[ast.AST]) -> bool:
        # Innermost function/loop wins: a def between the call and the
        # loop means the call runs when the def is invoked, not per
        # iteration.
        for ancestor in reversed(stack):
            if isinstance(ancestor, (ast.For, ast.While, ast.AsyncFor)):
                return True
            if isinstance(
                ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                return False
        return False


ALL_RULES = [
    GuardedByRule,
    NoBlockingUnderLockRule,
    NoNestedRwlockRule,
    NoPickledTermsRule,
    WallClockDurationRule,
    TelemetryInstrumentInHotLoopRule,
]
