"""``repro.lint`` — project-specific AST static analysis.

The serving stack's concurrency invariants (lock discipline, ship-lock
blocking rules, term-shipping paths, clock choice for durations) used to
live in docstrings; this package makes them machine-checked.  Run it as
``repro lint`` or ``python -m repro.lint``; see ``docs/static_analysis.md``
for the rule catalogue and the motivating bug behind each rule.
"""

from repro.lint.engine import Finding, LintEngine, Rule, main, run_lint
from repro.lint.rules import ALL_RULES

__all__ = ["ALL_RULES", "Finding", "LintEngine", "Rule", "main", "run_lint"]
