"""Rule registry, per-file driver, suppressions, and CLI for ``repro lint``.

The engine is deliberately small: a :class:`Rule` sees one parsed file at
a time through a :class:`FileContext` (source text, AST, comment map) and
yields :class:`Finding`\\ s; rules that need whole-project knowledge (the
call-graph rule) implement the optional ``collect`` / ``finalize`` pair
instead.  Suppressions are source comments::

    handle.connection.send(req)  # repro-lint: disable=no-blocking-under-lock

either trailing the offending line or on a standalone comment line
immediately above it; ``disable=all`` silences every rule for that line.
A finding whose line carries a matching suppression is dropped before
output, so ``repro lint`` exiting 0 means *zero unsuppressed findings*.
"""

from __future__ import annotations

import argparse
import ast
import io
import json
import re
import sys
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "LintEngine",
    "run_lint",
    "main",
]

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s-]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class FileContext:
    """Everything a rule may need about one source file."""

    path: Path
    module: str
    source: str
    tree: ast.Module
    #: line number -> comment text (including the leading ``#``).
    comments: Dict[int, str]
    #: line number -> rule names disabled on that line (``{"all"}`` wins).
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)

    @property
    def lines(self) -> List[str]:
        return self.source.splitlines()

    def comment_on(self, line: int) -> Optional[str]:
        return self.comments.get(line)


class Rule:
    """Base class for lint rules.

    Per-file rules override :meth:`check`.  Project-wide rules override
    :meth:`collect` (called once per file) and :meth:`finalize` (called
    after every file has been collected).
    """

    name: str = "abstract"
    description: str = ""

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def collect(self, ctx: FileContext) -> None:
        return None

    def finalize(self) -> Iterable[Finding]:
        return ()


def _comment_map(source: str) -> Dict[int, str]:
    """All comments by line, via tokenize (string-literal safe)."""
    comments: Dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return comments


def _suppression_map(comments: Dict[int, str], source: str) -> Dict[int, Set[str]]:
    """Effective suppression lines.

    A trailing comment suppresses its own line; a comment that is the
    whole line suppresses the next line as well (so a suppression can sit
    above a long statement).
    """
    lines = source.splitlines()
    suppressions: Dict[int, Set[str]] = {}
    for line_no, comment in comments.items():
        match = _SUPPRESS_RE.search(comment)
        if not match:
            continue
        rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
        suppressions.setdefault(line_no, set()).update(rules)
        text = lines[line_no - 1] if line_no - 1 < len(lines) else ""
        if text.strip().startswith("#"):
            suppressions.setdefault(line_no + 1, set()).update(rules)
    return suppressions


def _module_name(path: Path) -> str:
    """Dotted module path, anchored at the last ``repro`` path segment."""
    parts = list(path.with_suffix("").parts)
    if "repro" in parts:
        index = len(parts) - 1 - parts[::-1].index("repro")
        parts = parts[index:]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def build_context(path: Path) -> Optional[FileContext]:
    """Parse *path* into a :class:`FileContext`; ``None`` on syntax error."""
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, UnicodeDecodeError):
        return None
    comments = _comment_map(source)
    return FileContext(
        path=path,
        module=_module_name(path),
        source=source,
        tree=tree,
        comments=comments,
        suppressions=_suppression_map(comments, source),
    )


def _iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


class LintEngine:
    """Drive a set of rules over a set of files, applying suppressions."""

    def __init__(self, rules: Sequence[Rule]):
        self.rules = list(rules)
        self.files_checked = 0
        self.suppressed_count = 0

    def run(self, paths: Sequence[Path]) -> List[Finding]:
        suppression_index: Dict[str, Dict[int, Set[str]]] = {}
        raw: List[Finding] = []
        for file_path in _iter_python_files(paths):
            ctx = build_context(file_path)
            if ctx is None:
                continue
            self.files_checked += 1
            suppression_index[str(file_path)] = ctx.suppressions
            for rule in self.rules:
                raw.extend(rule.check(ctx))
                rule.collect(ctx)
        for rule in self.rules:
            raw.extend(rule.finalize())
        findings: List[Finding] = []
        for finding in raw:
            disabled = suppression_index.get(finding.path, {}).get(finding.line, set())
            if finding.rule in disabled or "all" in disabled:
                self.suppressed_count += 1
                continue
            findings.append(finding)
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings


def _default_paths() -> List[Path]:
    """What to lint when no path is given: the installed repro package."""
    import repro

    return [Path(repro.__file__).resolve().parent]


def run_lint(
    paths: Optional[Sequence[Path]] = None,
    rule_names: Optional[Sequence[str]] = None,
) -> Tuple[List[Finding], LintEngine]:
    """Programmatic entry point; returns (findings, engine)."""
    from repro.lint.rules import ALL_RULES

    selected = [
        factory()
        for factory in ALL_RULES
        if rule_names is None or factory.name in rule_names
    ]
    engine = LintEngine(selected)
    findings = engine.run(list(paths) if paths else _default_paths())
    return findings, engine


def main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.lint.rules import ALL_RULES

    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Project static analysis: concurrency and telemetry rules.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit findings as a JSON document"
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list available rules and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for factory in ALL_RULES:
            print(f"{factory.name:32s} {factory.description}")
        return 0

    rule_names = None
    if args.rules:
        rule_names = [name.strip() for name in args.rules.split(",") if name.strip()]
        known = {factory.name for factory in ALL_RULES}
        unknown = [name for name in rule_names if name not in known]
        if unknown:
            print(f"unknown rule(s): {', '.join(unknown)}", file=sys.stderr)
            return 2

    findings, engine = run_lint(args.paths or None, rule_names)
    if args.json:
        print(
            json.dumps(
                {
                    "files_checked": engine.files_checked,
                    "suppressed": engine.suppressed_count,
                    "findings": [finding.as_dict() for finding in findings],
                },
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding.render())
        print(
            f"{len(findings)} finding(s), {engine.suppressed_count} suppressed, "
            f"{engine.files_checked} file(s) checked"
        )
    return 1 if findings else 0
