"""Per-graph summary metrics (the quantities plotted in Figures 11 and 12).

:func:`summary_size_table` builds, for a single input graph, one row per
summary kind holding the counts the paper plots: number of data nodes, of
all nodes, of data edges and of all edges, plus the edge compression ratio
discussed in Section 7 ("the summary occupies at most 0.028 of the data
size").
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core.builders import SUMMARY_KINDS, normalize_engine, summarize
from repro.core.encoded import encoded_summarize
from repro.core.summary import Summary
from repro.model.graph import RDFGraph
from repro.store.memory import MemoryStore
from repro.utils.timing import Stopwatch

__all__ = ["SummaryMetricsRow", "summary_size_table", "format_table"]

#: The four summary kinds of the paper's experiments, in presentation order.
PAPER_KINDS = ("strong", "weak", "typed_weak", "typed_strong")


class SummaryMetricsRow:
    """Metrics of one summary of one input graph."""

    __slots__ = (
        "dataset",
        "kind",
        "input_triples",
        "input_nodes",
        "data_nodes",
        "all_nodes",
        "class_nodes",
        "data_edges",
        "all_edges",
        "edge_ratio",
        "build_seconds",
    )

    def __init__(self, **values):
        for name in self.__slots__:
            setattr(self, name, values.get(name))

    def as_dict(self) -> Dict[str, object]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self):
        return (
            f"SummaryMetricsRow({self.dataset}, {self.kind}: nodes={self.all_nodes}, "
            f"edges={self.all_edges}, t={self.build_seconds:.3f}s)"
        )


def summary_size_table(
    graph: RDFGraph,
    kinds: Iterable[str] = PAPER_KINDS,
    dataset_name: Optional[str] = None,
    engine: Optional[str] = None,
) -> List[SummaryMetricsRow]:
    """Summarize *graph* with every requested kind and collect size metrics.

    *engine* selects the summarization engine (``"encoded"`` by default;
    ``"term"`` for the legacy object pipeline) — see
    :func:`repro.core.builders.summarize`.  With the encoded engine the
    graph is dictionary-encoded into one shared store and every kind runs
    store-resident (the paper's deployment shape), so per-kind timings
    measure summarization only, and the one-time encode is not repeated
    per kind.
    """
    dataset = dataset_name or graph.name or "graph"
    input_statistics = graph.statistics()
    rows: List[SummaryMetricsRow] = []
    engine_name = normalize_engine(engine)
    store: Optional[MemoryStore] = None
    if engine_name == "encoded":
        store = MemoryStore()
        store.load_graph(graph)
    try:
        for kind in kinds:
            if kind not in SUMMARY_KINDS:
                raise KeyError(f"unknown summary kind: {kind!r}")
            with Stopwatch() as watch:
                if store is not None:
                    summary = encoded_summarize(
                        store,
                        kind,
                        source_statistics=input_statistics,
                        source_name=graph.name,
                    )
                else:
                    summary = summarize(graph, kind, engine=engine_name)
            statistics = summary.statistics()
            rows.append(
                SummaryMetricsRow(
                    dataset=dataset,
                    kind=kind,
                    input_triples=input_statistics.edge_count,
                    input_nodes=input_statistics.node_count,
                    data_nodes=statistics.data_node_count,
                    all_nodes=statistics.all_node_count,
                    class_nodes=statistics.class_node_count,
                    data_edges=statistics.data_edge_count,
                    all_edges=statistics.all_edge_count,
                    edge_ratio=statistics.all_edge_count / max(1, input_statistics.edge_count),
                    build_seconds=watch.elapsed,
                )
            )
    finally:
        if store is not None:
            store.close()
    return rows


def format_table(rows: Iterable[SummaryMetricsRow], columns: Optional[List[str]] = None) -> str:
    """Render metric rows as a fixed-width text table (for CLI and benches)."""
    rows = list(rows)
    if not rows:
        return "(no rows)\n"
    columns = columns or [
        "dataset",
        "kind",
        "input_triples",
        "data_nodes",
        "all_nodes",
        "data_edges",
        "all_edges",
        "edge_ratio",
        "build_seconds",
    ]

    def cell(row: SummaryMetricsRow, column: str) -> str:
        value = getattr(row, column)
        if isinstance(value, float):
            return f"{value:.4f}"
        return str(value)

    widths = {
        column: max(len(column), max(len(cell(row, column)) for row in rows)) for column in columns
    }
    header = "  ".join(column.ljust(widths[column]) for column in columns)
    separator = "  ".join("-" * widths[column] for column in columns)
    body = [
        "  ".join(cell(row, column).ljust(widths[column]) for column in columns) for row in rows
    ]
    return "\n".join([header, separator, *body]) + "\n"
