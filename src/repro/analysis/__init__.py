"""Experiment analysis: summary metrics and the scale-sweep harness."""

from repro.analysis.harness import ScaleSweepResult, format_figure_series, run_scale_sweep
from repro.analysis.metrics import (
    PAPER_KINDS,
    SummaryMetricsRow,
    format_table,
    summary_size_table,
)

__all__ = [
    "ScaleSweepResult",
    "format_figure_series",
    "run_scale_sweep",
    "PAPER_KINDS",
    "SummaryMetricsRow",
    "format_table",
    "summary_size_table",
]
