"""Experiment harness: the scale sweeps behind Figures 11, 12 and 13.

The paper's Section 7 runs the four summaries on BSBM datasets of increasing
size and reports, per summary kind and dataset size:

* Figure 11 — number of data nodes and of all nodes;
* Figure 12 — number of data edges and of all edges;
* Figure 13 — summarization time.

:func:`run_scale_sweep` regenerates all three series in one pass (each point
is one generated graph and four summary constructions) and
:func:`format_figure_series` prints them the way the paper's plots are
organised (one line per summary kind, one column per dataset size).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.analysis.metrics import PAPER_KINDS, SummaryMetricsRow, summary_size_table
from repro.datasets.bsbm import generate_bsbm
from repro.model.graph import RDFGraph

__all__ = ["ScaleSweepResult", "run_scale_sweep", "format_figure_series"]


class ScaleSweepResult:
    """All metric rows of a scale sweep, indexed by (scale, kind)."""

    def __init__(self, rows: List[SummaryMetricsRow], scales: Sequence[int]):
        self.rows = rows
        self.scales = list(scales)

    def series(self, metric: str) -> Dict[str, List[object]]:
        """Return ``{kind: [value per scale]}`` for the requested metric."""
        result: Dict[str, List[object]] = {}
        for kind in PAPER_KINDS:
            kind_rows = [row for row in self.rows if row.kind == kind]
            kind_rows.sort(key=lambda row: row.input_triples)
            result[kind] = [getattr(row, metric) for row in kind_rows]
        return result

    def input_sizes(self) -> List[int]:
        """The input triple counts, one per scale point (ascending)."""
        sizes = sorted({row.input_triples for row in self.rows})
        return sizes


def run_scale_sweep(
    scales: Sequence[int] = (50, 100, 200, 400),
    generator: Optional[Callable[[int], RDFGraph]] = None,
    kinds: Iterable[str] = PAPER_KINDS,
    seed: int = 0,
    engine: Optional[str] = None,
) -> ScaleSweepResult:
    """Generate one graph per scale, summarize it with every kind, collect metrics.

    Parameters
    ----------
    scales:
        Generator scale parameters (BSBM: number of products).  The paper
        uses 10M-100M triples; laptop-scale defaults are provided here, and
        the benchmarks pass larger values.
    generator:
        Function mapping a scale to a graph; defaults to the BSBM-like
        generator with the given *seed*.
    kinds:
        Summary kinds to build at each point.
    engine:
        Summarization engine (``"encoded"`` by default, ``"term"`` for the
        legacy object pipeline) — see :func:`repro.core.builders.summarize`.
    """
    if generator is None:
        def generator(scale: int) -> RDFGraph:  # noqa: ANN001 - scale is an int
            return generate_bsbm(scale=scale, seed=seed)

    rows: List[SummaryMetricsRow] = []
    for scale in scales:
        graph = generator(scale)
        rows.extend(
            summary_size_table(graph, kinds=kinds, dataset_name=graph.name, engine=engine)
        )
    return ScaleSweepResult(rows, scales)


def format_figure_series(result: ScaleSweepResult, metric: str, title: str) -> str:
    """Render one metric of a sweep as the paper's figures do (kind × size)."""
    sizes = result.input_sizes()
    series = result.series(metric)
    lines = [title, f"{'kind':<14}" + "".join(f"{size:>12}" for size in sizes)]
    for kind, values in series.items():
        rendered = []
        for value in values:
            if isinstance(value, float):
                rendered.append(f"{value:>12.4f}")
            else:
                rendered.append(f"{value:>12}")
        lines.append(f"{kind:<14}" + "".join(rendered))
    return "\n".join(lines) + "\n"
