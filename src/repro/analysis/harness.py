"""Experiment harness: the scale sweeps behind Figures 11, 12 and 13.

The paper's Section 7 runs the four summaries on BSBM datasets of increasing
size and reports, per summary kind and dataset size:

* Figure 11 — number of data nodes and of all nodes;
* Figure 12 — number of data edges and of all edges;
* Figure 13 — summarization time.

:func:`run_scale_sweep` regenerates all three series in one pass (each point
is one generated graph and four summary constructions) and
:func:`format_figure_series` prints them the way the paper's plots are
organised (one line per summary kind, one column per dataset size).

:func:`run_query_service_workload` is the workload driver of the serving
layer: it registers a graph in a :class:`~repro.service.catalog.GraphCatalog`,
generates a mixed (satisfiable / unsatisfiable) RBGP workload, and times the
summary-guarded :class:`~repro.service.service.QueryService` against direct
per-query evaluation on the same store — the experiment behind
``repro query --workload`` and ``benchmarks/bench_query_service.py``.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.analysis.metrics import PAPER_KINDS, SummaryMetricsRow, summary_size_table
from repro.datasets.bsbm import generate_bsbm
from repro.model.graph import RDFGraph
from repro.service.catalog import GraphCatalog
from repro.service.workload import compare_guarded_vs_direct, generate_mixed_workload

__all__ = [
    "ScaleSweepResult",
    "run_scale_sweep",
    "format_figure_series",
    "run_query_service_workload",
    "format_query_service_report",
]


class ScaleSweepResult:
    """All metric rows of a scale sweep, indexed by (scale, kind)."""

    def __init__(self, rows: List[SummaryMetricsRow], scales: Sequence[int]):
        self.rows = rows
        self.scales = list(scales)

    def series(self, metric: str) -> Dict[str, List[object]]:
        """Return ``{kind: [value per scale]}`` for the requested metric."""
        result: Dict[str, List[object]] = {}
        for kind in PAPER_KINDS:
            kind_rows = [row for row in self.rows if row.kind == kind]
            kind_rows.sort(key=lambda row: row.input_triples)
            result[kind] = [getattr(row, metric) for row in kind_rows]
        return result

    def input_sizes(self) -> List[int]:
        """The input triple counts, one per scale point (ascending)."""
        sizes = sorted({row.input_triples for row in self.rows})
        return sizes


def run_scale_sweep(
    scales: Sequence[int] = (50, 100, 200, 400),
    generator: Optional[Callable[[int], RDFGraph]] = None,
    kinds: Iterable[str] = PAPER_KINDS,
    seed: int = 0,
    engine: Optional[str] = None,
) -> ScaleSweepResult:
    """Generate one graph per scale, summarize it with every kind, collect metrics.

    Parameters
    ----------
    scales:
        Generator scale parameters (BSBM: number of products).  The paper
        uses 10M-100M triples; laptop-scale defaults are provided here, and
        the benchmarks pass larger values.
    generator:
        Function mapping a scale to a graph; defaults to the BSBM-like
        generator with the given *seed*.
    kinds:
        Summary kinds to build at each point.
    engine:
        Summarization engine (``"encoded"`` by default, ``"term"`` for the
        legacy object pipeline) — see :func:`repro.core.builders.summarize`.
    """
    if generator is None:
        def generator(scale: int) -> RDFGraph:  # noqa: ANN001 - scale is an int
            return generate_bsbm(scale=scale, seed=seed)

    rows: List[SummaryMetricsRow] = []
    for scale in scales:
        graph = generator(scale)
        rows.extend(
            summary_size_table(graph, kinds=kinds, dataset_name=graph.name, engine=engine)
        )
    return ScaleSweepResult(rows, scales)


def run_query_service_workload(
    graph: RDFGraph,
    count: int = 60,
    unsatisfiable_fraction: float = 0.5,
    kind: str = "weak+strong",
    seed: int = 0,
    size: int = 2,
    answer_limit: Optional[int] = 100,
    max_embeddings: Optional[int] = 1_000,
    strategy: str = "hash",
) -> Dict[str, object]:
    """Drive a mixed workload through the guarded service; report the gap.

    Returns a flat dictionary (JSON-serializable) with the comparison
    numbers of :class:`~repro.service.workload.ComparisonReport` plus the
    workload composition — the row format shared by the CLI ``query
    --workload`` command and the query-service benchmark.
    """
    name = graph.name or "graph"
    with GraphCatalog() as catalog:
        catalog.register(name, graph=graph)
        workload = generate_mixed_workload(
            graph,
            count=count,
            unsatisfiable_fraction=unsatisfiable_fraction,
            size=size,
            seed=seed,
            max_embeddings=max_embeddings,
            answer_limit=answer_limit,
        )
        report = compare_guarded_vs_direct(
            catalog, name, workload, kind=kind, answer_limit=answer_limit, strategy=strategy
        )
        result: Dict[str, object] = {
            "graph": name,
            "triples": len(graph),
            "kind": kind,
            "strategy": strategy,
            "answer_limit": answer_limit,
            "satisfiable_queries": sum(1 for item in workload if item.satisfiable),
            "unsatisfiable_queries": sum(1 for item in workload if not item.satisfiable),
        }
        result.update(report.as_dict())
        return result


def format_query_service_report(report: Dict[str, object]) -> str:
    """Render a :func:`run_query_service_workload` row for the terminal."""
    lines = [
        f"graph {report['graph']}: {report['triples']} triples, "
        f"{report['queries']} queries "
        f"({report['satisfiable_queries']} satisfiable / "
        f"{report['unsatisfiable_queries']} unsatisfiable), "
        f"guard: {report['kind']} summary",
        f"  guarded service : {report['guarded_seconds']:.4f}s "
        f"({report['pruned']} queries pruned)",
        f"  direct evaluation: {report['direct_seconds']:.4f}s",
        f"  speedup          : {report['speedup']:.2f}x",
        f"  soundness        : {report['pruning_errors']} pruning errors, "
        f"{report['disagreements']} disagreements "
        f"({'OK' if report['sound'] else 'FAILED'})",
    ]
    return "\n".join(lines)


def format_figure_series(result: ScaleSweepResult, metric: str, title: str) -> str:
    """Render one metric of a sweep as the paper's figures do (kind × size)."""
    sizes = result.input_sizes()
    series = result.series(metric)
    lines = [title, f"{'kind':<14}" + "".join(f"{size:>12}" for size in sizes)]
    for kind, values in series.items():
        rendered = []
        for value in values:
            if isinstance(value, float):
                rendered.append(f"{value:>12.4f}")
            else:
                rendered.append(f"{value:>12}")
        lines.append(f"{kind:<14}" + "".join(rendered))
    return "\n".join(lines) + "\n"
