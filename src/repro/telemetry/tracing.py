"""Per-query tracing: one tree of timed spans per query, across processes.

A :class:`QueryTrace` owns a *trace id* and a tree of :class:`Span`
objects.  The service layer opens spans around the guard cascade and the
join pipeline; the cluster coordinator opens spans around routing and
decode/union, ships the trace id to each worker inside the existing
``OP_QUERY`` payload, and grafts the span tree each worker sends back
under its own root — so one scatter-gather query yields **one** tree:

.. code-block:: text

    query 1f3a9c2e07b54d11 (0.84 ms)
    └─ cluster.answer
       ├─ route
       ├─ worker-0
       │  └─ query
       │     ├─ guard
       │     └─ evaluate
       ├─ worker-1
       │  └─ query ...
       └─ gather            (decode + union)

Spans serialize to plain dicts (:meth:`Span.as_dict` /
:meth:`Span.from_dict`) so they cross the multiprocessing pipe with the
rest of the pickled reply — no new protocol opcode.

Tracing is strictly opt-in per query (``answer(trace=True)``, CLI
``--trace``, HTTP ``"trace": true``); an untraced query never touches
this module.
"""

from __future__ import annotations

import threading
import uuid
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["Span", "QueryTrace", "new_trace_id"]


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace id."""
    return uuid.uuid4().hex[:16]


class Span:
    """One timed operation in a trace tree."""

    __slots__ = ("name", "seconds", "attributes", "children")

    def __init__(
        self,
        name: str,
        seconds: float = 0.0,
        attributes: Optional[Dict[str, Any]] = None,
        children: Optional[List["Span"]] = None,
    ):
        self.name = name
        self.seconds = seconds
        self.attributes: Dict[str, Any] = attributes if attributes is not None else {}
        self.children: List["Span"] = children if children is not None else []

    def as_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"name": self.name, "seconds": self.seconds}
        if self.attributes:
            payload["attributes"] = dict(self.attributes)
        if self.children:
            payload["children"] = [child.as_dict() for child in self.children]
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Span":
        return cls(
            name=str(payload.get("name", "")),
            seconds=float(payload.get("seconds", 0.0)),
            attributes=dict(payload.get("attributes") or {}),
            children=[cls.from_dict(child) for child in payload.get("children") or ()],
        )

    def find(self, name: str) -> Optional["Span"]:
        """Depth-first search for the first descendant (or self) named *name*."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self):
        return f"Span({self.name!r}, {self.seconds * 1000:.3f}ms, children={len(self.children)})"


class QueryTrace:
    """A trace id plus a span tree under construction.

    The builder keeps a stack of open spans guarded by a lock, so nested
    ``with trace.span(...)`` blocks from one thread build the tree in
    order, and a coordinator thread can still :meth:`graft` a worker's
    finished subtree concurrently with its own open spans.
    """

    __slots__ = ("trace_id", "root", "_stack", "_lock")

    def __init__(self, trace_id: Optional[str] = None, root_name: str = "query"):
        self.trace_id = trace_id or new_trace_id()
        self.root = Span(root_name)
        self._stack: List[Span] = [self.root]
        self._lock = threading.Lock()

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Open a child span under the innermost open span; time its body."""
        node = Span(name, attributes=dict(attributes) if attributes else None)
        with self._lock:
            self._stack[-1].children.append(node)
            self._stack.append(node)
        started = perf_counter()
        try:
            yield node
        finally:
            node.seconds = perf_counter() - started
            with self._lock:
                # pop back to the opener even if an inner span leaked open
                while self._stack and self._stack.pop() is not node:
                    pass
                if not self._stack:
                    self._stack.append(self.root)

    def graft(self, subtree: Span, under: Optional[Span] = None) -> None:
        """Attach a finished span tree (e.g. a worker's) as a child."""
        with self._lock:
            parent = under if under is not None else self._stack[-1]
            parent.children.append(subtree)

    def annotate(self, **attributes: Any) -> None:
        with self._lock:
            self._stack[-1].attributes.update(attributes)

    def finish(self, seconds: Optional[float] = None) -> None:
        """Close the root (total seconds default to the sum of its children)."""
        if seconds is None:
            seconds = sum(child.seconds for child in self.root.children)
        self.root.seconds = seconds

    def as_dict(self) -> Dict[str, Any]:
        payload = self.root.as_dict()
        payload["trace_id"] = self.trace_id
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "QueryTrace":
        trace = cls(trace_id=str(payload.get("trace_id") or "") or None)
        trace.root = Span.from_dict(payload)
        trace._stack = [trace.root]
        return trace

    def render(self) -> str:
        """A human-readable tree for CLI ``--trace`` output."""
        lines = [f"trace {self.trace_id} ({self.root.seconds * 1000:.3f} ms)"]

        def _walk(span: Span, prefix: str, is_last: bool) -> None:
            connector = "└─ " if is_last else "├─ "
            attributes = ""
            if span.attributes:
                rendered = ", ".join(
                    f"{key}={value}" for key, value in sorted(span.attributes.items())
                )
                attributes = f"  [{rendered}]"
            lines.append(
                f"{prefix}{connector}{span.name}  {span.seconds * 1000:.3f} ms{attributes}"
            )
            extension = "   " if is_last else "│  "
            for index, child in enumerate(span.children):
                _walk(child, prefix + extension, index == len(span.children) - 1)

        for index, child in enumerate(self.root.children):
            _walk(child, "", index == len(self.root.children) - 1)
        return "\n".join(lines)

    def __repr__(self):
        return f"QueryTrace({self.trace_id!r}, spans={sum(1 for _ in self.root.walk())})"
