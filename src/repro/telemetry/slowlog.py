"""A ring-buffered, structured slow-query log.

Every answered query whose total latency crosses the configured threshold
is recorded as a plain JSON-ready dict — query text, graph, per-phase
seconds, pruning outcome, answer count and (when traced) the trace id.
The buffer is a fixed-size deque, so a pathological workload costs bounded
memory; ``GET /debug/slow`` returns the current window and the CLI dumps
whatever remains at SIGTERM alongside the final checkpoint.
"""

from __future__ import annotations

import threading
from collections import deque
from time import time
from typing import Any, Dict, List, Optional

__all__ = ["SlowQueryLog", "DEFAULT_THRESHOLD_SECONDS", "DEFAULT_CAPACITY"]

#: Default latency threshold: anything above 250 ms is worth a second look
#: in a stack whose guarded point lookups finish in microseconds.
DEFAULT_THRESHOLD_SECONDS = 0.25

#: Default ring capacity.
DEFAULT_CAPACITY = 256


class SlowQueryLog:
    """Threshold-gated ring buffer of slow-query records."""

    def __init__(
        self,
        threshold_seconds: float = DEFAULT_THRESHOLD_SECONDS,
        capacity: int = DEFAULT_CAPACITY,
    ):
        if capacity < 1:
            raise ValueError("slow-query log capacity must be positive")
        self._threshold = float(threshold_seconds)
        self._entries: deque = deque(maxlen=int(capacity))
        self._lock = threading.Lock()
        self._dropped = 0

    @property
    def threshold_seconds(self) -> float:
        with self._lock:
            return self._threshold

    @threshold_seconds.setter
    def threshold_seconds(self, value: float) -> None:
        with self._lock:
            self._threshold = float(value)

    @property
    def capacity(self) -> int:
        return self._entries.maxlen or 0

    def record(
        self,
        *,
        total_seconds: float,
        graph: str,
        query: str,
        sparql: Optional[str] = None,
        guard_seconds: float = 0.0,
        evaluation_seconds: float = 0.0,
        pruned: bool = False,
        strategy: Optional[str] = None,
        answer_count: Optional[int] = None,
        trace_id: Optional[str] = None,
        **extra: Any,
    ) -> bool:
        """Record the query if it crossed the threshold; report whether it did."""
        with self._lock:
            if total_seconds < self._threshold:
                return False
            if len(self._entries) == self._entries.maxlen:
                self._dropped += 1
            entry: Dict[str, Any] = {
                "ts": time(),
                "graph": graph,
                "query": query,
                "total_seconds": total_seconds,
                "guard_seconds": guard_seconds,
                "evaluation_seconds": evaluation_seconds,
                "pruned": pruned,
            }
            if sparql is not None:
                entry["sparql"] = sparql
            if strategy is not None:
                entry["strategy"] = strategy
            if answer_count is not None:
                entry["answer_count"] = answer_count
            if trace_id is not None:
                entry["trace_id"] = trace_id
            entry.update(extra)
            self._entries.append(entry)
            return True

    def entries(self) -> List[Dict[str, Any]]:
        """Oldest-first snapshot of the current window."""
        with self._lock:
            return [dict(entry) for entry in self._entries]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def dropped(self) -> int:
        """How many records the ring has evicted since construction."""
        with self._lock:
            return self._dropped

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def as_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "threshold_seconds": self._threshold,
                "capacity": self._entries.maxlen,
                "dropped": self._dropped,
                "entries": [dict(entry) for entry in self._entries],
            }
