"""The end-to-end telemetry plane.

Three pieces, one import surface:

* a process-wide :class:`MetricsRegistry` of counters, gauges and
  fixed-bucket latency histograms every serving layer registers into
  (:mod:`repro.telemetry.registry`);
* per-query :class:`QueryTrace` span trees whose trace id crosses the
  coordinator→worker pipe (:mod:`repro.telemetry.tracing`);
* a ring-buffered structured :class:`SlowQueryLog`
  (:mod:`repro.telemetry.slowlog`), exposed at ``GET /debug/slow`` and
  dumped on shutdown.

The module-level accessors — :func:`counter`, :func:`gauge`,
:func:`histogram` — hand out shared no-op instruments when telemetry is
disabled (:func:`set_enabled` / ``REPRO_TELEMETRY=0``), so the hot paths
stay near-free and the default registry stays empty in disabled mode.
"""

from repro.telemetry.registry import (
    BYTE_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    enabled,
    gauge,
    histogram,
    set_enabled,
)
from repro.telemetry.slowlog import (
    DEFAULT_CAPACITY,
    DEFAULT_THRESHOLD_SECONDS,
    SlowQueryLog,
)
from repro.telemetry.tracing import QueryTrace, Span, new_trace_id

#: The process-wide slow-query log the service layer records into.
SLOW_LOG = SlowQueryLog()

__all__ = [
    "BYTE_BUCKETS",
    "DEFAULT_CAPACITY",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_THRESHOLD_SECONDS",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "REGISTRY",
    "SLOW_LOG",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QueryTrace",
    "SlowQueryLog",
    "Span",
    "counter",
    "enabled",
    "gauge",
    "histogram",
    "new_trace_id",
    "set_enabled",
]
