"""The process-wide metrics registry: counters, gauges, latency histograms.

Every serving layer registers its instruments here under hierarchical
dotted names (``query.guard.pruned``, ``join.stage.seconds``,
``cluster.ship.bytes``) and the HTTP front end exposes one snapshot of all
of them — as JSON (:meth:`MetricsRegistry.as_dict`) and as the Prometheus
text exposition format (:meth:`MetricsRegistry.render_prometheus`, behind
``GET /metrics``).

Three instrument kinds, all thread-safe and deliberately tiny:

* :class:`Counter` — monotone, float-valued (so it can accumulate seconds
  as well as events).  A counter may carry a *parent*: incrementing the
  child increments the parent too.  That is how the pre-existing per-object
  bookkeeping (:class:`~repro.service.service.ServiceStatistics`, the
  planner's LRU counters, :class:`CatalogEntry.build_counters`) folds into
  the registry without losing its per-instance views — the instance owns a
  private child counter, the registry owns the process-wide family, and
  one ``inc()`` feeds both.
* :class:`Gauge` — a settable level, plus optional *callbacks* sampled at
  collection time (executor queue depth, cluster delta-queue depth).  The
  reported value is the set value plus the sum of the live callbacks.
* :class:`Histogram` — fixed upper-bound buckets with cumulative counts,
  ``sum`` and ``count`` (the Prometheus histogram model).  Bucket math is
  a single ``bisect`` per observation.

Disabled mode
-------------
``set_enabled(False)`` (or ``REPRO_TELEMETRY=0`` in the environment) makes
the module-level accessors (:func:`counter`, :func:`gauge`,
:func:`histogram`) hand out shared **no-op** instruments instead of
registering anything: the default registry stays empty and the hot paths
pay one attribute read plus one no-op call.  The flag is read when an
instrument is handed out, so flip it before building the services you want
dark (the CLI does this from ``serve --no-telemetry`` before anything
else starts).
"""

from __future__ import annotations

import math
import os
import re
import threading
from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "DEFAULT_LATENCY_BUCKETS",
    "BYTE_BUCKETS",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "enabled",
    "set_enabled",
]

#: Upper bucket bounds (seconds) of a latency histogram: 100 µs to 10 s in
#: a 1-2.5-5 progression — query guards live at the bottom, cold summary
#: builds at the top.  ``+Inf`` is implicit.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: Upper bucket bounds for byte-sized observations (shipping payloads):
#: 1 KiB to 1 GiB in powers of 4.
BYTE_BUCKETS: Tuple[float, ...] = tuple(1024.0 * 4**exponent for exponent in range(11))


class Counter:
    """A monotone, thread-safe, float-valued counter.

    ``parent`` chains increments upward: a per-instance child counter
    (e.g. one service's query count) feeds the registry's process-wide
    family with the same ``inc()`` call — no parallel bookkeeping.
    """

    __slots__ = ("name", "_value", "_lock", "parent")

    def __init__(self, name: str = "", parent: Optional["Counter"] = None):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()
        self.parent = parent

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc({amount}))")
        with self._lock:
            self._value += amount
        if self.parent is not None:
            self.parent.inc(amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    @property
    def int_value(self) -> int:
        """The value as an int (event counters; exact below 2**53)."""
        return int(self.value)

    def __repr__(self):
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A settable level plus optional callbacks sampled at collection time."""

    __slots__ = ("name", "_value", "_lock", "_callbacks")

    def __init__(self, name: str = ""):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()
        self._callbacks: List[Callable[[], float]] = []

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def add_callback(self, callback: Callable[[], float]) -> None:
        """Attach a sampler whose result is added to the reported value."""
        with self._lock:
            self._callbacks.append(callback)

    def remove_callback(self, callback: Callable[[], float]) -> None:
        with self._lock:
            try:
                self._callbacks.remove(callback)
            except ValueError:
                pass

    @property
    def value(self) -> float:
        with self._lock:
            total = self._value
            callbacks = list(self._callbacks)
        for callback in callbacks:
            try:
                total += float(callback())
            except Exception:  # noqa: BLE001 - a dead sampler must not break /metrics
                continue
        return total

    def __repr__(self):
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """Fixed-bucket histogram: cumulative bucket counts, sum and count.

    ``bounds`` are the finite upper bounds in ascending order; an implicit
    ``+Inf`` bucket catches everything beyond the last bound.  One
    observation costs a ``bisect`` and three additions under the lock.
    """

    __slots__ = ("name", "bounds", "_bucket_counts", "_sum", "_count", "_lock")

    def __init__(self, name: str = "", buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram bounds must be strictly ascending: {bounds}")
        if any(math.isnan(bound) or math.isinf(bound) for bound in bounds):
            raise ValueError("histogram bounds must be finite (the +Inf bucket is implicit)")
        self.name = name
        self.bounds = bounds
        # one slot per finite bound plus the +Inf overflow slot
        self._bucket_counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._bucket_counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def snapshot(self) -> Dict[str, object]:
        """Cumulative ``le`` → count pairs plus sum/count, one consistent read."""
        with self._lock:
            raw = list(self._bucket_counts)
            total = self._count
            observed_sum = self._sum
        cumulative: List[Tuple[float, int]] = []
        running = 0
        for bound, bucket in zip(self.bounds, raw):
            running += bucket
            cumulative.append((bound, running))
        return {
            "buckets": cumulative,
            "count": total,
            "sum": observed_sum,
        }

    def __repr__(self):
        return f"Histogram({self.name!r}, count={self.count})"


class _NullCounter(Counter):
    """The disabled-mode counter: accepts every call, records nothing."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:  # noqa: ARG002
        return None


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:  # noqa: ARG002
        return None

    def inc(self, amount: float = 1.0) -> None:  # noqa: ARG002
        return None

    def add_callback(self, callback) -> None:  # noqa: ARG002
        return None

    def remove_callback(self, callback) -> None:  # noqa: ARG002
        return None


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:  # noqa: ARG002
        return None


#: Shared no-op instruments handed out while telemetry is disabled — one
#: object each, so disabled mode allocates nothing per call site.
NULL_COUNTER = _NullCounter("null")
NULL_GAUGE = _NullGauge("null")
NULL_HISTOGRAM = _NullHistogram("null")


_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_]")


def _prometheus_name(name: str) -> str:
    sanitized = _PROM_INVALID.sub("_", name)
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return "repro_" + sanitized


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 2**53:
        return str(int(value))
    return repr(value)


class MetricsRegistry:
    """Name → instrument map with get-or-create semantics.

    ``counter`` / ``gauge`` / ``histogram`` return the existing instrument
    when the name is already registered (and raise on a kind mismatch), so
    call sites can fetch by name without coordinating.  Collection —
    :meth:`as_dict` and :meth:`render_prometheus` — walks a snapshot of
    the map; instruments update concurrently under their own locks.
    """

    def __init__(self):
        #: name → instrument; guarded by self._lock
        self._metrics: Dict[str, object] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _get_or_create(self, name: str, kind: type, factory):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, kind) or isinstance(
                    existing, tuple(k for k in (Counter, Gauge, Histogram) if k is not kind)
                ):
                    raise TypeError(
                        f"metric {name!r} is a {type(existing).__name__}, "
                        f"not a {kind.__name__}"
                    )
                return existing
            metric = factory()
            self._metrics[name] = metric
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        return self._get_or_create(name, Histogram, lambda: Histogram(name, buckets))

    # ------------------------------------------------------------------
    def get(self, name: str):
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics

    def unregister(self, name: str) -> None:
        with self._lock:
            self._metrics.pop(name, None)

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()

    def _snapshot(self) -> List[Tuple[str, object]]:
        with self._lock:
            return sorted(self._metrics.items())

    # ------------------------------------------------------------------
    # exposition
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        """A JSON-serializable snapshot of every registered instrument."""
        payload: Dict[str, object] = {}
        for name, metric in self._snapshot():
            if isinstance(metric, Histogram):
                snapshot = metric.snapshot()
                payload[name] = {
                    "type": "histogram",
                    "count": snapshot["count"],
                    "sum": snapshot["sum"],
                    "buckets": [
                        {"le": bound, "count": count}
                        for bound, count in snapshot["buckets"]
                    ],
                }
            elif isinstance(metric, Gauge):
                payload[name] = {"type": "gauge", "value": metric.value}
            else:
                payload[name] = {"type": "counter", "value": metric.value}
        return payload

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (``GET /metrics``).

        Dotted names are sanitized to underscores under a ``repro_``
        prefix; counters gain the conventional ``_total`` suffix and
        histograms emit the ``_bucket``/``_sum``/``_count`` triple with
        cumulative ``le`` labels ending at ``+Inf``.
        """
        lines: List[str] = []
        for name, metric in self._snapshot():
            exposition = _prometheus_name(name)
            if isinstance(metric, Histogram):
                snapshot = metric.snapshot()
                lines.append(f"# TYPE {exposition} histogram")
                for bound, count in snapshot["buckets"]:
                    lines.append(
                        f'{exposition}_bucket{{le="{_format_value(bound)}"}} {count}'
                    )
                lines.append(f'{exposition}_bucket{{le="+Inf"}} {snapshot["count"]}')
                lines.append(f"{exposition}_sum {_format_value(snapshot['sum'])}")
                lines.append(f"{exposition}_count {snapshot['count']}")
            elif isinstance(metric, Gauge):
                lines.append(f"# TYPE {exposition} gauge")
                lines.append(f"{exposition} {_format_value(metric.value)}")
            else:
                lines.append(f"# TYPE {exposition}_total counter")
                lines.append(f"{exposition}_total {_format_value(metric.value)}")
        return "\n".join(lines) + "\n"


#: The process-wide default registry every layer registers into.
REGISTRY = MetricsRegistry()

_enabled = os.environ.get("REPRO_TELEMETRY", "1").strip().lower() not in (
    "0",
    "false",
    "off",
    "no",
)


def enabled() -> bool:
    """Whether telemetry instruments are live in this process."""
    return _enabled


def set_enabled(flag: bool) -> None:
    """Turn the telemetry plane on or off for instruments handed out
    *after* this call (live handles keep their mode — flip before building
    the services you want dark)."""
    global _enabled
    _enabled = bool(flag)


def counter(name: str) -> Counter:
    """The registry counter *name*, or the shared no-op when disabled."""
    if not _enabled:
        return NULL_COUNTER
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    if not _enabled:
        return NULL_GAUGE
    return REGISTRY.gauge(name)


def histogram(name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> Histogram:
    if not _enabled:
        return NULL_HISTOGRAM
    return REGISTRY.histogram(name, buckets)
