"""Wire protocol of the sharded serving tier.

Everything that crosses the coordinator/worker pipe is built from
primitives — ``bytes``, ``str``, ``int``, ``None``, and tuples/lists/dicts
thereof.  No :class:`~repro.model.terms.Term`, no query objects, no store
objects are ever pickled across the boundary:

* **rows** travel as the packed int64 column blobs of the columnar data
  plane (:meth:`MemoryStore.column_bytes` format — ``array('q')`` in
  native byte order), extracted per shard by
  :meth:`TripleStore.partition_column_bytes`;
* **terms** travel as the same structural ``(kind, value, datatype,
  language)`` columns the persistent catalog stores durably — a worker
  reconstructs its dictionary id-for-id;
* **queries** travel as SPARQL text (:meth:`BGPQuery.to_sparql` round-trips
  through :func:`~repro.queries.parser.parse_query`);
* **answers** travel as integer-id tuples, decoded against the
  coordinator's dictionary — which is why cluster answers are bit-identical
  to in-process ones.

Message framing
---------------
Every request is ``(request_id, op, payload)`` and every reply
``(request_id, status, payload)`` with ``status`` either ``"ok"`` or
``"error"`` (payload then ``(error_kind, message)``).  Replies are matched
by id, not by order: a worker may answer a version-fenced query *after* a
later delta message (see :mod:`repro.cluster.worker`), so the coordinator
routes replies through a per-worker receiver thread instead of assuming
FIFO round-trips.
"""

from __future__ import annotations

import sys
from array import array
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ClusterError
from repro.model.dictionary import Dictionary
from repro.model.terms import BlankNode, Literal, Term, URI
from repro.model.triple import TripleKind
from repro.store.base import shard_of

__all__ = [
    "OP_LOAD",
    "OP_DELTA",
    "OP_QUERY",
    "OP_DROP",
    "OP_PING",
    "OP_SHUTDOWN",
    "TABLES_INLINE",
    "TABLES_SHM",
    "TERM_CHUNK",
    "pack_terms",
    "pack_term_chunks",
    "unpack_terms",
    "unpack_term_chunks",
    "pack_full_tables",
    "pack_shard_tables",
    "pack_all_shard_tables",
    "shard_rows",
    "table_column_bytes",
]

#: Request opcodes (coordinator → worker).
#:
#: ``OP_LOAD`` carries ``(name, version, tables, deltas)``: *tables* is one
#: of the two shipping modes below, and *deltas* is the (possibly empty)
#: replay log of ``(version, (dict_start, packed_terms), rows)`` ingest
#: batches that post-date the shipped snapshot — applied in order before
#: the load is acknowledged, so a re-attach after a crash needs no repack.
OP_LOAD = "load"  # (name, version, tables, deltas)
OP_DELTA = "delta"  # (name, version, (dict_start, packed_terms), rows)
OP_QUERY = "query"  # (name, min_version, sparql, target, limit, saturated, explain)
OP_DROP = "drop"  # (name,)
OP_PING = "ping"  # ()
OP_SHUTDOWN = "shutdown"  # ()

#: ``OP_LOAD`` *tables* modes: inline column blobs over the pipe —
#: ``("inline", term_chunks, shard_tables, full_tables, byteorder)`` — or
#: a shared-memory segment descriptor — ``("shm", segment_name,
#: directory)`` (terms and tables live in the segment; see
#: :mod:`repro.cluster.shm` for the directory layout).
TABLES_INLINE = "inline"
TABLES_SHM = "shm"

#: The byte order blobs are packed in; shipped alongside so a worker on a
#: different-endian host (exotic, but cheap to guard) byteswaps on load.
BYTEORDER = sys.byteorder

#: Terms per packed chunk on the load path: a multi-million-entry
#: dictionary ships as a sequence of bounded slices instead of one giant
#: list materialized in a single pickle.
TERM_CHUNK = 65_536


def pack_terms(
    dictionary: Dictionary, start: int = 0, stop: Optional[int] = None
) -> List[Tuple[str, str, Optional[str], Optional[str]]]:
    """The dictionary's id range ``[start, stop)`` as structural columns.

    One ``(kind, value, datatype, language)`` tuple per term, in id order —
    the receiving side re-encodes them in sequence and gets identical ids.
    The format is the one the persistent catalog's term table uses, so the
    pipe and the WAL'd file agree on what a term is made of.
    """
    table = dictionary.decode_table
    if stop is None:
        stop = len(table)
    packed: List[Tuple[str, str, Optional[str], Optional[str]]] = []
    for term in table[start:stop]:
        if isinstance(term, URI):
            packed.append(("u", term.value, None, None))
        elif isinstance(term, BlankNode):
            packed.append(("b", term.label, None, None))
        elif isinstance(term, Literal):
            datatype = term.datatype.value if term.datatype is not None else None
            packed.append(("l", term.lexical, datatype, term.language))
        else:
            raise ClusterError(f"not a shippable RDF term: {term!r}")
    return packed


def pack_term_chunks(
    dictionary: Dictionary,
    start: int = 0,
    stop: Optional[int] = None,
    chunk: int = TERM_CHUNK,
) -> List[List[Tuple[str, str, Optional[str], Optional[str]]]]:
    """The id range ``[start, stop)`` as a list of :func:`pack_terms` slices.

    Identical id assignment to one flat :func:`pack_terms` call —
    unpacking the chunks in order reproduces the dictionary exactly — but
    no single list ever exceeds *chunk* terms, which bounds peak pickle
    buffers when a graph with millions of terms registers.
    """
    if chunk <= 0:
        raise ClusterError("term chunk size must be positive")
    if stop is None:
        stop = len(dictionary.decode_table)
    return [
        pack_terms(dictionary, lo, min(lo + chunk, stop))
        for lo in range(start, stop, chunk)
    ]


def unpack_terms(
    packed: Iterable[Tuple[str, str, Optional[str], Optional[str]]],
    dictionary: Dictionary,
) -> int:
    """Append *packed* terms to *dictionary* in order; return the new size.

    Ids are assigned densely in append order, so feeding a worker the
    coordinator's packed term list (or its tail, for a delta) reproduces
    the coordinator's id assignment exactly.  A term that would land on an
    unexpected id (the streams diverged) raises :class:`ClusterError`
    rather than silently mis-keying every later row.
    """
    for kind, value, datatype, language in packed:
        if kind == "u":
            term: Term = URI(value)
        elif kind == "b":
            term = BlankNode(value)
        elif kind == "l":
            term = Literal(
                value, datatype=URI(datatype) if datatype else None, language=language
            )
        else:
            raise ClusterError(f"unknown packed term kind {kind!r}")
        expected = len(dictionary)
        if dictionary.encode(term) != expected:
            raise ClusterError(
                f"dictionary divergence: term {term!r} already had an id "
                f"below {expected}"
            )
    return len(dictionary)


def unpack_term_chunks(
    chunks: Iterable[Iterable[Tuple[str, str, Optional[str], Optional[str]]]],
    dictionary: Dictionary,
) -> int:
    """Append every chunk of :func:`pack_term_chunks` output, in order."""
    for chunk in chunks:
        unpack_terms(chunk, dictionary)
    return len(dictionary)


def table_column_bytes(store, kind: TripleKind) -> Tuple[int, bytes, bytes, bytes]:
    """``(row_count, s_bytes, p_bytes, o_bytes)`` of one table, any backend.

    Columnar stores hand over their arrays directly (``column_bytes``);
    for everything else the columns are accumulated from
    :meth:`~repro.store.base.TripleStore.scan_columns` — one extra copy,
    same blob format.
    """
    column_bytes = getattr(store, "column_bytes", None)
    if column_bytes is not None:
        return column_bytes(kind)
    s_col, p_col, o_col = array("q"), array("q"), array("q")
    for s_batch, p_batch, o_batch in store.scan_columns(kind):
        s_col.extend(s_batch)
        p_col.extend(p_batch)
        o_col.extend(o_batch)
    return len(s_col), s_col.tobytes(), p_col.tobytes(), o_col.tobytes()


def pack_full_tables(store) -> Dict[str, Tuple[int, bytes, bytes, bytes]]:
    """All three tables of *store* as packed blobs, keyed by kind value."""
    return {
        kind.value: table_column_bytes(store, kind)
        for kind in (TripleKind.DATA, TripleKind.TYPE, TripleKind.SCHEMA)
    }


def pack_shard_tables(
    store, shard_index: int, shard_count: int
) -> Dict[str, Tuple[int, bytes, bytes, bytes]]:
    """Shard *shard_index*'s slice of *store* as packed blobs.

    The sharding rule of the tier: DATA and TYPE rows are partitioned by
    :func:`~repro.store.base.shard_of` on the subject id — disjoint across
    shards — while SCHEMA rows are **broadcast** whole to every shard.
    Schema triples are the non-subject-keyed patterns of query evaluation
    (class/property hierarchies joined from any pattern), tiny by the
    paper's own measurements, and replicating them is what keeps
    shard-local evaluation of subject-keyed queries exact.
    """
    if not 0 <= shard_index < shard_count:
        raise ClusterError(
            f"shard index {shard_index} out of range for {shard_count} shards"
        )
    return pack_all_shard_tables(store, shard_count)[shard_index]


def pack_all_shard_tables(
    store, shard_count: int
) -> List[Dict[str, Tuple[int, bytes, bytes, bytes]]]:
    """Every shard's tables in one extraction pass per kind.

    What the coordinator ships at registration/respawn: calling the
    single-shard form per worker would re-partition the table K times.
    """
    if shard_count <= 0:
        raise ClusterError("shard_count must be positive")
    data_parts = store.partition_column_bytes(TripleKind.DATA, shard_count)
    type_parts = store.partition_column_bytes(TripleKind.TYPE, shard_count)
    schema = table_column_bytes(store, TripleKind.SCHEMA)
    return [
        {
            TripleKind.DATA.value: data_parts[index],
            TripleKind.TYPE.value: type_parts[index],
            TripleKind.SCHEMA.value: schema,
        }
        for index in range(shard_count)
    ]


def shard_rows(
    rows: Sequence[Tuple[str, int, int, int]], shard_index: int, shard_count: int
) -> List[Tuple[str, int, int, int]]:
    """The subset of delta *rows* shard *shard_index* must apply.

    Mirrors :func:`pack_shard_tables` at the row level: DATA/TYPE rows by
    subject hash, SCHEMA rows always.  ``rows`` are
    ``(kind_value, s, p, o)`` tuples — the delta wire format.
    """
    schema_value = TripleKind.SCHEMA.value
    return [
        row
        for row in rows
        if row[0] == schema_value or shard_of(row[1], shard_count) == shard_index
    ]
