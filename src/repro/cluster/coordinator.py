"""The scatter-gather coordinator of the sharded serving tier.

One :class:`ClusterCoordinator` owns the authoritative
:class:`~repro.service.catalog.GraphCatalog` (the single writer of the
tier) and a pool of K spawned worker processes.  Each registered graph is
hash-partitioned by subject id (:func:`~repro.store.base.shard_of`) and
shipped to the workers as raw int64 column blobs plus structurally packed
dictionary terms — see :mod:`repro.cluster.protocol` for the wire format
and :mod:`repro.cluster.worker` for the receiving side.

Query routing
-------------
A query is **shard-safe** when every triple pattern shares one subject
term (one variable, or one constant) and explicit-triple semantics are
requested.  Subject-hash partitioning makes every candidate row group of
such a query live in exactly one shard (schema rows, the only
non-subject-keyed patterns, are broadcast to all shards), so the
coordinator *scatters* it to all K workers — each runs its shard-local
weak/strong guard cascade first, so refuted shards never run the join —
and unions the disjoint partial bindings.  A constant-subject query
short-circuits to the single owning shard.

Everything else — chain joins (an object variable re-used in subject
position crosses shards), multi-subject bodies, and all
``saturated=True`` queries (rdfs3 derives type rows keyed by a data row's
*object*, so shard-local saturation is not a partition of ``G∞``) — is
routed round-robin to one worker's **full replica**.  Either way the
answer ids decode through the coordinator's dictionary, which keeps every
cluster answer bit-identical to the in-process
:meth:`~repro.service.service.QueryService.answer`.

Writes
------
Ingest runs on the coordinator's catalog (summaries, statistics,
persistence — the usual write path) and a per-entry delta listener fans
the freshly inserted rows plus the dictionary tail out to every worker
through a **bounded** per-worker queue: a slow worker eventually blocks
the listener — and therefore the ingesting client — which is the tier's
backpressure.  Read-your-writes holds because a query carries the entry
version its caller observed and workers defer under-versioned queries
until the delta (already in their pipe or queue) lands.

Failure model
-------------
Worker death is detected by pipe EOF (receiver thread) and by the
heartbeat thread's liveness sweep.  A dead worker is respawned and
re-shipped from the live catalog, and the failed request retried — a
crash mid-query costs latency, never an error and never a wrong answer
(deltas dropped while dead are subsumed by the re-shipped snapshot;
re-delivered deltas deduplicate idempotently).  ``close()`` drains the
delta queues, asks each worker to finish its message in hand
(``SIGTERM``-equivalent shutdown message), then joins the processes.
"""

from __future__ import annotations

import itertools
import multiprocessing
import queue
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from time import monotonic, perf_counter
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro import telemetry
from repro.cluster import protocol, shm
from repro.cluster.worker import TARGET_FULL, TARGET_SHARD, worker_main
from repro.errors import (
    ClusterError,
    QueryError,
    UnknownGraphError,
    UnknownTermError,
    WorkerCrashedError,
    WorkerTimeoutError,
)
from repro.model.graph import RDFGraph
from repro.model.terms import Term
from repro.queries.bgp import BGPQuery, Variable
from repro.service.catalog import CatalogEntry, GraphCatalog
from repro.service.service import QueryAnswer, ServiceStatistics
from repro.store.base import shard_of
from repro.utils.concurrency import named_lock
from repro.telemetry import BYTE_BUCKETS, Counter, QueryTrace, Span

__all__ = ["ClusterCoordinator"]


def _maybe_span(query_trace: Optional[QueryTrace], name: str, **attributes):
    """A trace span when tracing, an inert context otherwise."""
    if query_trace is None:
        return nullcontext()
    return query_trace.span(name, **attributes)

#: Queries and loads get generous timeouts (a load ships whole graphs);
#: heartbeat pings stay short — a busy single-threaded worker not
#: answering a ping is *busy*, not dead, and must not be respawned.
_REQUEST_TIMEOUT = 120.0
_PING_TIMEOUT = 1.0
_SHUTDOWN_TIMEOUT = 10.0

#: Logged delta rows per graph beyond which the coordinator folds the
#: delta log into a fresh segment generation (shared-memory mode).
SEGMENT_FOLD_ROWS = 65_536


class _SegmentState:
    """One graph's live segment generation plus its replay log.

    ``deltas`` holds every ingest batch since the segment was packed, in
    the exact ``OP_DELTA`` shape minus the graph name — a (re-)ship sends
    the descriptor plus this log instead of repacking, which is what makes
    respawn recovery O(deltas) instead of O(graph).  Guarded by the
    coordinator's segment lock; appends additionally run inside the
    entry's write lock (the delta listener), so the log is always
    consistent with the shipped dictionary marks.
    """

    __slots__ = ("segment_name", "directory", "version", "deltas", "delta_rows")

    def __init__(self, segment_name: str, directory: dict, version: int):
        self.segment_name = segment_name
        self.directory = directory
        self.version = version
        self.deltas: List[tuple] = []
        self.delta_rows = 0


class _PendingReply:
    """One outstanding request: the event its waiter parks on."""

    __slots__ = ("event", "status", "payload")

    def __init__(self):
        self.event = threading.Event()
        self.status: Optional[str] = None
        self.payload = None

    def resolve(self, status: str, payload) -> None:
        self.status = status
        self.payload = payload
        self.event.set()

    def fail(self, message: str) -> None:
        self.resolve("crashed", message)


class _WorkerHandle:
    """Coordinator-side state of one worker slot (stable across respawns)."""

    def __init__(self, index: int, delta_queue_depth: int):
        self.index = index
        self.generation = 0
        self.respawns = 0
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.connection = None
        self.alive = False
        #: Serializes conn.send() calls (receiver thread handles recv).
        self.send_lock = named_lock(f"cluster.worker{index}.send_lock")
        #: Outstanding requests by id, resolved by the receiver thread.
        #: guarded by self.pending_lock
        self.pending: Dict[int, _PendingReply] = {}
        self.pending_lock = named_lock(f"cluster.worker{index}.pending_lock")
        #: Excludes delta sends from respawn windows: a delta must never
        #: slip between a respawn's snapshot read and its load message.
        self.ship_lock = named_lock(f"cluster.worker{index}.ship_lock")
        #: Graphs an in-flight (re-)ship has *not yet snapshotted* for this
        #: worker.  While a name is in here, ``_on_entry_delta`` drops the
        #: graph's deltas for this worker instead of blocking on the
        #: bounded queue — the upcoming snapshot (read-locked after any
        #: in-flight write) subsumes them.  That drop is what breaks the
        #: ingest → full queue → broadcaster → ship_lock → entry-lock
        #: deadlock cycle.  Names are removed *inside* the snapshot's read
        #: lock, so a delta is never dropped after its rows missed the
        #: snapshot.
        self.reship_pending: Set[str] = set()
        self.delta_queue: "queue.Queue" = queue.Queue(maxsize=delta_queue_depth)
        self.receiver: Optional[threading.Thread] = None
        self.broadcaster: Optional[threading.Thread] = None
        self.last_ping: Optional[Dict[str, object]] = None
        self.last_ping_at: Optional[float] = None
        #: The worker's reply to its most recent ``OP_LOAD`` (attach mode,
        #: row counts, attach seconds) — surfaced by ``status()``.
        self.last_load: Optional[Dict[str, object]] = None

    def fail_pending(self, message: str) -> None:
        with self.pending_lock:
            pending, self.pending = self.pending, {}
        for slot in pending.values():
            slot.fail(message)


class ClusterCoordinator:
    """K spawned workers behind one writer catalog; scatter-gather reads.

    Parameters
    ----------
    catalog:
        The authoritative catalog (optionally persistent).  The
        coordinator is its single writer; route all ingest through
        :meth:`add_triples` / :meth:`register` / :meth:`drop`.
    workers:
        Shard count K — one process per shard.
    kind / strategy:
        Worker-side guard cascade and join strategy (the same knobs as
        :class:`~repro.service.service.QueryService`).
    delta_queue_depth:
        Bound of each worker's ingest-delta queue; a full queue blocks the
        ingesting caller (backpressure).
    heartbeat_seconds:
        Liveness sweep period; ``0`` disables the sweep (crash detection
        then rests on pipe EOF at request time).
    max_retries:
        Crash-retry budget per request (respawn + retry).
    use_shm:
        ``None`` (default) auto-enables the shared-memory column plane
        when the platform supports it; ``False`` forces the inline
        pipe-blob path (the ``serve --no-shm`` escape hatch).  With shm on,
        each graph generation is packed once into one named segment that
        every worker attaches zero-copy, and respawn recovery re-sends the
        descriptor plus the logged deltas instead of repacking.
    shm_fold_rows:
        Logged delta rows beyond which a graph's log folds into a fresh
        segment generation (bounds both the log and re-attach replay work).
    """

    def __init__(
        self,
        catalog: GraphCatalog,
        workers: int = 2,
        kind: str = "weak+strong",
        strategy: str = "hash",
        delta_queue_depth: int = 64,
        heartbeat_seconds: float = 2.0,
        max_retries: int = 2,
        use_shm: Optional[bool] = None,
        shm_fold_rows: int = SEGMENT_FOLD_ROWS,
        start: bool = True,
    ):
        if workers <= 0:
            raise ValueError("a cluster needs at least one worker")
        self.catalog = catalog
        self.worker_count = workers
        self.kind = kind
        self.strategy = strategy
        self.max_retries = max_retries
        self.heartbeat_seconds = heartbeat_seconds
        self.statistics = ServiceStatistics()
        self.started_at = monotonic()
        # spawn, not fork: the coordinator is multi-threaded by design
        # (receiver/broadcaster/heartbeat threads, caller pools) and a
        # forked child inheriting locked locks or sibling pipe fds would
        # break both liveness and EOF-based crash detection
        self._mp = multiprocessing.get_context("spawn")
        self._workers = [_WorkerHandle(i, delta_queue_depth) for i in range(workers)]
        self._request_ids = itertools.count(1)
        self._round_robin = itertools.count()
        self._pool = ThreadPoolExecutor(
            max_workers=max(8, 2 * workers), thread_name_prefix="repro-scatter"
        )
        #: Per graph: how many dictionary ids have been shipped (the next
        #: delta packs the tail from here).  Guarded by the entry write
        #: lock — listeners run inside it, serialized per graph.
        self._dict_marks: Dict[str, int] = {}
        self._listened: Set[str] = set()
        #: Shared-memory plane: one packed segment + delta log per graph.
        self.use_shm = (
            shm.shm_available() if use_shm is None else bool(use_shm) and shm.shm_available()
        )
        self.shm_fold_rows = shm_fold_rows
        self._registry = shm.SegmentRegistry() if self.use_shm else None
        #: Per-graph shm segment bookkeeping; guarded by self._segment_lock
        self._segment_states: Dict[str, _SegmentState] = {}
        self._segment_lock = named_lock("cluster.segment_lock")
        #: Ship latency accounting, read by the bench / status endpoint
        #: through the :attr:`ship_metrics` property (which keeps the
        #: historical dict shape).  The counts are per-coordinator children
        #: of the process-wide ``cluster.*`` registry families.
        self._metrics_lock = named_lock("cluster.metrics_lock")
        self._ships = Counter("ships", parent=telemetry.counter("cluster.ships"))
        self._reships = Counter("reships", parent=telemetry.counter("cluster.reships"))
        self._ship_seconds_total = Counter("ship_seconds")
        self._reship_seconds_total = Counter("reship_seconds")
        self._last_ship_seconds = 0.0
        self._last_reship_seconds = 0.0
        self._ship_seconds_histogram = telemetry.histogram("cluster.ship.seconds")
        self._ship_bytes = telemetry.histogram("cluster.ship.bytes", BYTE_BUCKETS)
        self._retries_counter = telemetry.counter("cluster.retries")
        self._shards_pruned_counter = telemetry.counter("cluster.shards_pruned")
        self._respawns_counter = telemetry.counter("cluster.respawns")
        #: Backpressure gauge: queued-but-unsent ingest deltas across the
        #: worker pool, sampled at scrape time.
        self._queue_gauge = telemetry.gauge("cluster.delta.queue.depth")
        self._queue_sampler = lambda: sum(
            handle.delta_queue.qsize() for handle in self._workers
        )
        self._queue_gauge.add_callback(self._queue_sampler)
        self._closed = False
        self._stop_event = threading.Event()
        self._heartbeat_thread: Optional[threading.Thread] = None
        if start:
            self.start()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the workers and ship every registered graph."""
        for handle in self._workers:
            self._spawn(handle)
            self._start_broadcaster(handle)
        for name in self.catalog.names():
            entry = self.catalog.entry(name)
            self._attach_listener(entry)
            self._ship_graph(entry, self._workers)
        if self.heartbeat_seconds > 0:
            self._heartbeat_thread = threading.Thread(
                target=self._heartbeat_loop, name="repro-heartbeat", daemon=True
            )
            self._heartbeat_thread.start()

    def _spawn(self, handle: _WorkerHandle) -> None:
        """Start (or restart) the process behind *handle* (ship_lock held
        by the caller for respawns; at start() nothing races)."""
        parent_conn, child_conn = self._mp.Pipe(duplex=True)
        config = {
            "shard_index": handle.index,
            "shard_count": self.worker_count,
            "kind": self.kind,
            "strategy": self.strategy,
            "telemetry": telemetry.enabled(),
        }
        process = self._mp.Process(
            target=worker_main,
            args=(child_conn, config),
            name=f"repro-worker-{handle.index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle.process = process
        handle.connection = parent_conn
        handle.alive = True
        generation = handle.generation
        receiver = threading.Thread(
            target=self._receive_loop,
            args=(handle, parent_conn, generation),
            name=f"repro-recv-{handle.index}",
            daemon=True,
        )
        handle.receiver = receiver
        receiver.start()

    def _receive_loop(self, handle: _WorkerHandle, connection, generation: int) -> None:
        """Route worker replies to their waiting requesters; EOF = crash."""
        while True:
            try:
                message = connection.recv()
            except (EOFError, OSError):
                break
            request_id, status, payload = message
            with handle.pending_lock:
                slot = handle.pending.pop(request_id, None)
            if slot is not None:
                slot.resolve(status, payload)
        if handle.generation == generation:
            handle.alive = False
            handle.fail_pending(f"worker {handle.index} pipe closed")
        # A stale generation's receiver must leave pending alone: the
        # respawn already failed the old generation's requests, and every
        # slot registered since (including the respawn's own re-ship
        # loads) belongs to the new generation's receiver.

    def _start_broadcaster(self, handle: _WorkerHandle) -> None:
        def run():
            while True:
                item = handle.delta_queue.get()
                if item is None:
                    return
                # ship_lock keeps the send out of respawn windows: a delta
                # sent between a respawn's snapshot and its load message
                # would be refused (graph unknown) yet *missing* from the
                # snapshot — the one interleaving that loses rows
                with handle.ship_lock:
                    try:
                        self._request(handle, protocol.OP_DELTA, item, _REQUEST_TIMEOUT)
                    except (WorkerCrashedError, UnknownGraphError):
                        # dead worker, or a drop raced us: the rows are
                        # already in the catalog store, so the respawn
                        # re-ship (or the drop) subsumes this delta
                        pass
                    except ClusterError:
                        # timeout or a worker-side fault: the worker may
                        # have missed the delta for good.  Mark the slot
                        # dead so the heartbeat sweep (or the next
                        # request's retry path) respawns it and re-ships a
                        # snapshot that includes these rows.
                        handle.alive = False

        thread = threading.Thread(
            target=run, name=f"repro-delta-{handle.index}", daemon=True
        )
        handle.broadcaster = thread
        thread.start()

    def close(self, timeout: float = _SHUTDOWN_TIMEOUT) -> None:
        """Drain delta queues, drain and stop the workers, join everything.

        Safe to call twice.  The order is the graceful SIGTERM path:
        pending ingest deltas flush first (workers end consistent), each
        worker finishes the message in hand and acks the shutdown, then
        processes are joined (terminated only if they overstay).
        """
        if self._closed:
            return
        self._closed = True
        self._queue_gauge.remove_callback(self._queue_sampler)
        self._stop_event.set()
        if self._heartbeat_thread is not None:
            self._heartbeat_thread.join(timeout=timeout)
        for handle in self._workers:
            handle.delta_queue.put(None)
        for handle in self._workers:
            if handle.broadcaster is not None:
                handle.broadcaster.join(timeout=timeout)
        for handle in self._workers:
            if handle.alive:
                try:
                    self._request(handle, protocol.OP_SHUTDOWN, (), timeout)
                except ClusterError:
                    pass
            process = handle.process
            if process is not None:
                process.join(timeout=timeout)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=timeout)
            handle.alive = False
            if handle.connection is not None:
                try:
                    handle.connection.close()
                except OSError:
                    pass
        self._pool.shutdown(wait=True)
        # workers are gone (their mappings closed); now unlink every named
        # segment — after this, /dev/shm holds nothing of this coordinator
        if self._registry is not None:
            with self._segment_lock:
                self._segment_states.clear()
                self._registry.close()

    def __enter__(self) -> "ClusterCoordinator":
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.close()
        return False

    # ------------------------------------------------------------------
    # request plumbing
    # ------------------------------------------------------------------
    def _request(
        self, handle: _WorkerHandle, op: str, payload: tuple, timeout: float
    ):
        """One id-matched round trip to *handle*'s worker."""
        if not handle.alive:
            raise WorkerCrashedError(f"worker {handle.index} is down")
        request_id = next(self._request_ids)
        slot = _PendingReply()
        with handle.pending_lock:
            handle.pending[request_id] = slot
        try:
            try:
                with handle.send_lock:
                    handle.connection.send((request_id, op, payload))
            except (OSError, ValueError, BrokenPipeError) as error:
                handle.alive = False
                raise WorkerCrashedError(
                    f"worker {handle.index} send failed: {error}"
                ) from error
            if not slot.event.wait(timeout):
                raise WorkerTimeoutError(
                    f"worker {handle.index} did not answer {op!r} within {timeout}s"
                )
        finally:
            with handle.pending_lock:
                handle.pending.pop(request_id, None)
        if slot.status == "ok":
            return slot.payload
        if slot.status == "crashed":
            raise WorkerCrashedError(str(slot.payload))
        error_kind, message = slot.payload
        if error_kind == "unknown_graph":
            raise UnknownGraphError(message)
        if error_kind == "query":
            raise QueryError(message)
        raise ClusterError(f"worker {handle.index} {error_kind} error: {message}")

    def _call_with_retry(
        self, handle: _WorkerHandle, op: str, payload: tuple, timeout: float
    ) -> Tuple[object, int]:
        """A round trip that survives worker crashes; returns
        ``(reply, retries_spent)``.  Crashes trigger respawn + retry up to
        the budget; timeouts do not (re-running the same wedging request
        would wedge the fresh worker too).

        Crash retries and behind-the-ship waits are budgeted *separately*:
        a slow request can legitimately straddle two worker deaths (two
        crash retries — the whole ``max_retries`` budget) *and* land on a
        respawned worker before its re-ship does (an ``UnknownGraphError``
        that just means "wait").  Charging the wait against the crash
        budget made exactly that interleaving fail spuriously under the
        crash-injection benchmark on slow hosts; each wait is already
        bounded by the in-flight ship (we block on the ship lock), so it
        gets its own equal budget instead.
        """
        retries = 0
        ship_waits = 0
        while True:
            generation = handle.generation
            try:
                return self._request(handle, op, payload, timeout), retries + ship_waits
            except WorkerCrashedError:
                if self._closed or retries >= self.max_retries:
                    raise
                retries += 1
                try:
                    self._ensure_alive(handle, generation)
                except WorkerCrashedError:
                    # the respawned worker died under its own re-ship
                    # (another injected kill).  The handle is marked dead;
                    # loop — the next attempt raises immediately and the
                    # budget check, not this helper, decides when to give
                    # up.  (The heartbeat's _ensure_alive calls swallow
                    # the same way.)
                    continue
            except UnknownGraphError:
                # a respawned worker accepts requests the moment its pipe is
                # up, which can be before the respawn's re-ship has landed.
                # If the coordinator still knows the graph the worker is
                # merely behind: wait out the in-flight (re-)ship and retry.
                name = payload[0] if payload else None
                if (
                    self._closed
                    or ship_waits >= self.max_retries
                    or not isinstance(name, str)
                    or name not in self.catalog.names()
                ):
                    raise
                ship_waits += 1
                with handle.ship_lock:
                    pass

    def _ensure_alive(self, handle: _WorkerHandle, seen_generation: int) -> None:
        """Respawn *handle*'s worker unless someone already did."""
        with handle.ship_lock:
            if handle.generation != seen_generation:
                return  # a concurrent caller respawned; just retry
            process = handle.process
            if handle.alive and process is not None and process.is_alive():
                return
            # From here until each graph's snapshot is taken, ingest drops
            # that graph's deltas for this worker instead of blocking on
            # its full queue (see _WorkerHandle.reship_pending): the
            # snapshot subsumes them, and the drop keeps this re-ship from
            # deadlocking against a writer stuck on the bounded queue
            # whose broadcaster is parked on our ship_lock.
            handle.reship_pending = set(self.catalog.names())
            if process is not None:
                if process.is_alive():
                    process.terminate()
                process.join(timeout=5.0)
            if handle.connection is not None:
                try:
                    handle.connection.close()
                except OSError:
                    pass
            handle.fail_pending(f"worker {handle.index} respawning")
            handle.generation += 1
            handle.respawns += 1
            self._respawns_counter.inc()
            # Respawn must happen under the ship lock: the dead worker's
            # slot may not receive a ship until the replacement is wired
            # up, and deltas are fenced by reship_pending (dropped, not
            # queued), so nothing can block against this spawn.
            self._spawn(handle)  # repro-lint: disable=no-blocking-under-lock
            # re-ship every graph from the live catalog: the snapshot (or,
            # in shm mode, the O(1) segment descriptor plus the delta log)
            # subsumes any delta dropped while the worker was down
            started = perf_counter()
            for name in self.catalog.names():
                try:
                    entry = self.catalog.entry(name)
                except UnknownGraphError:
                    handle.reship_pending.discard(name)  # dropped meanwhile
                    continue
                self._ship_graph(entry, [handle], update_marks=False)
            self._record_ship("reship", perf_counter() - started)

    def _heartbeat_loop(self) -> None:
        while not self._stop_event.wait(self.heartbeat_seconds):
            for handle in self._workers:
                if self._closed:
                    return
                process = handle.process
                if not handle.alive or process is None or not process.is_alive():
                    try:
                        self._ensure_alive(handle, handle.generation)
                    except Exception:  # noqa: BLE001 - keep sweeping
                        continue
                try:
                    handle.last_ping = self._request(
                        handle, protocol.OP_PING, (), _PING_TIMEOUT
                    )
                    handle.last_ping_at = monotonic()
                except WorkerTimeoutError:
                    # busy, not dead: a single-threaded worker mid-join
                    # answers late; only process death triggers respawn
                    continue
                except ClusterError:
                    continue

    # ------------------------------------------------------------------
    # shipping
    # ------------------------------------------------------------------
    def _attach_listener(self, entry: CatalogEntry) -> None:
        if entry.name in self._listened:
            return
        self._listened.add(entry.name)
        entry._delta_listeners.append(self._on_entry_delta)

    def _on_entry_delta(self, entry: CatalogEntry, rows: List) -> None:
        """Entry write hook: fan the ingest delta out to every worker.

        Runs inside the entry's write lock (serialized per graph), so the
        dictionary mark advances consistently with the shipped tail.  The
        bounded ``put`` is the backpressure point: with a full queue the
        ingesting caller waits for the slowest worker.
        """
        if self._closed:
            return
        name = entry.name
        mark = self._dict_marks.get(name)
        if mark is None:
            return  # not shipped yet: the ship will include these rows
        dictionary = entry.store.dictionary
        packed_terms = protocol.pack_terms(dictionary, mark)
        self._dict_marks[name] = mark + len(packed_terms)
        wire_rows = [
            (kind.value, row[0], row[1], row[2]) for kind, row in rows
        ]
        item = (name, entry.version, (mark, packed_terms), wire_rows)
        if self.use_shm:
            # append to the graph's replay log so a respawn re-attaches the
            # unchanged segment and replays this batch instead of repacking;
            # past the fold threshold the log collapses into a fresh
            # generation (we hold the entry write lock, so the store is
            # stable and the repack is consistent)
            with self._segment_lock:
                state = self._segment_states.get(name)
                if state is not None:
                    state.deltas.append((entry.version, (mark, packed_terms), wire_rows))
                    state.delta_rows += len(wire_rows)
                    if state.delta_rows >= self.shm_fold_rows:
                        segment_name, directory = self._pack_segment(
                            entry, entry.version
                        )
                        state.segment_name = segment_name
                        state.directory = directory
                        state.version = entry.version
                        state.deltas = []
                        state.delta_rows = 0
        for handle in self._workers:
            while not self._closed:
                if name in handle.reship_pending:
                    # An in-flight (re-)ship has yet to snapshot this graph
                    # for this worker; that snapshot — read-locked only
                    # after our write lock releases — subsumes the delta.
                    # Dropping instead of blocking breaks the deadlock
                    # cycle: ingest (entry write lock) → full delta queue →
                    # broadcaster → ship_lock → re-ship waiting on our
                    # entry's read lock.
                    break
                try:
                    handle.delta_queue.put(item, timeout=0.2)
                    break
                except queue.Full:
                    continue  # backpressure; re-check close/re-ship state

    def _snapshot_graph(
        self,
        entry: CatalogEntry,
        handles: Sequence[_WorkerHandle],
        update_marks: bool = True,
    ) -> Optional[tuple]:
        """One shippable snapshot of *entry*, taken under its read lock;
        ``None`` if the entry was already dropped.

        Inline mode packs terms, every shard's tables and the full tables
        into the returned tuple.  Shared-memory mode packs them into a
        named segment **once** — a later snapshot of the same graph (a
        respawn re-ship) reuses the live segment descriptor plus the
        accumulated delta log with zero repacking.
        """
        with entry.rwlock.read_locked():
            # End the delta-drop window while the read lock is held: no
            # writer can run the delta listener until we release it, so
            # every delta dropped during the window is made of rows the
            # pack below will see.  Discarding after release would leave a
            # gap in which a fresh write could drop rows this snapshot
            # does not contain.
            for handle in handles:
                handle.reship_pending.discard(entry.name)
            if entry.closed:
                return None
            version = entry.version
            if self.use_shm:
                with self._segment_lock:
                    state = self._segment_states.get(entry.name)
                    if state is None:
                        segment_name, directory = self._pack_segment(entry, version)
                        state = _SegmentState(segment_name, directory, version)
                        self._segment_states[entry.name] = state
                        if update_marks:
                            self._dict_marks[entry.name] = len(
                                entry.store.dictionary
                            )
                    return (
                        protocol.TABLES_SHM,
                        state.version,
                        state.segment_name,
                        state.directory,
                        list(state.deltas),
                    )
            term_chunks = protocol.pack_term_chunks(entry.store.dictionary)
            shard_tables = protocol.pack_all_shard_tables(entry.store, self.worker_count)
            full_tables = protocol.pack_full_tables(entry.store)
            if update_marks:
                self._dict_marks[entry.name] = len(entry.store.dictionary)
        self._ship_bytes.observe(
            float(
                sum(
                    len(blob)
                    for tables in [full_tables, *shard_tables]
                    for _count, s_bytes, p_bytes, o_bytes in tables.values()
                    for blob in (s_bytes, p_bytes, o_bytes)
                )
            )
        )
        return (protocol.TABLES_INLINE, version, term_chunks, shard_tables, full_tables)

    def _pack_segment(self, entry: CatalogEntry, version: int) -> Tuple[str, dict]:
        """Pack *entry* into a fresh segment generation.

        Caller holds the entry lock (read or write) and the segment lock.
        The full replica's weak-summary maintainer state rides along so
        workers restore it instead of re-scanning every row on attach.
        """
        store = entry.store
        term_chunks = protocol.pack_term_chunks(store.dictionary)
        shard_tables = protocol.pack_all_shard_tables(store, self.worker_count)
        full_tables = protocol.pack_full_tables(store)
        segment_name, directory = self._registry.pack(
            entry.name,
            version,
            term_chunks,
            shard_tables,
            full_tables,
            protocol.BYTEORDER,
            weak_state=entry.maintainer_state(),
        )
        for info in self._registry.info():
            if info["segment"] == segment_name:
                self._ship_bytes.observe(float(info["bytes"]))
                break
        return segment_name, directory

    def _send_snapshot(self, handle: _WorkerHandle, name: str, snapshot: tuple) -> None:
        """Load *handle*'s slice of a packed snapshot into its worker."""
        mode = snapshot[0]
        if mode == protocol.TABLES_SHM:
            _mode, version, segment_name, directory, deltas = snapshot
            payload = (
                name,
                version,
                (protocol.TABLES_SHM, segment_name, directory),
                deltas,
            )
        else:
            _mode, version, term_chunks, shard_tables, full_tables = snapshot
            payload = (
                name,
                version,
                (
                    protocol.TABLES_INLINE,
                    term_chunks,
                    shard_tables[handle.index],
                    full_tables,
                    protocol.BYTEORDER,
                ),
                [],
            )
        handle.last_load = self._request(
            handle, protocol.OP_LOAD, payload, _REQUEST_TIMEOUT
        )

    def _ship_graph(
        self,
        entry: CatalogEntry,
        handles: Sequence[_WorkerHandle],
        update_marks: bool = True,
    ) -> None:
        """Snapshot *entry* under its read lock and load it into *handles*.

        In shared-memory mode multi-worker ships run in parallel: the
        payload is a descriptor, the per-worker cost is the worker-side
        attach + shard priming, and those are independent processes.
        """
        started = perf_counter()
        snapshot = self._snapshot_graph(entry, handles, update_marks)
        if snapshot is None:
            return
        if self.use_shm and len(handles) > 1:
            futures = [
                self._pool.submit(self._send_snapshot, handle, entry.name, snapshot)
                for handle in handles
            ]
            for future in futures:
                future.result()
        else:
            for handle in handles:
                self._send_snapshot(handle, entry.name, snapshot)
        if update_marks:
            # an initial ship (start()); respawn re-ships are timed as one
            # "reship" by _ensure_alive around its whole graph loop
            self._record_ship("ship", perf_counter() - started)

    def _record_ship(self, kind: str, seconds: float) -> None:
        with self._metrics_lock:
            if kind == "reship":
                self._reships.inc()
                self._reship_seconds_total.inc(seconds)
                self._last_reship_seconds = seconds
            else:
                self._ships.inc()
                self._ship_seconds_total.inc(seconds)
                self._last_ship_seconds = seconds
        self._ship_seconds_histogram.observe(seconds)

    @property
    def ship_metrics(self) -> Dict[str, object]:
        """Ship latency accounting in the historical dict shape."""
        with self._metrics_lock:
            return {
                "ships": self._ships.int_value,
                "ship_seconds_total": self._ship_seconds_total.value,
                "last_ship_seconds": self._last_ship_seconds,
                "reships": self._reships.int_value,
                "reship_seconds_total": self._reship_seconds_total.value,
                "last_reship_seconds": self._last_reship_seconds,
            }

    # ------------------------------------------------------------------
    # writes (the coordinator is the tier's single writer)
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        graph: Optional[RDFGraph] = None,
        store=None,
    ) -> CatalogEntry:
        """Register a graph and ship its shards to every worker."""
        entry = self.catalog.register(name, graph=graph, store=store)
        self._attach_listener(entry)
        # One snapshot serves every worker (pack_all_shard_tables already
        # partitions for all K shards — snapshotting per worker would redo
        # that K times over).  Every ship_lock is held across snapshot +
        # sends so no queued delta can reach a worker before its load (the
        # worker would refuse it as unknown and the rows would be lost);
        # the reship_pending marks let a concurrent ingest of the new
        # graph drop its queued delta instead of deadlocking against the
        # snapshot's read lock — the snapshot, taken once that write
        # completes, subsumes it.
        for handle in self._workers:
            handle.reship_pending.add(name)
        for handle in self._workers:
            handle.ship_lock.acquire()
        try:
            started = perf_counter()
            snapshot = self._snapshot_graph(entry, self._workers)
            if snapshot is not None:

                def send(handle: _WorkerHandle) -> None:
                    try:
                        self._send_snapshot(handle, name, snapshot)
                    except WorkerCrashedError:
                        pass  # the respawn re-ship loop picks the graph up

                if self.use_shm and len(self._workers) > 1:
                    # descriptor sends are cheap; the real per-worker work
                    # (attach + shard prime) runs in the worker processes,
                    # so loading all K concurrently is a pure win
                    futures = [
                        self._pool.submit(send, handle) for handle in self._workers
                    ]
                    for future in futures:
                        future.result()
                else:
                    for handle in self._workers:
                        send(handle)
                self._record_ship("ship", perf_counter() - started)
        finally:
            for handle in reversed(self._workers):
                handle.ship_lock.release()
        return entry

    def add_triples(self, name: str, triples) -> int:
        """Ingest through the catalog; the delta listener broadcasts."""
        return self.catalog.add_triples(name, triples)

    def drop(self, name: str) -> None:
        """Drop a graph everywhere (coordinator first, then the workers)."""
        self.catalog.drop(name)
        self._dict_marks.pop(name, None)
        self._listened.discard(name)
        if self._registry is not None:
            # unlink first: the name disappears immediately; worker
            # mappings stay valid until their drop closes them
            with self._segment_lock:
                self._segment_states.pop(name, None)
                self._registry.unlink(name)
        for handle in self._workers:
            try:
                self._request(handle, protocol.OP_DROP, (name,), _REQUEST_TIMEOUT)
            except (ClusterError, UnknownGraphError):
                pass

    # ------------------------------------------------------------------
    # reads: scatter-gather
    # ------------------------------------------------------------------
    @staticmethod
    def _common_subject(query: BGPQuery):
        """The single subject term shared by every pattern, else ``None``."""
        subjects = {pattern.subject for pattern in query.patterns}
        if len(subjects) == 1:
            return next(iter(subjects))
        return None

    def answer(
        self,
        graph_name: str,
        query: BGPQuery,
        limit: Optional[int] = None,
        saturated: bool = False,
        explain: bool = False,
        trace: Union[bool, QueryTrace] = False,
    ) -> QueryAnswer:
        """Answer *query* across the worker pool; same contract (and same
        answer sets) as :meth:`QueryService.answer`.

        With ``trace=True`` the trace id rides to every contacted worker
        inside the query frame and each worker's guard/evaluate span tree
        is grafted back under this coordinator's ``route``/``scatter``/
        ``gather`` spans — one tree for the whole scatter-gather."""
        if self._closed:
            raise ClusterError("the cluster coordinator is closed")
        query_trace: Optional[QueryTrace] = None
        if trace:
            query_trace = trace if isinstance(trace, QueryTrace) else QueryTrace()
        total_start = perf_counter()
        entry = self.catalog.entry(graph_name)
        with _maybe_span(query_trace, "route") as route_span:
            min_version = entry.version
            subject = None if saturated else self._common_subject(query)
            if subject is not None:
                handles, single_shard = self._scatter_targets(entry, subject)
                target = TARGET_SHARD
            else:
                handles = [self._workers[next(self._round_robin) % self.worker_count]]
                single_shard = None
                target = TARGET_FULL
            if route_span is not None:
                route_span.attributes.update(
                    mode="scatter" if target == TARGET_SHARD else "full",
                    workers=[handle.index for handle in handles],
                )
        payload = (
            graph_name,
            min_version,
            query.to_sparql(),
            target,
            limit,
            saturated,
            explain,
            query_trace.trace_id if query_trace is not None else None,
        )
        with _maybe_span(query_trace, "scatter") as scatter_span:
            results, retries = self._fan_out(handles, payload)
        if query_trace is not None:
            # graft each worker's finished span tree under the scatter span,
            # wrapped so the tree names the worker that produced it
            for handle, result in zip(handles, results):
                worker_tree = result.get("query_trace")
                if worker_tree:
                    subtree = Span.from_dict(worker_tree)
                    query_trace.graft(
                        Span(
                            f"worker-{handle.index}",
                            seconds=subtree.seconds,
                            children=[subtree],
                        ),
                        under=scatter_span,
                    )
        with _maybe_span(query_trace, "gather") as gather_span:
            answer = self._gather(
                query, graph_name, target, handles, results, limit, retries,
                single_shard, entry, explain,
            )
            if gather_span is not None:
                gather_span.attributes["answers"] = len(answer.answers)
        if retries:
            self._retries_counter.inc(retries)
        self._shards_pruned_counter.inc(answer.cluster["shards_pruned"])
        if query_trace is not None:
            query_trace.annotate(graph=graph_name, cluster=True)
            query_trace.finish(perf_counter() - total_start)
            answer.query_trace = query_trace
        self.statistics.record(answer)
        return answer

    def _scatter_targets(
        self, entry: CatalogEntry, subject
    ) -> Tuple[List[_WorkerHandle], Optional[int]]:
        """All workers for a variable subject; the owning shard for a
        constant one (a dictionary miss keeps one worker in the loop so
        the instant-empty answer flows through the uniform path)."""
        if isinstance(subject, Variable):
            return list(self._workers), None
        try:
            subject_id = entry.store.dictionary.encode_existing(subject)
        except UnknownTermError:
            return [self._workers[next(self._round_robin) % self.worker_count]], None
        shard = shard_of(subject_id, self.worker_count)
        return [self._workers[shard]], shard

    def _fan_out(
        self, handles: Sequence[_WorkerHandle], payload: tuple
    ) -> Tuple[List[dict], int]:
        """Run the query round trip on every handle (in parallel for a
        scatter); returns the per-handle payloads and total crash retries."""
        if len(handles) == 1:
            reply, retries = self._call_with_retry(
                handles[0], protocol.OP_QUERY, payload, _REQUEST_TIMEOUT
            )
            return [reply], retries
        futures = [
            self._pool.submit(
                self._call_with_retry, handle, protocol.OP_QUERY, payload, _REQUEST_TIMEOUT
            )
            for handle in handles
        ]
        results: List[dict] = []
        retries = 0
        for future in futures:
            reply, spent = future.result()
            results.append(reply)
            retries += spent
        return results, retries

    def _gather(
        self,
        query: BGPQuery,
        graph_name: str,
        target: str,
        handles: Sequence[_WorkerHandle],
        results: List[dict],
        limit: Optional[int],
        retries: int,
        single_shard: Optional[int],
        entry: CatalogEntry,
        explain: bool,
    ) -> QueryAnswer:
        decode_table = entry.store.dictionary.decode_table
        id_rows: Set[Tuple[int, ...]] = set()
        for result in results:
            id_rows.update(tuple(row) for row in result["answers"])
        if limit is not None and len(id_rows) > limit:
            # the serial contract: *some* size-limit subset of the answers
            id_rows = set(itertools.islice(id_rows, limit))
        answers: Set[Tuple[Term, ...]] = {
            tuple(decode_table[identifier] for identifier in row) for row in id_rows
        }
        pruned = all(result["pruned"] for result in results)
        pruned_by = None
        if pruned:
            pruned_by = next(
                (r["pruned_by"] for r in results if r["pruned_by"] is not None), None
            )
        shards_pruned = sum(1 for result in results if result["pruned"])
        cluster_meta: Dict[str, object] = {
            "mode": "scatter" if target == TARGET_SHARD else "full",
            "workers": [handle.index for handle in handles],
            "shards_pruned": shards_pruned,
            "retries": retries,
        }
        if single_shard is not None:
            cluster_meta["routed_shard"] = single_shard
        if explain:
            cluster_meta["per_worker"] = [
                {
                    "worker": handle.index,
                    "pruned": result["pruned"],
                    "pruned_by": result["pruned_by"],
                    "answers": len(result["answers"]),
                    "guard_seconds": result["guard_seconds"],
                    "evaluation_seconds": result["evaluation_seconds"],
                    "trace": result["trace"],
                }
                for handle, result in zip(handles, results)
            ]
        first = results[0]
        return QueryAnswer(
            query=query,
            graph_name=graph_name,
            kind=first["kind"],
            answers=answers,
            pruned=pruned,
            prunable=first["prunable"],
            guard_seconds=max(result["guard_seconds"] for result in results),
            evaluation_seconds=max(result["evaluation_seconds"] for result in results),
            strategy=first["strategy"],
            guard_order=tuple(first["guard_order"]),
            pruned_by=pruned_by,
            trace=None,
            saturation=first.get("saturation"),
            cluster=cluster_meta,
        )

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def status(self) -> Dict[str, object]:
        """Worker pool health for the HTTP ``/cluster`` endpoint."""
        workers = []
        for handle in self._workers:
            process = handle.process
            workers.append(
                {
                    "index": handle.index,
                    "pid": process.pid if process is not None else None,
                    "alive": bool(
                        handle.alive and process is not None and process.is_alive()
                    ),
                    "generation": handle.generation,
                    "respawns": handle.respawns,
                    "queued_deltas": handle.delta_queue.qsize(),
                    "last_ping": handle.last_ping,
                    "last_heartbeat_age_seconds": (
                        monotonic() - handle.last_ping_at
                        if handle.last_ping_at is not None
                        else None
                    ),
                    "last_load": handle.last_load,
                }
            )
        with self._segment_lock:
            shm_info: Dict[str, object] = {"enabled": self.use_shm}
            if self._registry is not None:
                shm_info["segments"] = self._registry.info()
                shm_info["packs"] = self._registry.packs
                shm_info["logged_delta_rows"] = sum(
                    state.delta_rows for state in self._segment_states.values()
                )
        ship_metrics = self.ship_metrics
        return {
            "workers": workers,
            "worker_count": self.worker_count,
            "kind": self.kind,
            "strategy": self.strategy,
            "graphs": self.catalog.names(),
            "uptime_seconds": monotonic() - self.started_at,
            "service": self.statistics.as_dict(),
            "shm": shm_info,
            "ship_metrics": ship_metrics,
        }

    def worker_metrics(self, timeout: float = 10.0) -> List[Optional[Dict[str, object]]]:
        """One fresh ping reply per worker slot (``None`` for a dead one).

        Unlike the heartbeat's opportunistic ``last_ping``, this blocks for
        an answer — benchmarks read per-worker RSS and column-memory
        accounting from it right after a load or a crash-recovery pass.
        """
        replies: List[Optional[Dict[str, object]]] = []
        for handle in self._workers:
            try:
                replies.append(self._request(handle, protocol.OP_PING, (), timeout))
            except ClusterError:
                replies.append(None)
        return replies
