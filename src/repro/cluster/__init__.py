"""The sharded multi-process serving tier.

``repro.cluster`` scales the serving layer across CPU cores: a
:class:`~repro.cluster.coordinator.ClusterCoordinator` hash-partitions each
registered graph's encoded rows by subject id into K shards, packs shards
and full replicas as raw int64 column blobs into one named shared-memory
segment per graph (zero Terms pickled) that every worker process attaches
zero-copy — inline pipe blobs remain as the ``--no-shm`` fallback — and
answers BGP queries by scatter-gather, every shard guarded by its own
weak/strong summaries, so refuted shards never run a join.  Answers stay
bit-identical to the in-process :class:`~repro.service.service.QueryService`
(see ``docs/cluster.md`` for the architecture and the failure model).
"""

from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.protocol import (
    OP_DELTA,
    OP_DROP,
    OP_LOAD,
    OP_PING,
    OP_QUERY,
    OP_SHUTDOWN,
    TABLES_INLINE,
    TABLES_SHM,
)
from repro.cluster.shm import SegmentRegistry, shm_available
from repro.cluster.worker import TARGET_FULL, TARGET_SHARD, worker_main

__all__ = [
    "ClusterCoordinator",
    "SegmentRegistry",
    "shm_available",
    "worker_main",
    "TARGET_FULL",
    "TARGET_SHARD",
    "TABLES_INLINE",
    "TABLES_SHM",
    "OP_LOAD",
    "OP_DELTA",
    "OP_QUERY",
    "OP_DROP",
    "OP_PING",
    "OP_SHUTDOWN",
]
