"""The sharded multi-process serving tier.

``repro.cluster`` scales the serving layer across CPU cores: a
:class:`~repro.cluster.coordinator.ClusterCoordinator` hash-partitions each
registered graph's encoded rows by subject id into K shards, ships each
shard to a worker process as raw int64 column blobs (zero Terms pickled),
and answers BGP queries by scatter-gather — every shard guarded by its own
weak/strong summaries, so refuted shards never run a join.  Answers stay
bit-identical to the in-process :class:`~repro.service.service.QueryService`
(see ``docs/cluster.md`` for the architecture and the failure model).
"""

from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.protocol import (
    OP_DELTA,
    OP_DROP,
    OP_LOAD,
    OP_PING,
    OP_QUERY,
    OP_SHUTDOWN,
)
from repro.cluster.worker import TARGET_FULL, TARGET_SHARD, worker_main

__all__ = [
    "ClusterCoordinator",
    "worker_main",
    "TARGET_FULL",
    "TARGET_SHARD",
    "OP_LOAD",
    "OP_DELTA",
    "OP_QUERY",
    "OP_DROP",
    "OP_PING",
    "OP_SHUTDOWN",
]
