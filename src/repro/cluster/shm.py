"""The shared-memory column plane of the cluster tier.

One registered graph generation becomes **one** named POSIX shared-memory
segment holding, back to back: the pickled dictionary term chunks, the
pickled weak-summary maintainer state of the full replica, and the raw
int64 column blobs of every shard partition plus the full-replica tables.
The coordinator packs the segment once; every worker *attaches* instead of
receiving blobs over its pipe, and adopts the column regions zero-copy
(:meth:`MemoryStore.adopt_column_buffers`) — K workers, one physical copy
of the graph per host.

Lifecycle and hygiene
---------------------
The coordinator **owns** every segment: it creates them, re-packs a new
generation when the accumulated delta log outgrows the fold threshold, and
unlinks them on fold, drop and shutdown.  Unlinking only removes the name —
live worker mappings stay valid (plain POSIX semantics), which is what
makes a fold invisible to running workers.

Resource-tracker hygiene: ``multiprocessing`` children share the
coordinator's resource-tracker *process* (the pipe fd is inherited at
spawn), and the tracker only sweeps leaked names when that whole tree has
exited — a SIGKILLed worker can never trigger a sweep on its own.  CPython
< 3.13 registers even *attached* segments, but against the same shared
tracker the registration dedups into the creator's entry, so
:func:`attach` leaves it alone; unregistering there would strip the
creator's entry — losing the coordinator-SIGKILL backstop *and* making the
coordinator's own ``unlink()`` a noisy double-unregister.  On 3.13+,
``track=False`` skips attach-side registration outright.  The creator-side
registration is deliberately kept: if the *coordinator* process is
SIGKILLed, the surviving tracker unlinks the segments once the tree dies —
the backstop behind the "no leaked ``/dev/shm`` segments even after crash
injection" guarantee.
"""

from __future__ import annotations

import os
import pickle
import secrets
from typing import Dict, List, Optional, Tuple

from repro.errors import ClusterError

try:  # pragma: no cover - import guard for exotic platforms
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None

__all__ = [
    "SEGMENT_PREFIX",
    "SegmentRegistry",
    "attach",
    "shm_available",
    "list_segments",
]

#: Every segment name starts with this, so tests and CI can assert that a
#: run left nothing behind with one ``/dev/shm`` listing.
SEGMENT_PREFIX = "repro-shm"

_availability: Optional[bool] = None


def shm_available() -> bool:
    """Whether named shared memory actually works here (probed once)."""
    global _availability
    if _availability is None:
        if shared_memory is None:
            _availability = False
        else:
            try:
                probe = shared_memory.SharedMemory(
                    create=True, size=8, name=_segment_name()
                )
                probe.close()
                probe.unlink()
                _availability = True
            except Exception:  # noqa: BLE001 - any failure means "no shm here"
                _availability = False
    return _availability


def list_segments() -> List[str]:
    """Named segments of this plane currently visible in ``/dev/shm``."""
    root = "/dev/shm"
    if not os.path.isdir(root):
        return []
    return sorted(name for name in os.listdir(root) if name.startswith(SEGMENT_PREFIX))


def _segment_name() -> str:
    # pid + random suffix: unique across coordinators on one host, short
    # enough for every platform's shm name limit
    return f"{SEGMENT_PREFIX}-{os.getpid()}-{secrets.token_hex(4)}"


def attach(name: str):
    """Attach to an existing segment without adopting its lifecycle.

    Returns the :class:`SharedMemory` handle.  Only the coordinator may
    unlink.  On CPython >= 3.13 ``track=False`` keeps the attachment out
    of the resource tracker; earlier versions register it, but workers
    share the coordinator's tracker process, so the registration dedups
    into the creator's entry and must *not* be unregistered here (see the
    module docstring).
    """
    if shared_memory is None:
        raise ClusterError("shared memory is unavailable on this platform")
    try:
        segment = shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track= parameter
        segment = shared_memory.SharedMemory(name=name)
    return segment


class _Segment:
    """One packed generation: the handle, its directory, and its stats."""

    __slots__ = ("handle", "directory", "generation", "nbytes")

    def __init__(self, handle, directory: dict, generation: int, nbytes: int):
        self.handle = handle
        self.directory = directory
        self.generation = generation
        self.nbytes = nbytes


class SegmentRegistry:
    """Coordinator-side owner of every live graph segment.

    ``pack()`` lays a graph generation out into one fresh segment and
    returns ``(segment_name, directory)`` — the descriptor a worker needs
    to attach and adopt.  The *directory* maps named regions to
    ``(offset, length)`` byte windows (terms, weak-summary state) and each
    ship target (shard index or ``"full"``) to per-table
    ``(row_count, s_offset, p_offset, o_offset)`` entries; it travels on
    the pipe, never inside the segment, so attach needs no parsing pass.

    Not thread-safe by itself — the coordinator serializes access with its
    segment lock.
    """

    def __init__(self):
        self._segments: Dict[str, _Segment] = {}
        self._generations: Dict[str, int] = {}
        #: Total ``pack()`` calls — the "zero repack of unchanged
        #: generations" crash-injection gate reads this.
        self.packs = 0

    def pack(
        self,
        graph_name: str,
        version: int,
        term_chunks: List[list],
        shard_tables: List[Dict[str, Tuple[int, bytes, bytes, bytes]]],
        full_tables: Dict[str, Tuple[int, bytes, bytes, bytes]],
        byteorder: str,
        weak_state: Optional[dict] = None,
    ) -> Tuple[str, dict]:
        """Pack one graph generation; unlink the graph's previous one.

        The previous generation's *name* disappears immediately (workers
        already attached keep their mappings — POSIX keeps unlinked
        segments alive until the last close), so at any instant each graph
        owns at most one named segment.
        """
        if shared_memory is None:
            raise ClusterError("shared memory is unavailable on this platform")
        generation = self._generations.get(graph_name, 0) + 1
        # term_chunks is protocol.pack_term_chunks output — plain value
        # tuples, no Term objects (their hashes are process-salted).
        terms_blob = pickle.dumps(  # repro-lint: disable=no-pickled-terms
            term_chunks, protocol=pickle.HIGHEST_PROTOCOL
        )
        weak_blob = (
            b""
            if weak_state is None
            else pickle.dumps(weak_state, protocol=pickle.HIGHEST_PROTOCOL)
        )
        blobs: List[bytes] = [terms_blob, weak_blob]
        directory: dict = {
            "graph": graph_name,
            "generation": generation,
            "version": version,
            "byteorder": byteorder,
            "terms": (0, len(terms_blob)),
            "weak": None,
            "targets": {},
        }
        offset = len(terms_blob)
        if weak_blob:
            directory["weak"] = (offset, len(weak_blob))
        offset += len(weak_blob)
        targets = [("full", full_tables)]
        targets.extend(enumerate(shard_tables))
        for target, tables in targets:
            table_directory = {}
            for kind_value, (count, s_bytes, p_bytes, o_bytes) in tables.items():
                entry = [count]
                for blob in (s_bytes, p_bytes, o_bytes):
                    entry.append(offset)
                    blobs.append(blob)
                    offset += len(blob)
                table_directory[kind_value] = tuple(entry)
            directory["targets"][target] = table_directory
        name = _segment_name()
        segment = shared_memory.SharedMemory(
            create=True, size=max(offset, 1), name=name
        )
        cursor = 0
        for blob in blobs:
            segment.buf[cursor : cursor + len(blob)] = blob
            cursor += len(blob)
        self.unlink(graph_name)
        self._segments[graph_name] = _Segment(segment, directory, generation, offset)
        self._generations[graph_name] = generation
        self.packs += 1
        return name, directory

    def descriptor(self, graph_name: str) -> Optional[Tuple[str, dict]]:
        """The live ``(segment_name, directory)`` of *graph_name*, if any."""
        segment = self._segments.get(graph_name)
        if segment is None:
            return None
        return segment.handle.name, segment.directory

    def unlink(self, graph_name: str) -> None:
        """Unlink and forget *graph_name*'s segment (idempotent)."""
        segment = self._segments.pop(graph_name, None)
        if segment is None:
            return
        try:
            segment.handle.close()
        except BufferError:  # pragma: no cover - coordinator keeps no views
            pass
        try:
            segment.handle.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def close(self) -> None:
        """Unlink every live segment (coordinator shutdown)."""
        for graph_name in list(self._segments):
            self.unlink(graph_name)

    def info(self) -> List[Dict[str, object]]:
        """Per-graph segment facts for status endpoints and benchmarks."""
        return [
            {
                "graph": graph_name,
                "segment": segment.handle.name,
                "generation": segment.generation,
                "bytes": segment.nbytes,
            }
            for graph_name, segment in sorted(self._segments.items())
        ]
