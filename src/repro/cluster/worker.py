"""The cluster worker process: one shard, one full replica, one pipe.

A worker is a single-threaded message loop over a
:class:`multiprocessing.connection.Connection`.  Per registered graph it
keeps **two** worker-local stores sharing **one** dictionary (rebuilt
id-for-id from the coordinator's packed term columns):

Loads arrive in one of two shipping modes (see
:mod:`repro.cluster.protocol`): *inline* column blobs copied off the pipe
into private arrays (the portable fallback), or a *shared-memory segment
descriptor* — the worker attaches the named segment and adopts the column
regions zero-copy (:meth:`MemoryStore.adopt_column_buffers`), unpickles
the dictionary chunks and the full replica's weak-summary maintainer
state straight out of the mapping, and replays the load's delta log.
Either way the resulting stores answer queries identically; the shm path
just skips K-1 copies of every blob and the full replica's O(rows)
priming scan.  The worker never unlinks a segment (the coordinator owns
that); it closes its mapping when the graph is dropped or replaced —
after closing the stores, which release their adopted views.

* the *shard* store — its :func:`~repro.store.base.shard_of` slice of the
  DATA/TYPE tables plus the broadcast SCHEMA table.  Queries whose
  patterns all share one subject term are exact on this partition, and the
  shard's own weak/strong summaries guard them: a refuted shard never runs
  the join;
* the *full* store — a complete replica, answering everything
  subject-hash partitioning cannot make shard-local (chain joins,
  saturated semantics — rdfs3 derives type rows keyed by the *object* of a
  data row, so shard-local saturation is not a partition of ``G∞``).

Both sit behind ordinary :class:`~repro.service.catalog.CatalogEntry`
objects in two worker-local catalogs fronted by
:class:`~repro.service.service.QueryService` instances — the per-shard
summaries, cardinality statistics, planners and guard cascades are exactly
the serving machinery of the single-process tier, pointed at smaller
tables.

Ordering and fencing
--------------------
Messages are processed strictly in arrival order with one exception: a
query carrying ``min_version`` newer than the graph's applied version is
*deferred* (the coordinator observed an ingest whose delta is still in
this worker's pipe) and replayed after each delta until the version
catches up.  Replies therefore carry request ids and may leave out of
order; the coordinator matches by id.

Shutdown
--------
``SIGTERM`` sets a drain flag: the loop finishes (and answers) the message
in hand, then exits without reading further — the coordinator sees EOF and
respawns or, during its own shutdown, moves on.  ``SIGINT`` is ignored
(a Ctrl-C in the foreground serve session belongs to the coordinator).
"""

from __future__ import annotations

import pickle
import signal
import sys
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro import telemetry
from repro.cluster import protocol, shm
from repro.errors import QueryError, ReproError, UnknownGraphError
from repro.model.dictionary import Dictionary, EncodedTriple
from repro.model.triple import TripleKind
from repro.queries.parser import parse_query
from repro.service.catalog import CatalogEntry, GraphCatalog
from repro.service.service import QueryAnswer, QueryService
from repro.store.memory import MemoryStore
from repro.telemetry import QueryTrace

try:  # POSIX-only; the RSS probe degrades gracefully elsewhere
    import resource
except ImportError:  # pragma: no cover
    resource = None

__all__ = ["worker_main", "TARGET_SHARD", "TARGET_FULL"]

#: Query routing targets (the ``target`` field of a query message).
TARGET_SHARD = "shard"
TARGET_FULL = "full"


class _WorkerGraph:
    """One graph's worker-local state: applied version + the two entries."""

    __slots__ = ("version",)

    def __init__(self, version: int):
        self.version = version


class _Worker:
    """The state behind one worker process's message loop."""

    def __init__(self, connection, config: Dict[str, object]):
        self.connection = connection
        self.shard_index: int = config["shard_index"]
        self.shard_count: int = config["shard_count"]
        self.shard_catalog = GraphCatalog()
        self.full_catalog = GraphCatalog()
        kind = config.get("kind", "weak+strong")
        strategy = config.get("strategy", "hash")
        self.shard_service = QueryService(self.shard_catalog, kind=kind, strategy=strategy)
        self.full_service = QueryService(self.full_catalog, kind=kind, strategy=strategy)
        self.graphs: Dict[str, _WorkerGraph] = {}
        #: Attached shared-memory segments by graph name (closed — never
        #: unlinked — when the graph is dropped or replaced).
        self.segments: Dict[str, object] = {}
        #: Graphs whose dictionary still awaits hydration from the packed
        #: term blob: ``name -> (dictionary, pickled term chunks)``.  A
        #: segment attach acknowledges in O(1) and pays the O(terms)
        #: unpack here — right after the ack goes out (overlapping the
        #: coordinator's other sends), or on first delta/query, whichever
        #: comes first.
        self._pending_terms: Dict[str, Tuple[Dictionary, bytes]] = {}
        self.draining = False
        #: Deferred version-fenced queries: ``(request_id, payload)``.
        self.deferred: List[Tuple[int, tuple]] = []

    # ------------------------------------------------------------------
    # message handlers
    # ------------------------------------------------------------------
    def _load_tables(self, store: MemoryStore, tables: Dict[str, tuple], byteorder: str) -> int:
        rows = 0
        for kind_value, (count, s_bytes, p_bytes, o_bytes) in tables.items():
            loaded = store.load_column_bytes(
                TripleKind(kind_value), s_bytes, p_bytes, o_bytes, byteorder=byteorder
            )
            if loaded != count:
                raise ReproError(
                    f"shard blob row count mismatch for {kind_value}: "
                    f"expected {count}, loaded {loaded}"
                )
            rows += loaded
        return rows

    def handle_load(self, payload: tuple) -> dict:
        name, version, tables, deltas = payload
        started = perf_counter()
        if name in self.graphs:
            # a respawn re-ship or a replace: drop the stale copy first,
            # keeping deferred queries — the fresh copy answers them below
            self._drop_local(name)
        mode = tables[0]
        if mode == protocol.TABLES_SHM:
            shard_rows, full_rows = self._load_from_segment(name, version, tables)
        elif mode == protocol.TABLES_INLINE:
            shard_rows, full_rows = self._load_inline(name, version, tables)
        else:
            raise ReproError(f"unknown table shipping mode {mode!r}")
        graph = self.graphs[name]
        # replay the deltas that post-date the shipped snapshot (a re-attach
        # after a crash: the segment is an older generation plus this log)
        for delta_version, packed_terms, rows in deltas:
            self._apply_delta(name, delta_version, packed_terms, rows)
        self._flush_deferred()
        return {
            "name": name,
            "version": graph.version,
            "mode": mode,
            "shard_rows": shard_rows,
            "full_rows": full_rows,
            "attach_seconds": perf_counter() - started,
        }

    def _load_inline(self, name: str, version: int, tables: tuple) -> Tuple[int, int]:
        """The pipe-blob fallback: private column copies, priming scans."""
        _mode, term_chunks, shard_tables, full_tables, byteorder = tables
        dictionary = Dictionary()
        protocol.unpack_term_chunks(term_chunks, dictionary)
        shard_store = MemoryStore()
        shard_store.dictionary = dictionary
        shard_rows = self._load_tables(shard_store, shard_tables, byteorder)
        full_store = MemoryStore()
        full_store.dictionary = dictionary
        full_rows = self._load_tables(full_store, full_tables, byteorder)
        # register() primes each entry's weak-summary maintainer from its
        # store — the per-shard summary build the scatter guard runs on
        self.shard_catalog.register(name, store=shard_store)
        self.full_catalog.register(name, store=full_store)
        self.graphs[name] = _WorkerGraph(version)
        return shard_rows, full_rows

    def _load_from_segment(self, name: str, version: int, tables: tuple) -> Tuple[int, int]:
        """Attach a packed segment and adopt its column regions zero-copy."""
        _mode, segment_name, directory = tables
        segment = shm.attach(segment_name)
        stores: List[MemoryStore] = []
        try:
            buffer = segment.buf
            byteorder = directory["byteorder"]
            offset, length = directory["terms"]
            # a plain memcpy of the pickled blob; the O(terms) dictionary
            # rebuild is deferred (see _pending_terms) so the load ack
            # stays O(1) in the graph size
            dictionary = Dictionary()
            terms_blob = bytes(buffer[offset : offset + length])
            shard_store = MemoryStore()
            stores.append(shard_store)
            shard_store.dictionary = dictionary
            shard_rows = self._adopt_tables(
                shard_store, buffer, directory["targets"][self.shard_index], byteorder
            )
            full_store = MemoryStore()
            stores.append(full_store)
            full_store.dictionary = dictionary
            full_rows = self._adopt_tables(
                full_store, buffer, directory["targets"]["full"], byteorder
            )
            # the shard store defers its (1/K-sized) weak-summary priming
            # scan to its first guarded query; the full replica skips its
            # O(rows) scan outright — the coordinator packed its
            # maintainer state into the segment
            self.shard_catalog.register(name, store=shard_store, lazy_prime=True)
            weak = directory.get("weak")
            if weak is not None:
                offset, length = weak
                entry = CatalogEntry.restore(
                    name=name,
                    store=full_store,
                    version=version,
                    maintainer_state=pickle.loads(buffer[offset : offset + length]),
                )
                self.full_catalog.adopt_entry(entry)
            else:
                self.full_catalog.register(name, store=full_store)
        except BaseException:
            # leave no half-loaded graph: close every store we built
            # (releasing adopted views — close is idempotent, so stores
            # the catalogs already own close again harmlessly), then drop
            # catalog state, then the mapping
            for store in stores:
                store.close()
            self._drop_local(name)
            try:
                segment.close()
            except BufferError:  # pragma: no cover - a stray live view
                pass
            raise
        self.segments[name] = segment
        self._pending_terms[name] = (dictionary, terms_blob)
        self.graphs[name] = _WorkerGraph(version)
        return shard_rows, full_rows

    def _hydrate_terms(self, name: str) -> None:
        """Rebuild *name*'s dictionary from its deferred term blob (no-op
        once hydrated).  Both stores share the dictionary object, so one
        unpack serves the shard and the full replica alike."""
        pending = self._pending_terms.pop(name, None)
        if pending is None:
            return
        dictionary, terms_blob = pending
        # terms_blob holds protocol.pack_term_chunks output — plain value
        # tuples, no Term objects (their hashes are process-salted).
        chunks = pickle.loads(terms_blob)  # repro-lint: disable=no-pickled-terms
        protocol.unpack_term_chunks(chunks, dictionary)

    def _hydrate_pending(self) -> None:
        """Hydrate every deferred dictionary — called right after a load
        ack leaves, so the unpack overlaps the coordinator's other work
        instead of its ship wait."""
        for name in list(self._pending_terms):
            self._hydrate_terms(name)

    def _adopt_tables(
        self, store: MemoryStore, buffer, tables: Dict[str, tuple], byteorder: str
    ) -> int:
        rows = 0
        for kind_value, (count, s_offset, p_offset, o_offset) in tables.items():
            nbytes = count * 8
            adopted = store.adopt_column_buffers(
                TripleKind(kind_value),
                buffer[s_offset : s_offset + nbytes],
                buffer[p_offset : p_offset + nbytes],
                buffer[o_offset : o_offset + nbytes],
                byteorder=byteorder,
            )
            if adopted != count:
                raise ReproError(
                    f"segment row count mismatch for {kind_value}: "
                    f"expected {count}, adopted {adopted}"
                )
            rows += adopted
        return rows

    def handle_delta(self, payload: tuple) -> dict:
        name, version, packed_terms, rows = payload
        applied_full, applied_shard = self._apply_delta(name, version, packed_terms, rows)
        self._flush_deferred()
        return {
            "name": name,
            "version": self.graphs[name].version,
            "full": applied_full,
            "shard": applied_shard,
        }

    def _apply_delta(
        self, name: str, version: int, packed_terms: tuple, rows: list
    ) -> Tuple[int, int]:
        """Apply one ingest delta (live from the pipe, or replayed by a load)."""
        dict_start, packed = packed_terms
        graph = self.graphs.get(name)
        if graph is None:
            raise UnknownGraphError(f"worker never loaded graph {name!r}")
        # the delta's dict-offset contract needs the full base dictionary
        self._hydrate_terms(name)
        full_entry = self.full_catalog.entry(name)
        dictionary = full_entry.store.dictionary
        # the delta packs dictionary ids [dict_start, dict_start+len); after
        # a respawn the re-shipped snapshot may already cover a prefix (or
        # all) of it — skip what we have, append only the genuine tail
        current = len(dictionary)
        if current < dict_start:
            raise ReproError(
                f"delta term gap for {name!r}: worker has {current} ids, "
                f"delta starts at {dict_start}"
            )
        already = current - dict_start
        if already < len(packed):
            protocol.unpack_terms(packed[already:], dictionary)
        encoded = [
            (TripleKind(kind_value), EncodedTriple(s, p, o))
            for kind_value, s, p, o in rows
        ]
        applied_full = full_entry.add_encoded_rows(encoded)
        mine = protocol.shard_rows(rows, self.shard_index, self.shard_count)
        applied_shard = self.shard_catalog.entry(name).add_encoded_rows(
            [
                (TripleKind(kind_value), EncodedTriple(s, p, o))
                for kind_value, s, p, o in mine
            ]
        )
        # versions only move forward: a respawn re-ship may race a delta
        # that was already folded into the shipped snapshot
        graph.version = max(graph.version, version)
        return applied_full, applied_shard

    def _drop_local(self, name: str) -> None:
        """Forget *name*'s stores, segment and version (deferred queries
        untouched).  Stores close first — releasing any adopted column
        views — so the segment mapping can close without BufferError."""
        self.graphs.pop(name, None)
        self._pending_terms.pop(name, None)
        for catalog in (self.shard_catalog, self.full_catalog):
            try:
                catalog.drop(name)
            except UnknownGraphError:
                pass
        segment = self.segments.pop(name, None)
        if segment is not None:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - a stray live view
                pass

    def handle_drop(self, payload: tuple) -> dict:
        (name,) = payload
        self._drop_local(name)
        kept: List[Tuple[int, tuple]] = []
        for request_id, query_payload in self.deferred:
            if query_payload[0] == name:
                # answer, never abandon: the graph is gone, so running the
                # query now raises the prompt unknown-graph error instead
                # of leaving the coordinator's waiter to time out
                self._reply(request_id, self.handle_query, query_payload)
            else:
                kept.append((request_id, query_payload))
        self.deferred = kept
        return {"name": name}

    def handle_query(self, payload: tuple) -> dict:
        # older coordinators send 7-tuples; the 8th element is the
        # propagated trace id of a traced scatter-gather query
        name, _min_version, text, target, limit, saturated, explain = payload[:7]
        trace_id = payload[7] if len(payload) > 7 else None
        self._hydrate_terms(name)  # query terms encode through the dictionary
        service = self.shard_service if target == TARGET_SHARD else self.full_service
        query = parse_query(text, name="cluster")
        answer = service.answer(
            name,
            query,
            limit=limit,
            saturated=saturated,
            explain=explain,
            trace=QueryTrace(trace_id) if trace_id else False,
        )
        return self._encode_answer(answer)

    def handle_ping(self, _payload: tuple) -> dict:
        return {
            "shard_index": self.shard_index,
            "graphs": {name: graph.version for name, graph in self.graphs.items()},
            "deferred": len(self.deferred),
            "segments": len(self.segments),
            "rss_kb": self._rss_kb(),
            "column_memory": self._column_memory(),
        }

    @staticmethod
    def _rss_kb() -> Optional[int]:
        """Peak RSS of this worker in KiB (``None`` off POSIX).

        Informational only: shared segment pages count against every
        worker that touched them, so memory *gates* read the deterministic
        :meth:`MemoryStore.column_memory` accounting instead.
        """
        if resource is None:
            return None
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

    def _column_memory(self) -> Dict[str, int]:
        """Private vs adopted column bytes across every store of this worker."""
        totals = {"private_bytes": 0, "adopted_bytes": 0}
        for catalog in (self.shard_catalog, self.full_catalog):
            for name in catalog.names():
                try:
                    store = catalog.entry(name).store
                except UnknownGraphError:  # pragma: no cover - race-free loop
                    continue
                column_memory = getattr(store, "column_memory", None)
                if column_memory is None:
                    continue
                for key, value in column_memory().items():
                    totals[key] += value
        return totals

    def _encode_answer(self, answer: QueryAnswer) -> dict:
        dictionary = self.full_catalog.entry(answer.graph_name).store.dictionary
        encode = dictionary.encode_existing
        return {
            "answers": [[encode(term) for term in row] for row in answer.answers],
            "pruned": answer.pruned,
            "prunable": answer.prunable,
            "pruned_by": answer.pruned_by,
            "guard_order": list(answer.guard_order),
            "kind": answer.kind,
            "strategy": answer.strategy,
            "guard_seconds": answer.guard_seconds,
            "evaluation_seconds": answer.evaluation_seconds,
            "trace": answer.trace.as_dict() if answer.trace is not None else None,
            "saturation": answer.saturation,
            "query_trace": (
                answer.query_trace.as_dict() if answer.query_trace is not None else None
            ),
        }

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------
    def _query_ready(self, payload: tuple) -> bool:
        """A fenced query is ready once its graph reached ``min_version``.

        Queries for unknown graphs are "ready" too — they must fail with
        the unknown-graph error rather than defer forever.
        """
        name, min_version = payload[0], payload[1]
        graph = self.graphs.get(name)
        if graph is None:
            return True
        return graph.version >= min_version

    def _flush_deferred(self) -> None:
        still_deferred: List[Tuple[int, tuple]] = []
        for request_id, payload in self.deferred:
            if self._query_ready(payload):
                self._reply(request_id, self.handle_query, payload)
            else:
                still_deferred.append((request_id, payload))
        self.deferred = still_deferred

    def _reply(self, request_id: int, handler, payload: tuple) -> None:
        try:
            result = handler(payload)
        except UnknownGraphError as error:
            self.connection.send((request_id, "error", ("unknown_graph", str(error))))
        except QueryError as error:
            self.connection.send((request_id, "error", ("query", str(error))))
        except ReproError as error:
            self.connection.send((request_id, "error", ("repro", str(error))))
        except Exception as error:  # noqa: BLE001 - the pipe must answer
            self.connection.send((request_id, "error", ("internal", f"{type(error).__name__}: {error}")))
        else:
            self.connection.send((request_id, "ok", result))

    def run(self) -> None:
        handlers = {
            protocol.OP_LOAD: self.handle_load,
            protocol.OP_DELTA: self.handle_delta,
            protocol.OP_DROP: self.handle_drop,
            protocol.OP_PING: self.handle_ping,
        }
        connection = self.connection
        while True:
            if self.draining:
                break
            # poll instead of a blocking recv: a SIGTERM that arrives
            # while idle must still drain promptly (PEP 475 would retry a
            # blocked recv straight through the handler)
            if not connection.poll(0.2):
                continue
            try:
                message = connection.recv()
            except (EOFError, OSError):
                break  # coordinator is gone
            request_id, op, payload = message
            if op == protocol.OP_SHUTDOWN:
                self._reply(request_id, lambda _payload: {"draining": True}, payload)
                break
            if op == protocol.OP_QUERY:
                if self._query_ready(payload):
                    self._reply(request_id, self.handle_query, payload)
                else:
                    self.deferred.append((request_id, payload))
                continue
            handler = handlers.get(op)
            if handler is None:
                self._reply(
                    request_id,
                    lambda _payload: (_ for _ in ()).throw(
                        ReproError(f"unknown cluster opcode {op!r}")
                    ),
                    payload,
                )
                continue
            self._reply(request_id, handler, payload)
        self.close()

    def close(self) -> None:
        # catalogs first (stores release their adopted views), then the
        # segment mappings, never an unlink — the coordinator owns those
        self.shard_catalog.close()
        self.full_catalog.close()
        for segment in self.segments.values():
            try:
                segment.close()
            except BufferError:  # pragma: no cover - a stray live view
                pass
        self.segments.clear()
        try:
            self.connection.close()
        except OSError:
            pass


def worker_main(connection, config: Dict[str, object]) -> None:
    """Entry point of a spawned worker process."""
    # the coordinator owns interactive signals; SIGTERM means "drain after
    # the message in hand" (the graceful half of the failure model)
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    # inherit the coordinator's telemetry mode before any service (and its
    # instrument handles) is built — spawn starts from a fresh interpreter
    telemetry.set_enabled(bool(config.get("telemetry", True)))
    worker = _Worker(connection, config)

    def _drain(_signum, _frame):
        worker.draining = True

    signal.signal(signal.SIGTERM, _drain)
    try:
        worker.run()
    except Exception:  # pragma: no cover - last resort: die visibly
        import traceback

        traceback.print_exc(file=sys.stderr)
        raise
