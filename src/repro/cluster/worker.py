"""The cluster worker process: one shard, one full replica, one pipe.

A worker is a single-threaded message loop over a
:class:`multiprocessing.connection.Connection`.  Per registered graph it
keeps **two** worker-local stores sharing **one** dictionary (rebuilt
id-for-id from the coordinator's packed term columns):

* the *shard* store — its :func:`~repro.store.base.shard_of` slice of the
  DATA/TYPE tables plus the broadcast SCHEMA table.  Queries whose
  patterns all share one subject term are exact on this partition, and the
  shard's own weak/strong summaries guard them: a refuted shard never runs
  the join;
* the *full* store — a complete replica, answering everything
  subject-hash partitioning cannot make shard-local (chain joins,
  saturated semantics — rdfs3 derives type rows keyed by the *object* of a
  data row, so shard-local saturation is not a partition of ``G∞``).

Both sit behind ordinary :class:`~repro.service.catalog.CatalogEntry`
objects in two worker-local catalogs fronted by
:class:`~repro.service.service.QueryService` instances — the per-shard
summaries, cardinality statistics, planners and guard cascades are exactly
the serving machinery of the single-process tier, pointed at smaller
tables.

Ordering and fencing
--------------------
Messages are processed strictly in arrival order with one exception: a
query carrying ``min_version`` newer than the graph's applied version is
*deferred* (the coordinator observed an ingest whose delta is still in
this worker's pipe) and replayed after each delta until the version
catches up.  Replies therefore carry request ids and may leave out of
order; the coordinator matches by id.

Shutdown
--------
``SIGTERM`` sets a drain flag: the loop finishes (and answers) the message
in hand, then exits without reading further — the coordinator sees EOF and
respawns or, during its own shutdown, moves on.  ``SIGINT`` is ignored
(a Ctrl-C in the foreground serve session belongs to the coordinator).
"""

from __future__ import annotations

import signal
import sys
from typing import Dict, List, Optional, Tuple

from repro.cluster import protocol
from repro.errors import QueryError, ReproError, UnknownGraphError
from repro.model.dictionary import Dictionary, EncodedTriple
from repro.model.triple import TripleKind
from repro.queries.parser import parse_query
from repro.service.catalog import GraphCatalog
from repro.service.service import QueryAnswer, QueryService
from repro.store.memory import MemoryStore

__all__ = ["worker_main", "TARGET_SHARD", "TARGET_FULL"]

#: Query routing targets (the ``target`` field of a query message).
TARGET_SHARD = "shard"
TARGET_FULL = "full"


class _WorkerGraph:
    """One graph's worker-local state: applied version + the two entries."""

    __slots__ = ("version",)

    def __init__(self, version: int):
        self.version = version


class _Worker:
    """The state behind one worker process's message loop."""

    def __init__(self, connection, config: Dict[str, object]):
        self.connection = connection
        self.shard_index: int = config["shard_index"]
        self.shard_count: int = config["shard_count"]
        self.shard_catalog = GraphCatalog()
        self.full_catalog = GraphCatalog()
        kind = config.get("kind", "weak+strong")
        strategy = config.get("strategy", "hash")
        self.shard_service = QueryService(self.shard_catalog, kind=kind, strategy=strategy)
        self.full_service = QueryService(self.full_catalog, kind=kind, strategy=strategy)
        self.graphs: Dict[str, _WorkerGraph] = {}
        self.draining = False
        #: Deferred version-fenced queries: ``(request_id, payload)``.
        self.deferred: List[Tuple[int, tuple]] = []

    # ------------------------------------------------------------------
    # message handlers
    # ------------------------------------------------------------------
    def _load_tables(self, store: MemoryStore, tables: Dict[str, tuple], byteorder: str) -> int:
        rows = 0
        for kind_value, (count, s_bytes, p_bytes, o_bytes) in tables.items():
            loaded = store.load_column_bytes(
                TripleKind(kind_value), s_bytes, p_bytes, o_bytes, byteorder=byteorder
            )
            if loaded != count:
                raise ReproError(
                    f"shard blob row count mismatch for {kind_value}: "
                    f"expected {count}, loaded {loaded}"
                )
            rows += loaded
        return rows

    def handle_load(self, payload: tuple) -> dict:
        name, version, packed_terms, shard_tables, full_tables, byteorder = payload
        if name in self.graphs:
            # a respawn re-ship or a replace: drop the stale copy first,
            # keeping deferred queries — the fresh copy answers them below
            self._drop_local(name)
        dictionary = Dictionary()
        protocol.unpack_terms(packed_terms, dictionary)
        shard_store = MemoryStore()
        shard_store.dictionary = dictionary
        shard_rows = self._load_tables(shard_store, shard_tables, byteorder)
        full_store = MemoryStore()
        full_store.dictionary = dictionary
        full_rows = self._load_tables(full_store, full_tables, byteorder)
        # register() primes each entry's weak-summary maintainer from its
        # store — the per-shard summary build the scatter guard runs on
        self.shard_catalog.register(name, store=shard_store)
        self.full_catalog.register(name, store=full_store)
        self.graphs[name] = _WorkerGraph(version)
        self._flush_deferred()
        return {
            "name": name,
            "version": version,
            "shard_rows": shard_rows,
            "full_rows": full_rows,
        }

    def handle_delta(self, payload: tuple) -> dict:
        name, version, (dict_start, packed_terms), rows = payload
        graph = self.graphs.get(name)
        if graph is None:
            raise UnknownGraphError(f"worker never loaded graph {name!r}")
        full_entry = self.full_catalog.entry(name)
        dictionary = full_entry.store.dictionary
        # the delta packs dictionary ids [dict_start, dict_start+len); after
        # a respawn the re-shipped snapshot may already cover a prefix (or
        # all) of it — skip what we have, append only the genuine tail
        current = len(dictionary)
        if current < dict_start:
            raise ReproError(
                f"delta term gap for {name!r}: worker has {current} ids, "
                f"delta starts at {dict_start}"
            )
        already = current - dict_start
        if already < len(packed_terms):
            protocol.unpack_terms(packed_terms[already:], dictionary)
        encoded = [
            (TripleKind(kind_value), EncodedTriple(s, p, o))
            for kind_value, s, p, o in rows
        ]
        applied_full = full_entry.add_encoded_rows(encoded)
        mine = protocol.shard_rows(rows, self.shard_index, self.shard_count)
        applied_shard = self.shard_catalog.entry(name).add_encoded_rows(
            [
                (TripleKind(kind_value), EncodedTriple(s, p, o))
                for kind_value, s, p, o in mine
            ]
        )
        # versions only move forward: a respawn re-ship may race a delta
        # that was already folded into the shipped snapshot
        graph.version = max(graph.version, version)
        self._flush_deferred()
        return {"name": name, "version": graph.version, "full": applied_full, "shard": applied_shard}

    def _drop_local(self, name: str) -> None:
        """Forget *name*'s stores and version (deferred queries untouched)."""
        self.graphs.pop(name, None)
        for catalog in (self.shard_catalog, self.full_catalog):
            try:
                catalog.drop(name)
            except UnknownGraphError:
                pass

    def handle_drop(self, payload: tuple) -> dict:
        (name,) = payload
        self._drop_local(name)
        kept: List[Tuple[int, tuple]] = []
        for request_id, query_payload in self.deferred:
            if query_payload[0] == name:
                # answer, never abandon: the graph is gone, so running the
                # query now raises the prompt unknown-graph error instead
                # of leaving the coordinator's waiter to time out
                self._reply(request_id, self.handle_query, query_payload)
            else:
                kept.append((request_id, query_payload))
        self.deferred = kept
        return {"name": name}

    def handle_query(self, payload: tuple) -> dict:
        name, _min_version, text, target, limit, saturated, explain = payload
        service = self.shard_service if target == TARGET_SHARD else self.full_service
        query = parse_query(text, name="cluster")
        answer = service.answer(
            name, query, limit=limit, saturated=saturated, explain=explain
        )
        return self._encode_answer(answer)

    def handle_ping(self, _payload: tuple) -> dict:
        return {
            "shard_index": self.shard_index,
            "graphs": {name: graph.version for name, graph in self.graphs.items()},
            "deferred": len(self.deferred),
        }

    def _encode_answer(self, answer: QueryAnswer) -> dict:
        dictionary = self.full_catalog.entry(answer.graph_name).store.dictionary
        encode = dictionary.encode_existing
        return {
            "answers": [[encode(term) for term in row] for row in answer.answers],
            "pruned": answer.pruned,
            "prunable": answer.prunable,
            "pruned_by": answer.pruned_by,
            "guard_order": list(answer.guard_order),
            "kind": answer.kind,
            "strategy": answer.strategy,
            "guard_seconds": answer.guard_seconds,
            "evaluation_seconds": answer.evaluation_seconds,
            "trace": answer.trace.as_dict() if answer.trace is not None else None,
            "saturation": answer.saturation,
        }

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------
    def _query_ready(self, payload: tuple) -> bool:
        """A fenced query is ready once its graph reached ``min_version``.

        Queries for unknown graphs are "ready" too — they must fail with
        the unknown-graph error rather than defer forever.
        """
        name, min_version = payload[0], payload[1]
        graph = self.graphs.get(name)
        if graph is None:
            return True
        return graph.version >= min_version

    def _flush_deferred(self) -> None:
        still_deferred: List[Tuple[int, tuple]] = []
        for request_id, payload in self.deferred:
            if self._query_ready(payload):
                self._reply(request_id, self.handle_query, payload)
            else:
                still_deferred.append((request_id, payload))
        self.deferred = still_deferred

    def _reply(self, request_id: int, handler, payload: tuple) -> None:
        try:
            result = handler(payload)
        except UnknownGraphError as error:
            self.connection.send((request_id, "error", ("unknown_graph", str(error))))
        except QueryError as error:
            self.connection.send((request_id, "error", ("query", str(error))))
        except ReproError as error:
            self.connection.send((request_id, "error", ("repro", str(error))))
        except Exception as error:  # noqa: BLE001 - the pipe must answer
            self.connection.send((request_id, "error", ("internal", f"{type(error).__name__}: {error}")))
        else:
            self.connection.send((request_id, "ok", result))

    def run(self) -> None:
        handlers = {
            protocol.OP_LOAD: self.handle_load,
            protocol.OP_DELTA: self.handle_delta,
            protocol.OP_DROP: self.handle_drop,
            protocol.OP_PING: self.handle_ping,
        }
        connection = self.connection
        while True:
            if self.draining:
                break
            # poll instead of a blocking recv: a SIGTERM that arrives
            # while idle must still drain promptly (PEP 475 would retry a
            # blocked recv straight through the handler)
            if not connection.poll(0.2):
                continue
            try:
                message = connection.recv()
            except (EOFError, OSError):
                break  # coordinator is gone
            request_id, op, payload = message
            if op == protocol.OP_SHUTDOWN:
                self._reply(request_id, lambda _payload: {"draining": True}, payload)
                break
            if op == protocol.OP_QUERY:
                if self._query_ready(payload):
                    self._reply(request_id, self.handle_query, payload)
                else:
                    self.deferred.append((request_id, payload))
                continue
            handler = handlers.get(op)
            if handler is None:
                self._reply(
                    request_id,
                    lambda _payload: (_ for _ in ()).throw(
                        ReproError(f"unknown cluster opcode {op!r}")
                    ),
                    payload,
                )
                continue
            self._reply(request_id, handler, payload)
        self.close()

    def close(self) -> None:
        self.shard_catalog.close()
        self.full_catalog.close()
        try:
            self.connection.close()
        except OSError:
            pass


def worker_main(connection, config: Dict[str, object]) -> None:
    """Entry point of a spawned worker process."""
    # the coordinator owns interactive signals; SIGTERM means "drain after
    # the message in hand" (the graceful half of the failure model)
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    worker = _Worker(connection, config)

    def _drain(_signum, _frame):
        worker.draining = True

    signal.signal(signal.SIGTERM, _drain)
    try:
        worker.run()
    except Exception:  # pragma: no cover - last resort: die visibly
        import traceback

        traceback.print_exc(file=sys.stderr)
        raise
