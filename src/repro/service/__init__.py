"""Summary-guarded query service: catalog, planned encoded evaluation, pruning.

The durable layer on top of this package — persistent catalogs, the
concurrent executor and the HTTP front end — lives in :mod:`repro.server`;
:meth:`GraphCatalog.open` is the bridge between the two.
"""

from repro.service.catalog import CatalogEntry, GraphCatalog
from repro.service.evaluator import (
    STRATEGIES,
    CompiledQuery,
    EncodedEvaluator,
    compile_query,
)
from repro.service.planner import ExecutionTrace, QueryPlan, QueryPlanner
from repro.service.service import QueryAnswer, QueryService, ServiceStatistics
from repro.service.statistics import CardinalityStatistics, PredicateStatistics
from repro.service.workload import (
    ComparisonReport,
    WorkloadQuery,
    WorkloadReport,
    compare_guarded_vs_direct,
    generate_mixed_workload,
    run_workload,
)

__all__ = [
    "CatalogEntry",
    "GraphCatalog",
    "CompiledQuery",
    "EncodedEvaluator",
    "compile_query",
    "STRATEGIES",
    "CardinalityStatistics",
    "PredicateStatistics",
    "QueryPlanner",
    "QueryPlan",
    "ExecutionTrace",
    "QueryAnswer",
    "QueryService",
    "ServiceStatistics",
    "ComparisonReport",
    "WorkloadQuery",
    "WorkloadReport",
    "compare_guarded_vs_direct",
    "generate_mixed_workload",
    "run_workload",
]
