"""Summary-guarded query service: catalog, encoded evaluation, pruning."""

from repro.service.catalog import CatalogEntry, GraphCatalog
from repro.service.evaluator import CompiledQuery, EncodedEvaluator, compile_query
from repro.service.service import QueryAnswer, QueryService, ServiceStatistics
from repro.service.workload import (
    ComparisonReport,
    WorkloadQuery,
    WorkloadReport,
    compare_guarded_vs_direct,
    generate_mixed_workload,
    run_workload,
)

__all__ = [
    "CatalogEntry",
    "GraphCatalog",
    "CompiledQuery",
    "EncodedEvaluator",
    "compile_query",
    "QueryAnswer",
    "QueryService",
    "ServiceStatistics",
    "ComparisonReport",
    "WorkloadQuery",
    "WorkloadReport",
    "compare_guarded_vs_direct",
    "generate_mixed_workload",
    "run_workload",
]
