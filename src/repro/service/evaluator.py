"""Encoded BGP evaluation over a :class:`~repro.store.base.TripleStore`.

The paper's prototype answers queries where the data lives: dictionary-
encoded integer triples in relational tables (Section 6).  This module
brings BGP evaluation to that substrate, mirroring the join strategy of the
``Term``-object evaluator (:mod:`repro.queries.evaluation`) — greedy
most-bound-first ordering driving an index-nested-loop join — but with
every comparison an integer comparison and every probe a
:meth:`TripleStore.select` against the backend's indexes.

Compilation (:func:`compile_query`) lowers a :class:`BGPQuery` to term ids
through the store dictionary once, up front.  A constant that fails to
encode — a URI or literal the store has never seen — proves the query empty
on this store before any row is touched; the compiled form records the
missing term and evaluation returns immediately.  This is the cheapest of
the service's pruning levels and needs no summary at all.

Routing exploits the three-table layout: a pattern whose property is
``rdf:type`` only ever matches the type table, a pattern carrying one of the
four RDFS constraint properties only the schema table, every other constant
property only the data table.  Patterns with a variable property (legal in
general BGP, excluded from RBGP) chain all three tables.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import UnknownTermError
from repro.model.dictionary import Dictionary
from repro.model.namespaces import is_schema_property, is_type_property
from repro.model.terms import Term
from repro.model.triple import TripleKind
from repro.queries.bgp import BGPQuery, Variable
from repro.store.base import TripleStore

__all__ = ["CompiledPattern", "CompiledQuery", "EncodedEvaluator", "compile_query"]

_ALL_TABLES = (TripleKind.DATA, TripleKind.TYPE, TripleKind.SCHEMA)


class CompiledPattern:
    """One triple pattern lowered to integers.

    Each position is a term id (``>= 0``) for a constant, or ``-(slot + 1)``
    for the variable assigned to binding *slot* — the sign carries the
    var/constant distinction without boxing, keeping the inner join loop on
    plain ``int`` comparisons.
    """

    __slots__ = ("subject", "predicate", "object", "tables")

    def __init__(self, subject: int, predicate: int, obj: int, tables: Tuple[TripleKind, ...]):
        self.subject = subject
        self.predicate = predicate
        self.object = obj
        self.tables = tables

    def bound_count(self, bound_slots: Set[int]) -> int:
        """Positions that are constants or already-bound variables."""
        count = 0
        for spec in (self.subject, self.predicate, self.object):
            if spec >= 0 or -spec - 1 in bound_slots:
                count += 1
        return count

    def slots(self) -> Set[int]:
        """The variable slots occurring in the pattern."""
        return {-spec - 1 for spec in (self.subject, self.predicate, self.object) if spec < 0}

    def __repr__(self):
        return f"CompiledPattern({self.subject}, {self.predicate}, {self.object})"


class CompiledQuery:
    """A :class:`BGPQuery` lowered against one store dictionary.

    ``unsatisfiable_term`` is the first constant of the query that the
    dictionary does not know, when there is one — the *dictionary miss* fast
    path: such a query has no answer on the store, whatever the data says.
    A compiled query is only valid against the dictionary it was compiled
    with (ids are store-local).
    """

    __slots__ = ("query", "patterns", "head_slots", "variable_count", "unsatisfiable_term")

    def __init__(
        self,
        query: BGPQuery,
        patterns: Sequence[CompiledPattern],
        head_slots: Tuple[int, ...],
        variable_count: int,
        unsatisfiable_term: Optional[Term] = None,
    ):
        self.query = query
        self.patterns = list(patterns)
        self.head_slots = head_slots
        self.variable_count = variable_count
        self.unsatisfiable_term = unsatisfiable_term

    @property
    def trivially_empty(self) -> bool:
        """``True`` when a constant failed to encode (instant empty answer)."""
        return self.unsatisfiable_term is not None

    def __repr__(self):
        state = f"empty: {self.unsatisfiable_term!r}" if self.trivially_empty else "ready"
        return f"<CompiledQuery {len(self.patterns)} patterns, {state}>"


def _tables_for(predicate) -> Tuple[TripleKind, ...]:
    """The store tables a pattern with this property term can match."""
    if isinstance(predicate, Variable):
        return _ALL_TABLES
    if is_type_property(predicate):
        return (TripleKind.TYPE,)
    if is_schema_property(predicate):
        return (TripleKind.SCHEMA,)
    return (TripleKind.DATA,)


def compile_query(query: BGPQuery, dictionary: Dictionary) -> CompiledQuery:
    """Lower *query* to term ids via *dictionary* (constants encoded once)."""
    slot_of: Dict[str, int] = {}

    def slot(variable: Variable) -> int:
        return slot_of.setdefault(variable.name, len(slot_of))

    patterns: List[CompiledPattern] = []
    missing: Optional[Term] = None
    for pattern in query.patterns:
        specs: List[int] = []
        for term in pattern:
            if isinstance(term, Variable):
                specs.append(-(slot(term) + 1))
            elif missing is None:
                try:
                    specs.append(dictionary.encode_existing(term))
                except UnknownTermError:
                    missing = term
                    specs.append(0)
            else:
                specs.append(0)
        patterns.append(CompiledPattern(specs[0], specs[1], specs[2], _tables_for(pattern.predicate)))
    head_slots = tuple(slot(variable) for variable in query.head)
    if missing is not None:
        return CompiledQuery(query, (), head_slots, len(slot_of), unsatisfiable_term=missing)
    return CompiledQuery(query, patterns, head_slots, len(slot_of))


def _order_patterns(patterns: Sequence[CompiledPattern]) -> List[CompiledPattern]:
    """Greedy join ordering: repeatedly pick the most-bound remaining pattern."""
    remaining = list(patterns)
    ordered: List[CompiledPattern] = []
    bound: Set[int] = set()
    while remaining:
        best = max(remaining, key=lambda p: (p.bound_count(bound), -len(p.slots())))
        ordered.append(best)
        remaining.remove(best)
        bound |= best.slots()
    return ordered


class EncodedEvaluator:
    """BGP evaluation over the encoded rows of one :class:`TripleStore`."""

    def __init__(self, store: TripleStore):
        self.store = store

    def compile(self, query: BGPQuery) -> CompiledQuery:
        """Compile *query* against this store's dictionary."""
        return compile_query(query, self.store.dictionary)

    def _compiled(self, query) -> CompiledQuery:
        return query if isinstance(query, CompiledQuery) else self.compile(query)

    # ------------------------------------------------------------------
    def iter_embeddings(self, query) -> Iterator[Tuple[int, ...]]:
        """Yield every embedding as a tuple of term ids, one per var slot.

        Accepts a :class:`BGPQuery` or a pre-compiled query.  The join is an
        index-nested-loop over :meth:`TripleStore.select`: at each level the
        already-bound positions are pushed into the select, so the backend's
        per-column indexes do the candidate filtering.
        """
        compiled = self._compiled(query)
        if compiled.trivially_empty:
            return
        ordered = _order_patterns(compiled.patterns)
        select = self.store.select
        bindings: List[Optional[int]] = [None] * compiled.variable_count
        depth = len(ordered)

        def recurse(index: int) -> Iterator[Tuple[int, ...]]:
            if index == depth:
                yield tuple(bindings)  # type: ignore[arg-type]
                return
            pattern = ordered[index]
            s_spec, p_spec, o_spec = pattern.subject, pattern.predicate, pattern.object
            subject = s_spec if s_spec >= 0 else bindings[-s_spec - 1]
            predicate = p_spec if p_spec >= 0 else bindings[-p_spec - 1]
            obj = o_spec if o_spec >= 0 else bindings[-o_spec - 1]
            for kind in pattern.tables:
                for row in select(kind, subject, predicate, obj):
                    touched: List[int] = []
                    consistent = True
                    for spec, value in ((s_spec, row[0]), (p_spec, row[1]), (o_spec, row[2])):
                        if spec < 0:
                            slot = -spec - 1
                            bound = bindings[slot]
                            if bound is None:
                                bindings[slot] = value
                                touched.append(slot)
                            elif bound != value:
                                # same variable twice in one pattern with two
                                # different row values
                                consistent = False
                                break
                    if consistent:
                        yield from recurse(index + 1)
                    for slot in touched:
                        bindings[slot] = None

        yield from recurse(0)

    # ------------------------------------------------------------------
    def evaluate(self, query, limit: Optional[int] = None) -> Set[Tuple[Term, ...]]:
        """Distinct decoded answer tuples (head projections of embeddings).

        Matches the semantics of :func:`repro.queries.evaluation.evaluate`:
        a boolean query answers ``{()}`` or ``set()``.
        """
        compiled = self._compiled(query)
        decode = self.store.dictionary.decode
        head = compiled.head_slots
        answers: Set[Tuple[Term, ...]] = set()
        for binding in self.iter_embeddings(compiled):
            answers.add(tuple(decode(binding[slot]) for slot in head))
            if limit is not None and len(answers) >= limit:
                break
        return answers

    def has_answers(self, query) -> bool:
        """``True`` when the query has at least one embedding on the store."""
        for _ in self.iter_embeddings(query):
            return True
        return False

    def count_answers(self, query) -> int:
        """Number of distinct answer tuples on the store."""
        return len(self.evaluate(query))
