"""Encoded BGP evaluation over a :class:`~repro.store.base.TripleStore`.

The paper's prototype answers queries where the data lives: dictionary-
encoded integer triples in relational tables (Section 6).  This module
brings BGP evaluation to that substrate with three interchangeable join
strategies over the same compiled form:

* ``strategy="hash"`` (default) — a *vectorized hash join*: the
  :class:`~repro.service.planner.QueryPlanner` orders the patterns by
  estimated cardinality, and each pattern's candidate rows are fetched
  **once** with a batched :meth:`TripleStore.select_many` (posting lists in
  the memory store, chunked SQL ``IN (...)`` on SQLite), then hash-joined
  against the integer binding table.  The executor issues O(patterns)
  store lookups per query — never one probe per intermediate binding.
* ``strategy="nested"`` — the PR 2 index-nested-loop join (greedy
  most-bound-first ordering, one :meth:`TripleStore.select` per binding),
  kept verbatim for A/B benchmarking; both strategies produce identical
  answer sets.
* ``strategy="sql"`` — whole-join pushdown: the compiled BGP becomes one
  ``SELECT DISTINCT`` over aliased table occurrences and the backend's C
  engine runs the entire join (SQLite releases the GIL for its duration —
  the strategy the concurrent server scales on).  Stores without a SQL
  engine, and variable-property patterns, silently fall back to ``hash``;
  answer sets are identical either way.

Compilation (:func:`compile_query`) lowers a :class:`BGPQuery` to term ids
through the store dictionary once, up front.  A constant that fails to
encode — a URI or literal the store has never seen — proves the query empty
on this store before any row is touched; the compiled form records the
missing term and evaluation returns immediately.  This is the cheapest of
the service's pruning levels and needs no summary at all.

Routing exploits the three-table layout: a pattern whose property is
``rdf:type`` only ever matches the type table, a pattern carrying one of the
four RDFS constraint properties only the schema table, every other constant
property only the data table.  Patterns with a variable property (legal in
general BGP, excluded from RBGP) chain all three tables.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from itertools import groupby, islice
from operator import itemgetter
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from time import perf_counter

from repro import telemetry
from repro.errors import UnknownTermError
from repro.model.dictionary import Dictionary
from repro.model.namespaces import is_schema_property, is_type_property
from repro.model.terms import Term
from repro.model.triple import TripleKind
from repro.queries.bgp import BGPQuery, Variable
from repro.service.planner import ExecutionTrace, QueryPlan, QueryPlanner
from repro.service.statistics import CardinalityStatistics
from repro.store.base import TripleStore

__all__ = [
    "CompiledPattern",
    "CompiledQuery",
    "EncodedEvaluator",
    "compile_query",
    "STRATEGIES",
]

_ALL_TABLES = (TripleKind.DATA, TripleKind.TYPE, TripleKind.SCHEMA)

#: The join strategies the evaluator can run.  ``hash`` and ``nested`` are
#: the Python-side executors; ``sql`` compiles the whole BGP into one
#: relational join statement and lets the backend's C engine run it (only
#: stores advertising ``supports_sql_join`` — the SQLite backend — can;
#: everything else silently falls back to ``hash``).  The ``sql`` strategy
#: is what makes a multi-threaded server scale: the join holds no Python
#: bytecode, so the GIL is released for its whole duration.  ``merge``
#: runs the same planned pipeline as ``hash`` but answers eligible stages
#: by galloping binary search over the store's sorted ``(p, s)`` /
#: ``(p, o)`` posting runs (columnar memory store only) instead of
#: fetching + hashing the relation; statistics pick merge or hash per
#: stage, and ineligible stages fall back to the hash fetch, so answer
#: sets are identical across all four strategies.
STRATEGIES = ("hash", "nested", "sql", "merge")


class CompiledPattern:
    """One triple pattern lowered to integers.

    Each position is a term id (``>= 0``) for a constant, or ``-(slot + 1)``
    for the variable assigned to binding *slot* — the sign carries the
    var/constant distinction without boxing, keeping the inner join loop on
    plain ``int`` comparisons.
    """

    __slots__ = ("subject", "predicate", "object", "tables")

    def __init__(self, subject: int, predicate: int, obj: int, tables: Tuple[TripleKind, ...]):
        self.subject = subject
        self.predicate = predicate
        self.object = obj
        self.tables = tables

    def bound_count(self, bound_slots: Set[int]) -> int:
        """Positions that are constants or already-bound variables."""
        count = 0
        for spec in (self.subject, self.predicate, self.object):
            if spec >= 0 or -spec - 1 in bound_slots:
                count += 1
        return count

    def slots(self) -> Set[int]:
        """The variable slots occurring in the pattern."""
        return {-spec - 1 for spec in (self.subject, self.predicate, self.object) if spec < 0}

    def __repr__(self):
        return f"CompiledPattern({self.subject}, {self.predicate}, {self.object})"


class CompiledQuery:
    """A :class:`BGPQuery` lowered against one store dictionary.

    ``unsatisfiable_term`` is the first constant of the query that the
    dictionary does not know, when there is one — the *dictionary miss* fast
    path: such a query has no answer on the store, whatever the data says.
    A compiled query is only valid against the dictionary it was compiled
    with (ids are store-local).  ``slot_names`` maps binding slots back to
    the variable names that fill them (used by plan explanations).
    """

    __slots__ = (
        "query",
        "patterns",
        "head_slots",
        "variable_count",
        "unsatisfiable_term",
        "slot_names",
    )

    def __init__(
        self,
        query: BGPQuery,
        patterns: Sequence[CompiledPattern],
        head_slots: Tuple[int, ...],
        variable_count: int,
        unsatisfiable_term: Optional[Term] = None,
        slot_names: Tuple[str, ...] = (),
    ):
        self.query = query
        self.patterns = list(patterns)
        self.head_slots = head_slots
        self.variable_count = variable_count
        self.unsatisfiable_term = unsatisfiable_term
        self.slot_names = slot_names

    @property
    def trivially_empty(self) -> bool:
        """``True`` when a constant failed to encode (instant empty answer)."""
        return self.unsatisfiable_term is not None

    def __repr__(self):
        state = f"empty: {self.unsatisfiable_term!r}" if self.trivially_empty else "ready"
        return f"<CompiledQuery {len(self.patterns)} patterns, {state}>"


def _tables_for(predicate) -> Tuple[TripleKind, ...]:
    """The store tables a pattern with this property term can match."""
    if isinstance(predicate, Variable):
        return _ALL_TABLES
    if is_type_property(predicate):
        return (TripleKind.TYPE,)
    if is_schema_property(predicate):
        return (TripleKind.SCHEMA,)
    return (TripleKind.DATA,)


def compile_query(query: BGPQuery, dictionary: Dictionary) -> CompiledQuery:
    """Lower *query* to term ids via *dictionary* (constants encoded once)."""
    slot_of: Dict[str, int] = {}

    def slot(variable: Variable) -> int:
        return slot_of.setdefault(variable.name, len(slot_of))

    patterns: List[CompiledPattern] = []
    missing: Optional[Term] = None
    for pattern in query.patterns:
        specs: List[int] = []
        for term in pattern:
            if isinstance(term, Variable):
                specs.append(-(slot(term) + 1))
            elif missing is None:
                try:
                    specs.append(dictionary.encode_existing(term))
                except UnknownTermError:
                    missing = term
                    specs.append(0)
            else:
                specs.append(0)
        patterns.append(CompiledPattern(specs[0], specs[1], specs[2], _tables_for(pattern.predicate)))
    head_slots = tuple(slot(variable) for variable in query.head)
    slot_names = tuple(sorted(slot_of, key=slot_of.get))
    if missing is not None:
        return CompiledQuery(
            query, (), head_slots, len(slot_of), unsatisfiable_term=missing, slot_names=slot_names
        )
    return CompiledQuery(query, patterns, head_slots, len(slot_of), slot_names=slot_names)


def _order_patterns(patterns: Sequence[CompiledPattern]) -> List[CompiledPattern]:
    """Greedy join ordering: repeatedly pick the most-bound remaining pattern.

    This is the statistics-free ordering of the ``nested`` strategy; the
    ``hash`` strategy orders through the :class:`QueryPlanner` instead.
    """
    remaining = list(patterns)
    ordered: List[CompiledPattern] = []
    bound: Set[int] = set()
    while remaining:
        best = max(remaining, key=lambda p: (p.bound_count(bound), -len(p.slots())))
        ordered.append(best)
        remaining.remove(best)
        bound |= best.slots()
    return ordered


#: A statistics source: a ready profile, a zero-arg provider, or ``None``
#: (profile the store lazily on first use).
StatisticsSource = Union[CardinalityStatistics, Callable[[], CardinalityStatistics], None]
PlannerSource = Union[QueryPlanner, Callable[[], QueryPlanner], None]


class EncodedEvaluator:
    """BGP evaluation over the encoded rows of one :class:`TripleStore`.

    Parameters
    ----------
    store:
        The encoded triple store to evaluate against.
    strategy:
        ``"hash"`` (planned, vectorized — the default), ``"nested"``
        (the legacy per-binding index-nested-loop), ``"sql"`` (whole-join
        pushdown where the backend supports it) or ``"merge"`` (sorted-run
        merge joins where the store exposes them).  Answer sets are
        identical; only the access pattern differs.
    statistics:
        Cardinality profile driving the planner: a
        :class:`CardinalityStatistics`, a zero-arg callable returning one
        (the serving layer passes the catalog's version-fresh provider), or
        ``None`` to profile the store once on first planned evaluation.
    planner:
        A :class:`QueryPlanner` or provider thereof; by default one is
        built over ``statistics`` and kept for the evaluator's lifetime
        (its plan cache makes repeated query shapes plan-free).
    """

    def __init__(
        self,
        store: TripleStore,
        strategy: str = "hash",
        statistics: StatisticsSource = None,
        planner: PlannerSource = None,
    ):
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r} (choose from {STRATEGIES})")
        self.store = store
        self.strategy = strategy
        self._statistics = statistics
        self._planner = planner
        # join-stage telemetry, captured once: when the plane is disabled
        # the flag skips even the per-stage clock reads
        self._instrument_joins = telemetry.enabled()
        self._join_seconds = telemetry.histogram("join.stage.seconds")
        self._join_stages_hash = telemetry.counter("join.stage.hash")
        self._join_stages_merge = telemetry.counter("join.stage.merge")

    # ------------------------------------------------------------------
    def statistics(self) -> CardinalityStatistics:
        """The cardinality profile the planner runs on (built lazily)."""
        if callable(self._statistics):
            return self._statistics()
        if self._statistics is None:
            self._statistics = CardinalityStatistics.from_store(self.store)
        return self._statistics

    def planner(self) -> QueryPlanner:
        """The query planner (and its plan cache) for this evaluator."""
        if callable(self._planner):
            return self._planner()
        if self._planner is None:
            self._planner = QueryPlanner(self.statistics())
        return self._planner

    def compile(self, query: BGPQuery) -> CompiledQuery:
        """Compile *query* against this store's dictionary."""
        return compile_query(query, self.store.dictionary)

    def _compiled(self, query) -> CompiledQuery:
        return query if isinstance(query, CompiledQuery) else self.compile(query)

    # ------------------------------------------------------------------
    def iter_embeddings(
        self, query, trace: Optional[ExecutionTrace] = None
    ) -> Iterator[Tuple[int, ...]]:
        """Yield every embedding as a tuple of term ids, one per var slot.

        Accepts a :class:`BGPQuery` or a pre-compiled query.  Pass an
        :class:`ExecutionTrace` to capture the executed plan (pattern
        order, estimated vs. actual cardinalities, store probes).
        """
        compiled = self._compiled(query)
        if trace is not None:
            trace.strategy = self.strategy
        if compiled.trivially_empty:
            return
        if self.strategy == "nested":
            yield from self._iter_nested(compiled, trace)
        else:
            # the sql strategy projects head tuples only; full embeddings
            # always come from the hash executor
            yield from self._iter_hash(compiled, trace)

    # ------------------------------------------------------------------
    # nested-loop strategy (PR 2, kept for A/B comparison)
    # ------------------------------------------------------------------
    def _iter_nested(
        self, compiled: CompiledQuery, trace: Optional[ExecutionTrace]
    ) -> Iterator[Tuple[int, ...]]:
        """Index-nested-loop join: one ``select`` probe per binding level."""
        ordered = _order_patterns(compiled.patterns)
        if trace is not None:
            for pattern in ordered:
                trace.add_stage(_describe_pattern(pattern, compiled, self.store.dictionary))
        select = self.store.select
        bindings: List[Optional[int]] = [None] * compiled.variable_count
        depth = len(ordered)

        def recurse(index: int) -> Iterator[Tuple[int, ...]]:
            if index == depth:
                yield tuple(bindings)  # type: ignore[arg-type]
                return
            pattern = ordered[index]
            s_spec, p_spec, o_spec = pattern.subject, pattern.predicate, pattern.object
            subject = s_spec if s_spec >= 0 else bindings[-s_spec - 1]
            predicate = p_spec if p_spec >= 0 else bindings[-p_spec - 1]
            obj = o_spec if o_spec >= 0 else bindings[-o_spec - 1]
            for kind in pattern.tables:
                for row in select(kind, subject, predicate, obj):
                    touched: List[int] = []
                    consistent = True
                    for spec, value in ((s_spec, row[0]), (p_spec, row[1]), (o_spec, row[2])):
                        if spec < 0:
                            slot = -spec - 1
                            bound = bindings[slot]
                            if bound is None:
                                bindings[slot] = value
                                touched.append(slot)
                            elif bound != value:
                                # same variable twice in one pattern with two
                                # different row values
                                consistent = False
                                break
                    if consistent:
                        yield from recurse(index + 1)
                    for slot in touched:
                        bindings[slot] = None

        yield from recurse(0)

    # ------------------------------------------------------------------
    # hash strategy (planned, vectorized)
    # ------------------------------------------------------------------
    def _iter_hash(
        self, compiled: CompiledQuery, trace: Optional[ExecutionTrace]
    ) -> Iterator[Tuple[int, ...]]:
        binding_rows, slot_positions = self._hash_bindings(
            compiled, trace, stream_final=trace is None
        )
        order = [slot_positions[slot] for slot in range(compiled.variable_count)]
        for binding in binding_rows:
            yield tuple(binding[position] for position in order)

    def _hash_bindings(
        self,
        compiled: CompiledQuery,
        trace: Optional[ExecutionTrace],
        stream_final: bool = False,
        plan: Optional["QueryPlan"] = None,
    ) -> Tuple[Iterable[Tuple[int, ...]], List[int]]:
        """Planned hash join: batched fetch per pattern, integer hash tables.

        The binding table is a list of plain integer tuples that grow one
        newly bound slot at a time (``slot_positions`` maps a slot to its
        tuple index, ``-1`` while unbound); every stage fetches its
        pattern's candidate rows in one batched lookup per routed table —
        pushing the distinct values of one already-bound column into the
        store — and hash-joins them in, keyed on all bound positions.  The
        join inner loops are specialized for the dominant shapes (one join
        column, one or two fresh columns) so per-output-row work is a
        single small-tuple concatenation.

        With ``stream_final=True`` (only honoured when no trace is being
        captured — a trace needs exact per-stage actuals) the *last* stage
        is returned as a lazy iterator instead of a materialized list:
        consumers that stop early — ``limit``-bounded evaluation,
        ``has_answers`` — never pay for the part of the final fan-out they
        do not read, restoring the nested loop's early-termination property
        without giving up batched access for the earlier stages.
        """
        if plan is None:
            planner = self.planner()
            plan = planner.plan(compiled)
            if trace is not None:
                trace.plan_cached = planner.last_was_hit

        patterns = compiled.patterns
        width = compiled.variable_count
        slot_positions: List[int] = [-1] * width
        binding_rows: List[Tuple[int, ...]] = [()]
        stream_final = stream_final and trace is None
        last_stage_index = len(plan.stages) - 1
        next_position = 0  # positions are assigned densely, in stage order

        instrument = self._instrument_joins
        for stage_index, stage in enumerate(plan.stages):
            stage_start = perf_counter() if instrument else 0.0
            pattern = patterns[stage.pattern_index]

            join_on: List[Tuple[int, int]] = []  # (row column, binding position)
            fresh: List[Tuple[int, int]] = []  # (row column, slot) — first occurrence
            fresh_seen: Dict[int, int] = {}
            same_row_checks: List[Tuple[int, int]] = []  # (column, column) equal-value
            for column, spec in enumerate((pattern.subject, pattern.predicate, pattern.object)):
                if spec >= 0:
                    continue
                slot = -spec - 1
                position = slot_positions[slot]
                if position >= 0:
                    join_on.append((column, position))
                elif slot in fresh_seen:
                    # repeated fresh variable in one pattern (e.g. ?x p ?x)
                    same_row_checks.append((fresh_seen[slot], column))
                else:
                    fresh_seen[slot] = column
                    fresh.append((column, slot))

            merged = None
            if (
                self.strategy == "merge"
                and not same_row_checks
                and len(join_on) == 1
                and not (stream_final and stage_index == last_stage_index)
            ):
                merged = self._merge_stage(pattern, binding_rows, join_on[0])
            if merged is not None:
                algorithm = "merge"
                binding_rows, fetched_count, probes = merged
            else:
                algorithm = "hash"
                fetched, probes = self._fetch_pattern(pattern, binding_rows, slot_positions)
                if same_row_checks:
                    fetched = [
                        row
                        for row in fetched
                        if all(row[left] == row[right] for left, right in same_row_checks)
                    ]
                fetched_count = len(fetched)
                fresh_columns = [column for column, _slot in fresh]
                if stream_final and stage_index == last_stage_index:
                    lazy = _join_stage_iter(binding_rows, fetched, join_on, fresh_columns)
                    for _column, slot in fresh:
                        slot_positions[slot] = next_position
                        next_position += 1
                    # the lazy final stage is consumed by the caller — what
                    # is on the clock here is only its setup
                    if instrument:
                        self._join_seconds.observe(perf_counter() - stage_start)
                        self._join_stages_hash.inc()
                    return lazy, slot_positions
                binding_rows = _join_stage(binding_rows, fetched, join_on, fresh_columns)

            if instrument:
                self._join_seconds.observe(perf_counter() - stage_start)
                if algorithm == "merge":
                    self._join_stages_merge.inc()
                else:
                    self._join_stages_hash.inc()
            if trace is not None:
                trace.add_stage(
                    _describe_pattern(pattern, compiled, self.store.dictionary),
                    estimate=stage.estimate,
                    cumulative_estimate=stage.cumulative,
                    fetched=fetched_count,
                    produced=len(binding_rows),
                    probes=probes,
                    algorithm=algorithm if self.strategy in ("hash", "merge") else None,
                )
            if not binding_rows:
                return [], slot_positions
            for _column, slot in fresh:
                slot_positions[slot] = next_position
                next_position += 1

        return binding_rows, slot_positions

    def _merge_stage(
        self,
        pattern: CompiledPattern,
        binding_rows: List[Tuple[int, ...]],
        join: Tuple[int, int],
    ) -> Optional[Tuple[List[Tuple[int, ...]], int, int]]:
        """One merge-join stage over a sorted posting run, or ``None``.

        Eligible when the pattern routes to exactly one table, carries a
        constant predicate, and joins on exactly one bound subject *or*
        object column for which the store exposes a sorted ``(p, s)`` /
        ``(p, o)`` run.  The relation is never fetched or hashed per
        query: matching rows are read straight out of the run slice and
        its run-order companion column.  On stores that cache run-derived
        structures the probe is one dict lookup into the run's key group
        directory (:meth:`SortedRun.group_bounds`, built once per run and
        amortized across queries); otherwise the bound keys are visited in
        sorted order and each located by binary search bounded below by
        the previous key's upper bound — a galloping merge of the two
        sorted sequences.  Returns ``(joined rows, rows read, probes)``;
        ``None`` means the stage is ineligible (or statistics prefer
        hash) and the caller runs the hash fetch instead.
        """
        join_column, join_position = join
        if join_column == 1 or pattern.predicate < 0 or len(pattern.tables) != 1:
            return None
        kind = pattern.tables[0]
        by_object = join_column == 2
        run = self.store.sorted_run(kind, pattern.predicate, by_object=by_object)
        if run is None:
            return None
        # a relation dwarfed by the binding table is cheaper to fetch once
        # and hash than to binary-search per binding key
        if len(run) * 4 < len(binding_rows):
            return None

        other_column = 0 if by_object else 2
        other_spec = (pattern.subject, pattern.predicate, pattern.object)[other_column]
        run_values = run.column_values(other_column)
        keys = run.keys
        run_length = len(keys)
        constant = other_spec if other_spec >= 0 else None

        out: List[Tuple[int, ...]] = []
        extend = out.extend
        fetched = 0

        if run.value_cache is not None:
            # amortized probe: the run's key group directory is built once
            # and shared by every query, so each binding costs one dict get
            bounds_of = run.group_bounds().get
            for binding in binding_rows:
                bounds = bounds_of(binding[join_position])
                if bounds is None:
                    continue
                lo, hi = bounds
                fetched += hi - lo
                if constant is not None:
                    # semi-join shape: the other column is pinned by a constant
                    multiplicity = run_values[lo:hi].count(constant)
                    if multiplicity:
                        extend((binding,) * multiplicity)
                else:
                    extend([binding + (value,) for value in run_values[lo:hi]])
            return out, fetched, 1

        # no store cache: gallop — visit the bound keys in sorted order,
        # binary-searching each from the previous key's upper bound
        key_of = itemgetter(join_position)
        ordered = sorted(binding_rows, key=key_of)
        cursor = 0
        for key, group in groupby(ordered, key=key_of):
            lo = bisect_left(keys, key, cursor)
            cursor = lo
            if lo == run_length or keys[lo] != key:
                continue
            hi = bisect_right(keys, key, lo)
            cursor = hi
            fetched += hi - lo
            if constant is not None:
                multiplicity = run_values[lo:hi].count(constant)
                if multiplicity:
                    for binding in group:
                        extend((binding,) * multiplicity)
            else:
                values = run_values[lo:hi]
                for binding in group:
                    extend([binding + (value,) for value in values])
        return out, fetched, 1

    def _fetch_pattern(
        self,
        pattern: CompiledPattern,
        binding_rows: List[Tuple[int, ...]],
        slot_positions: List[int],
    ) -> Tuple[List, int]:
        """Fetch a pattern's candidate rows in one batched lookup per table.

        The distinct values of the bound subject/object columns are pushed
        into :meth:`TripleStore.select_many` (sorted, for deterministic
        backend iteration); a bound *predicate* variable is not pushed down
        — the fetch spans the pattern's tables unconstrained on ``p`` and
        the hash join filters on the predicate column instead, keeping the
        probe count at one per table even for variable-property joins.
        """
        s_spec, p_spec, o_spec = pattern.subject, pattern.predicate, pattern.object
        predicate = p_spec if p_spec >= 0 else None

        subject_values: Optional[Set[int]] = None
        subjects_const: Optional[Sequence[int]] = None
        if s_spec < 0 and slot_positions[-s_spec - 1] >= 0:
            position = slot_positions[-s_spec - 1]
            subject_values = {binding[position] for binding in binding_rows}
        elif s_spec >= 0:
            subjects_const = (s_spec,)
        object_values: Optional[Set[int]] = None
        objects_const: Optional[Sequence[int]] = None
        if o_spec < 0 and slot_positions[-o_spec - 1] >= 0:
            position = slot_positions[-o_spec - 1]
            object_values = {binding[position] for binding in binding_rows}
        elif o_spec >= 0:
            objects_const = (o_spec,)

        statistics = self.statistics()
        subjects_sorted: Optional[List[int]] = None
        objects_sorted: Optional[List[int]] = None
        rows: List = []
        probes = 0
        select_many = self.store.select_many
        for kind in pattern.tables:
            probes += 1
            # semi-join pushdown is only worth it when the bound-value set
            # is small relative to the pattern's relation: pushing 20k ids
            # against a 25k-row property costs more per-id probes (or SQL
            # `IN` chunks) than fetching the relation once and letting the
            # hash join discard the misses.  Constants are always pushed —
            # the join cannot filter them.  Pushed values are sorted (once,
            # lazily) for deterministic backend iteration.
            if predicate is not None:
                relation_rows = statistics.predicate_rows(kind, predicate)
            else:
                relation_rows = statistics.table_rows(kind)
            kind_subjects = subjects_const
            if subject_values is not None and len(subject_values) * 3 <= relation_rows:
                if subjects_sorted is None:
                    subjects_sorted = sorted(subject_values)
                kind_subjects = subjects_sorted
            kind_objects = objects_const
            if object_values is not None and len(object_values) * 3 <= relation_rows:
                if objects_sorted is None:
                    objects_sorted = sorted(object_values)
                kind_objects = objects_sorted
            fetched = select_many(
                kind, subjects=kind_subjects, predicate=predicate, objects=kind_objects
            )
            if isinstance(fetched, list) and not rows:
                rows = fetched
            else:
                rows.extend(fetched)
        return rows, probes

    # ------------------------------------------------------------------
    # sql strategy (whole-join pushdown into the backend's C engine)
    # ------------------------------------------------------------------
    def _compile_sql_join(
        self, compiled: CompiledQuery, limit: Optional[int]
    ) -> Optional[Tuple[str, List[int]]]:
        """The query as one relational join statement, or ``None``.

        ``None`` when the store has no SQL engine or a pattern routes to
        more than one table (variable-property patterns) — those run the
        hash executor instead.  Each pattern becomes an aliased occurrence
        of its table; constants pin columns via parameters, a variable's
        first column occurrence defines its expression and every later
        occurrence adds an equality — the textbook BGP-to-conjunctive-SQL
        translation of the paper's prototype.  Head projection is
        ``SELECT DISTINCT``, so the statement computes exactly the
        evaluator's answer-set semantics; ``LIMIT`` (applied after
        ``DISTINCT``) matches the ``limit=`` contract.
        """
        store = self.store
        if not getattr(store, "supports_sql_join", False):
            return None
        if any(len(pattern.tables) != 1 for pattern in compiled.patterns):
            return None
        table_names = store.SQL_TABLE_FOR_KIND
        slot_exprs: Dict[int, str] = {}
        from_clauses: List[str] = []
        where: List[str] = []
        parameters: List[int] = []
        for index, pattern in enumerate(compiled.patterns):
            alias = f"t{index}"
            from_clauses.append(f"{table_names[pattern.tables[0]]} AS {alias}")
            for column, spec in (
                ("s", pattern.subject),
                ("p", pattern.predicate),
                ("o", pattern.object),
            ):
                expression = f"{alias}.{column}"
                if spec >= 0:
                    where.append(f"{expression} = ?")
                    parameters.append(spec)
                    continue
                slot = -spec - 1
                bound = slot_exprs.get(slot)
                if bound is None:
                    slot_exprs[slot] = expression
                else:
                    where.append(f"{expression} = {bound}")
        if compiled.head_slots:
            select = "SELECT DISTINCT " + ", ".join(
                slot_exprs[slot] for slot in compiled.head_slots
            )
        else:
            select = "SELECT 1"
        sql = f"{select} FROM {', '.join(from_clauses)}"
        if where:
            sql += f" WHERE {' AND '.join(where)}"
        if not compiled.head_slots:
            sql += " LIMIT 1"
        elif limit is not None:
            sql += f" LIMIT {int(limit)}"
        return sql, parameters

    def _evaluate_sql(
        self,
        compiled: CompiledQuery,
        limit: Optional[int],
        trace: Optional[ExecutionTrace],
    ) -> Optional[Set[Tuple[Term, ...]]]:
        """Answer via one pushed-down join, or ``None`` to use the hash path."""
        statement = self._compile_sql_join(compiled, limit)
        if statement is None:
            return None
        sql, parameters = statement
        rows = self.store.execute_join(sql, parameters)
        if trace is not None:
            trace.strategy = self.strategy
            trace.add_stage(sql, produced=len(rows), probes=1)
        if not compiled.head_slots:
            return {()} if rows else set()
        decode = self.store.dictionary.decode
        if len(compiled.head_slots) == 1:
            return {(decode(row[0]),) for row in rows}
        return {tuple(decode(value) for value in row) for row in rows}

    # ------------------------------------------------------------------
    def explain(self, query, limit: Optional[int] = None) -> ExecutionTrace:
        """Evaluate *query* and return the captured execution trace."""
        trace = ExecutionTrace()
        self.evaluate(query, limit=limit, trace=trace)
        return trace

    def evaluate(
        self,
        query,
        limit: Optional[int] = None,
        trace: Optional[ExecutionTrace] = None,
    ) -> Set[Tuple[Term, ...]]:
        """Distinct decoded answer tuples (head projections of embeddings).

        Matches the semantics of :func:`repro.queries.evaluation.evaluate`:
        a boolean query answers ``{()}`` or ``set()``.
        """
        compiled = self._compiled(query)
        decode = self.store.dictionary.decode
        head = compiled.head_slots
        answers: Set[Tuple[Term, ...]] = set()
        if self.strategy == "sql" and not compiled.trivially_empty:
            pushed_down = self._evaluate_sql(compiled, limit, trace)
            if pushed_down is not None:
                return pushed_down
            # no SQL engine (or a multi-table pattern): hash path below
        if self.strategy in ("hash", "sql", "merge") and not compiled.trivially_empty:
            # project straight off the binding table: deduplicate on integer
            # head tuples first (C-level set comprehensions for the common
            # head widths), then decode each distinct tuple exactly once
            if trace is not None:
                trace.strategy = self.strategy
            if limit is not None and trace is None:
                plan = self.planner().plan(compiled)
                if _prefer_pipelined(plan, limit):
                    # limit-aware plan choice: when the statistics predict
                    # intermediate binding tables far beyond what the limit
                    # can consume, a blocking hash join would materialize
                    # fan-out the caller never reads — run the pipelined
                    # nested loop instead, which stops at the limit (the
                    # classic LIMIT-pushes-toward-index-nested-loop rule)
                    for binding in self._iter_nested(compiled, None):
                        answers.add(tuple(decode(binding[slot]) for slot in head))
                        if len(answers) >= limit:
                            break
                    return answers
                # stream the final stage so a limit (or an ASK) never pays
                # for join fan-out beyond what it reads
                lazy_rows, slot_positions = self._hash_bindings(
                    compiled, trace, stream_final=True, plan=plan
                )
                head_positions = [slot_positions[slot] for slot in head]
                add = answers.add
                for binding in lazy_rows:
                    add(tuple(decode(binding[position]) for position in head_positions))
                    if len(answers) >= limit:
                        break
                return answers
            binding_rows, slot_positions = self._hash_bindings(compiled, trace)
            if not binding_rows:
                return answers
            head_positions = [slot_positions[slot] for slot in head]
            if not head_positions:
                return {()}
            # binding ids came out of the store, so index the decode table
            # directly: no per-id bounds check or method dispatch
            terms = self.store.dictionary.decode_table
            if len(head_positions) == 1:
                (first,) = head_positions
                distinct: Set = {binding[first] for binding in binding_rows}
                answers = {(terms[value],) for value in distinct}
            elif len(head_positions) == 2:
                first, second = head_positions
                distinct = {(binding[first], binding[second]) for binding in binding_rows}
                answers = {(terms[left], terms[right]) for left, right in distinct}
            else:
                distinct = {
                    tuple(binding[position] for position in head_positions)
                    for binding in binding_rows
                }
                answers = {tuple(terms[value] for value in row) for row in distinct}
            if limit is not None and len(answers) > limit:
                answers = set(islice(answers, limit))
            return answers
        for binding in self.iter_embeddings(compiled, trace=trace):
            answers.add(tuple(decode(binding[slot]) for slot in head))
            if limit is not None and len(answers) >= limit:
                break
        return answers

    def has_answers(self, query) -> bool:
        """``True`` when the query has at least one embedding on the store.

        Routed through ``limit=1`` evaluation so the limit-aware plan
        choice applies: a satisfiable high-fan-out query answers from the
        pipelined path's first embedding, an unsatisfiable one from the
        batched hash join's empty result.
        """
        return bool(self.evaluate(query, limit=1))

    def count_answers(self, query) -> int:
        """Number of distinct answer tuples on the store."""
        return len(self.evaluate(query))


def _prefer_pipelined(plan: "QueryPlan", limit: int) -> bool:
    """Whether a *limit*-bounded run should pipeline instead of block.

    ``True`` when the plan's largest estimated *intermediate* binding
    table exceeds what the limit can plausibly consume (a fixed
    per-answer fan-out allowance): materializing it would be pure waste
    for a caller that reads at most *limit* distinct answers.
    """
    if len(plan.stages) <= 1:
        return False
    intermediate = max(stage.cumulative for stage in plan.stages[:-1])
    return intermediate > max(5_000.0, float(limit) * 200.0)


def _join_stage(
    binding_rows: List[Tuple[int, ...]],
    fetched: List,
    join_on: List[Tuple[int, int]],
    fresh_columns: List[int],
) -> List[Tuple[int, ...]]:
    """One hash-join stage: extend every binding with its matching rows.

    *join_on* pairs a fetched-row column with the binding-tuple position it
    must equal; *fresh_columns* are the row columns appended (in slot
    order) to each surviving binding.  The common shapes — one join column,
    zero to two fresh columns — run as straight-line loops; every other
    shape delegates to :func:`_join_stage_iter`, the single source of
    truth for the general join semantics.
    """
    out: List[Tuple[int, ...]] = []
    append = out.append
    if not join_on:
        if len(fresh_columns) == 2:
            # no shared variable: cartesian extension (the planner keeps
            # such stages first or tiny)
            left, right = fresh_columns
            if binding_rows == [()]:
                return [(row[left], row[right]) for row in fetched]
            for binding in binding_rows:
                for row in fetched:
                    append(binding + (row[left], row[right]))
            return out
        return list(_join_stage_iter(binding_rows, fetched, join_on, fresh_columns))

    if len(join_on) == 1 and len(fresh_columns) <= 2:
        buckets: Dict = {}
        setdefault = buckets.setdefault
        join_column, join_position = join_on[0]
        for row in fetched:
            setdefault(row[join_column], []).append(row)
        get = buckets.get
        if len(fresh_columns) == 1:
            (fresh_column,) = fresh_columns
            for binding in binding_rows:
                bucket = get(binding[join_position])
                if bucket is not None:
                    for row in bucket:
                        append(binding + (row[fresh_column],))
        elif len(fresh_columns) == 2:
            left, right = fresh_columns
            for binding in binding_rows:
                bucket = get(binding[join_position])
                if bucket is not None:
                    for row in bucket:
                        append(binding + (row[left], row[right]))
        else:
            for binding in binding_rows:
                bucket = get(binding[join_position])
                if bucket is not None:
                    for _row in bucket:
                        append(binding)
        return out

    return list(_join_stage_iter(binding_rows, fetched, join_on, fresh_columns))


def _join_stage_iter(
    binding_rows: List[Tuple[int, ...]],
    fetched: List,
    join_on: List[Tuple[int, int]],
    fresh_columns: List[int],
) -> Iterator[Tuple[int, ...]]:
    """Lazy variant of :func:`_join_stage` for the plan's final stage.

    The hash table over the fetched rows is still built eagerly (it is
    bounded by the batched fetch), but extended bindings are yielded one at
    a time, so early-terminating consumers stop the fan-out mid-way.
    """
    if not join_on:
        for binding in binding_rows:
            for row in fetched:
                yield binding + tuple(row[column] for column in fresh_columns)
        return
    buckets: Dict = {}
    setdefault = buckets.setdefault
    if len(join_on) == 1:
        join_column, join_position = join_on[0]
        for row in fetched:
            setdefault(row[join_column], []).append(row)
        get = buckets.get
        for binding in binding_rows:
            bucket = get(binding[join_position])
            if bucket is not None:
                for row in bucket:
                    yield binding + tuple(row[column] for column in fresh_columns)
        return
    for row in fetched:
        setdefault(tuple(row[column] for column, _position in join_on), []).append(row)
    get = buckets.get
    for binding in binding_rows:
        bucket = get(tuple(binding[position] for _column, position in join_on))
        if bucket is not None:
            for row in bucket:
                yield binding + tuple(row[column] for column in fresh_columns)


def _describe_pattern(
    pattern: CompiledPattern, compiled: CompiledQuery, dictionary: Dictionary
) -> str:
    """Human-readable ``?s <p> ?o`` rendering of a compiled pattern."""

    def render(spec: int) -> str:
        if spec < 0:
            slot = -spec - 1
            name = compiled.slot_names[slot] if slot < len(compiled.slot_names) else str(slot)
            return f"?{name}"
        try:
            return dictionary.decode(spec).n3()
        except Exception:
            return f"#{spec}"

    return f"{render(pattern.subject)} {render(pattern.predicate)} {render(pattern.object)}"
