"""The :class:`GraphCatalog`: named graphs with cached encoded summaries.

The serving layer keeps each registered graph where the paper's prototype
keeps it — dictionary-encoded in a :class:`~repro.store.base.TripleStore` —
and maintains, per graph:

* an :class:`~repro.service.evaluator.EncodedEvaluator` joined directly on
  the store's integer rows;
* a live :class:`~repro.core.incremental.IncrementalWeakSummarizer` fed one
  encoded row per added triple, so the weak summary every query is guarded
  by stays fresh under updates at the cost of the paper's Algorithms 1-3,
  never a re-summarization;
* lazily built, version-invalidated caches of the other summary kinds
  (rebuilt by the encoded engine on demand) and of the summary graphs'
  saturations used by pruning.

Freshness is tracked by a per-entry version counter bumped on every
:meth:`CatalogEntry.add_triples` batch: a cached artifact tagged with an
older version is silently rebuilt on next access.

Concurrency
-----------
Entries are safe to share across threads.  Each entry carries two locks:

* ``rwlock`` — a :class:`~repro.utils.concurrency.ReadWriteLock` taken on
  the *read* side by :meth:`repro.service.service.QueryService.answer` for
  the whole guard-plus-evaluation span and on the *write* side by
  :meth:`CatalogEntry.add_triples`, so queries never observe a half-applied
  ingest and ingest never races a running join;
* an internal re-entrant init lock serializing the lazy, double-checked
  construction of summaries, statistics, planners and evaluators — several
  concurrent readers may race to build the same artifact, exactly one wins.

Durability
----------
A catalog opened through :meth:`GraphCatalog.open` is backed by a
:class:`repro.server.persistence.PersistentCatalog`: registrations and
every ``add_triples`` batch are written through atomically, and a restarted
process warm-starts each entry — store rows, dictionary, weak-summary maps,
cardinality statistics and cached summaries — with **zero** re-scan or
re-summarization (the ``build_counters`` of a warm entry stay at zero until
something genuinely new is requested).
"""

from __future__ import annotations

import threading
from collections.abc import MutableMapping
from time import perf_counter
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro import telemetry
from repro.core.builders import normalize_kind
from repro.core.encoded import encoded_summarize
from repro.core.incremental import IncrementalWeakSummarizer
from repro.core.summary import Summary
from repro.errors import DuplicateGraphError, UnknownGraphError
from repro.model.graph import RDFGraph
from repro.model.triple import Triple, TripleKind
from repro.model.dictionary import EncodedTriple
from repro.schema.encoded_saturation import IncrementalSaturator
from repro.schema.saturation import saturate_cached
from repro.service.evaluator import STRATEGIES, EncodedEvaluator
from repro.service.planner import QueryPlanner
from repro.service.statistics import CardinalityStatistics
from repro.store.base import TripleStore
from repro.store.memory import MemoryStore
from repro.utils.concurrency import ReadWriteLock

__all__ = ["CatalogEntry", "GraphCatalog"]


class BuildCounters(MutableMapping):
    """Per-entry build counters that double as ``catalog.build.*`` metrics.

    Behaves exactly like the plain dict it replaces — item access,
    ``counters[key] += 1``, iteration, ``dict(...)``, equality — while
    forwarding every increment to the process-wide
    ``catalog.build.<key>`` registry counter, so one bump keeps the
    per-entry view (the durability tests assert a warm-started entry stays
    all-zero) and the fleet-wide totals in step.
    """

    __slots__ = ("_values",)

    def __init__(self, keys: Iterable[str]):
        self._values: Dict[str, int] = {key: 0 for key in keys}

    def __getitem__(self, key: str) -> int:
        return self._values[key]

    def __setitem__(self, key: str, value: int) -> None:
        delta = value - self._values.get(key, 0)
        self._values[key] = value
        if delta > 0:
            telemetry.counter(f"catalog.build.{key}").inc(delta)

    def __delitem__(self, key: str) -> None:
        del self._values[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BuildCounters):
            return self._values == other._values
        return self._values == other

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __repr__(self):
        return f"BuildCounters({self._values})"


class _SaturatedState:
    """The maintained ``G∞`` serving cache of one catalog entry.

    Owns the :class:`IncrementalSaturator` (whose target is the saturated
    :class:`MemoryStore`), the saturated side's cardinality profile and
    planner — both updated *in place* by :meth:`CatalogEntry.add_triples`
    deltas, never version-invalidated — and one evaluator per join
    strategy.  ``metrics`` accumulates the maintenance costs the service
    and HTTP statistics endpoint expose.
    """

    __slots__ = ("saturator", "statistics", "planner", "evaluators", "metrics", "appended")

    def __init__(self, saturator: IncrementalSaturator):
        self.saturator = saturator
        self.statistics: Optional[CardinalityStatistics] = None
        self.planner: Optional[QueryPlanner] = None
        self.evaluators: Dict[str, EncodedEvaluator] = {}
        self.metrics: Dict[str, object] = {
            "build_seconds": 0.0,
            "deltas": 0,
            "last_delta_rows": 0,
            "last_delta_target_rows": 0,
            "last_delta_seconds": 0.0,
            "total_delta_seconds": 0.0,
        }
        #: Derived-log rows appended by the most recent ``add_triples``
        #: batch (``(kind_value, s, p, o)`` tuples) — what the persistent
        #: catalog's incremental checkpoint appends durably.
        self.appended: List[Tuple[str, int, int, int]] = []

    @property
    def store(self) -> TripleStore:
        return self.saturator.target


class CatalogEntry:
    """One registered graph: its store, evaluators, statistics and caches."""

    def __init__(
        self,
        name: str,
        store: TripleStore,
        loaded_rows: Optional[List[Tuple[TripleKind, EncodedTriple]]] = None,
        prime: Union[bool, str] = True,
    ):
        self.name = name
        self.store = store
        self.version = 0
        #: Set by :meth:`close` (drop / catalog shutdown); queries that
        #: acquire the read lock afterwards must treat the graph as gone.
        self.closed = False
        #: Per-entry reader/writer lock; see the module docstring for the
        #: acquisition discipline.
        self.rwlock = ReadWriteLock()
        self._init_lock = threading.RLock()
        #: Counters of the expensive (graph-proportional) builds this entry
        #: has performed.  A warm-started entry restored from a persistent
        #: catalog keeps all of them at zero through its first queries —
        #: the durability tests assert exactly that.
        self.build_counters: BuildCounters = BuildCounters(
            (
                "prime_scans",
                "statistics_scans",
                "summary_builds",
                "weak_snapshots",
                "saturation_builds",
                "saturated_statistics_scans",
            )
        )
        # shared registry instruments (one histogram for all entries)
        self._write_wait_seconds = telemetry.histogram("lock.write_wait.seconds")
        self._delta_seconds_histogram = telemetry.histogram("saturation.delta.seconds")
        #: Write-through hook ``(entry, inserted_rows) -> None`` installed by
        #: a persistence-backed catalog; invoked at the end of every
        #: successful :meth:`add_triples` batch, inside the write lock.
        self._on_update: Optional[Callable[["CatalogEntry", List], None]] = None
        #: Secondary update observers ``(entry, inserted_rows) -> None``
        #: run *after* the durable write-through, still inside the write
        #: lock — the cluster coordinator's delta broadcaster hangs here.
        #: A listener raising propagates to the ingesting caller (its
        #: bounded-queue backpressure is deliberate), so listeners must
        #: treat the batch as already durable.
        self._delta_listeners: List[Callable[["CatalogEntry", List], None]] = []
        #: ``True`` after a write-through failure: the in-memory entry holds
        #: rows the catalog file does not.  The next durable write must be a
        #: full rewrite — an incremental append would persist maintainer/
        #: statistics state that references the lost rows.
        self._persist_dirty = False
        self._maintainer = IncrementalWeakSummarizer(store)
        #: Per-kind summary cache (kind → (version, summary));
        #: guarded by self._init_lock — stale reads must re-check inside.
        self._summaries: Dict[str, Tuple[int, Summary]] = {}
        #: The maintained ``G∞`` serving cache — built on first saturated
        #: access (or materialized from a warm-start snapshot) and then
        #: kept fresh *in place* by :meth:`add_triples`; never
        #: version-invalidated.
        self._saturated: Optional[_SaturatedState] = None
        #: Warm-start saturation state (a saturator ``state_dict``) not yet
        #: materialized into a live target store; consumed by the first
        #: saturated access *or* the first ingest, whichever comes first.
        self._saturation_pending: Optional[Dict[str, object]] = None
        self._saturation_statistics_pending: Optional[CardinalityStatistics] = None
        self._statistics: Optional[Tuple[int, CardinalityStatistics]] = None
        self._planner: Optional[Tuple[int, QueryPlanner]] = None
        self._evaluators: Dict[str, EncodedEvaluator] = {}
        self.evaluator = self.evaluator_for("hash")
        #: ``True`` while a lazily-primed entry still owes its priming
        #: scan — the first summary/ingest access pays it (see
        #: :meth:`_ensure_primed`).
        self._prime_pending = prime == "lazy"
        if loaded_rows is not None:
            # the registering caller just inserted these rows and already
            # holds them encoded — skip the store re-scan
            self._prime_pending = False
            self._maintainer.ingest_rows(loaded_rows)
        elif prime is True:
            self._prime_from_store()

    @classmethod
    def restore(
        cls,
        name: str,
        store: TripleStore,
        version: int,
        maintainer_state: Dict[str, object],
        statistics: Optional[CardinalityStatistics] = None,
        summaries: Optional[Dict[str, Summary]] = None,
        saturation_state: Optional[Dict[str, object]] = None,
        saturation_statistics: Optional[CardinalityStatistics] = None,
    ) -> "CatalogEntry":
        """Warm-start an entry from persisted state (no priming scan).

        The store arrives already loaded; the weak-summary maps, the
        cardinality profile and any cached summaries are installed as-is at
        *version*, so the first query costs exactly what a long-running
        process would have paid — no re-scan, no re-summarization.  A
        persisted saturation state is kept *pending*: the first saturated
        access (or the first ingest) rehydrates the ``G∞`` store from the
        base rows plus the derived log, applying zero rules —
        ``build_counters["saturation_builds"]`` stays at zero.
        """
        entry = cls(name, store, prime=False)
        entry.version = version
        entry._maintainer.load_state(maintainer_state)
        if statistics is not None:
            entry._statistics = (version, statistics)
        for kind, summary in (summaries or {}).items():
            entry._summaries[normalize_kind(kind)] = (version, summary)
        entry._saturation_pending = saturation_state
        entry._saturation_statistics_pending = saturation_statistics
        return entry

    def _ensure_primed(self) -> None:
        """Pay a deferred priming scan before the maintainer is first used.

        A ``prime="lazy"`` entry (a cluster worker attaching a shared
        segment) acknowledges its load in O(1) and runs the O(rows) scan
        here, under the init lock, on the first summary snapshot, state
        export, or ingest."""
        if self._prime_pending:
            with self._init_lock:
                if self._prime_pending:
                    self._prime_pending = False
                    self._prime_from_store()

    def _prime_from_store(self) -> None:
        """Feed the weak-summary maintainer every row already in the store."""
        self.build_counters["prime_scans"] += 1
        for batch in self.store.scan_batches(TripleKind.DATA):
            for subject, prop, obj in batch:
                self._maintainer.ingest_data(subject, prop, obj)
        for batch in self.store.scan_batches(TripleKind.TYPE):
            for subject, _prop, class_id in batch:
                self._maintainer.ingest_type(subject, class_id)

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def add_triples(self, triples: Iterable[Triple]) -> int:
        """Encode and insert *triples*; maintain the weak summary online.

        Triples already present are skipped (on every backend — the store
        filters against its rows), so re-adding data neither duplicates
        SQLite rows nor invalidates caches.  The cardinality statistics are
        refreshed in the same breath as the summary caches: the freshly
        inserted rows are folded into the live profile (exact — the profile
        keeps distinct-id sets) and re-tagged with the new version, so the
        planner's estimates never lag an incremental ingest.  A live
        saturated store is likewise maintained **in place** — the batch is
        pushed through the delta rules (see :meth:`_maintain_saturated`),
        never rebuilt.  Every other cached artifact (non-weak summaries,
        pruning graphs, base-side plan caches) is invalidated by the
        version bump and rebuilt only when next requested.  Returns the
        number of rows actually inserted.

        The whole batch runs under the entry's exclusive write lock —
        concurrent queries wait, then observe either none or all of it —
        and, on a persistence-backed catalog, is checkpointed atomically
        before the lock is released.
        """
        # the acquisition is timed separately from the batch: it measures
        # queueing behind running queries, not ingest work
        wait_start = perf_counter()
        self.rwlock.acquire_write()
        self._write_wait_seconds.observe(perf_counter() - wait_start)
        try:
            if self.closed:
                # we raced a drop(): same report as the query-side race
                raise UnknownGraphError(f"graph {self.name!r} was dropped")
            self._rehydrate_pending_locked()
            rows = self.store.insert_triples(triples, skip_existing=True)
            return self._absorb_rows_locked(rows)
        finally:
            self.rwlock.release_write()

    def add_encoded_rows(
        self, rows: Iterable[Tuple[TripleKind, EncodedTriple]]
    ) -> int:
        """The encoded twin of :meth:`add_triples` — no Terms, no encoding.

        Inserts already-encoded ``(kind, row)`` pairs (ids must come from
        this store's dictionary) and runs the identical maintenance train:
        weak-summary delta, version bump, in-place statistics and ``G∞``
        maintenance, write-through, delta listeners.  Duplicates are
        filtered by the store exactly as on the Term path.  This is how a
        cluster worker applies a broadcast ingest delta: the coordinator
        already paid for encoding once and ships pure integers.
        """
        wait_start = perf_counter()
        self.rwlock.acquire_write()
        self._write_wait_seconds.observe(perf_counter() - wait_start)
        try:
            if self.closed:
                raise UnknownGraphError(f"graph {self.name!r} was dropped")
            self._rehydrate_pending_locked()
            fresh = self.store.insert_encoded_rows(rows, skip_existing=True)
            return self._absorb_rows_locked(fresh)
        finally:
            self.rwlock.release_write()

    def _rehydrate_pending_locked(self) -> None:
        """Materialize a warm-start ``G∞`` snapshot before the store grows.

        Runs under the write lock at the top of every ingest: rehydration
        sweeps the base store, and rows inserted first would enter the
        saturated store as plain rows, silently skipping their delta
        derivations.
        """
        if self._saturation_pending is not None:
            with self._init_lock:
                if self._saturation_pending is not None:
                    self._materialize_saturated()

    def _absorb_rows_locked(
        self, rows: List[Tuple[TripleKind, EncodedTriple]]
    ) -> int:
        """Post-insert maintenance shared by the Term and encoded ingest
        paths (write lock held): summary/statistics/saturation deltas,
        version bump, durable write-through, then the delta listeners."""
        if not rows:
            return 0
        with self._init_lock:
            self._ensure_primed()
            self._maintainer.ingest_rows(rows)
            self.version += 1
            if self._statistics is not None:
                statistics = self._statistics[1]
                statistics.ingest_rows(rows)
                self._statistics = (self.version, statistics)
            self._maintain_saturated(rows)
        if self._on_update is not None:
            self._on_update(self, rows)
        for listener in self._delta_listeners:
            listener(self, rows)
        return len(rows)

    def _maintain_saturated(self, rows: List[Tuple[TripleKind, EncodedTriple]]) -> None:
        """Fold an ingest batch into the maintained ``G∞`` (delta rules only).

        Runs under the write lock + init lock of :meth:`add_triples`
        (which materialized any pending warm-start state *before* the base
        insert, so the saturated side never lags the base store).  The
        delta is applied semi-naively and the saturated statistics profile
        — feeding the saturated planner's join-size estimates — is
        extended in place, so saturated evaluators, profiles and plan
        caches all survive the update.  No-op while ``G∞`` has never been
        requested.
        """
        if self._saturated is None:
            return
        state = self._saturated
        delta_start = perf_counter()
        log_mark = state.saturator.derived_count()
        delta = state.saturator.ingest_rows(rows)
        if state.statistics is not None:
            state.statistics.ingest_rows(delta)
        seconds = perf_counter() - delta_start
        state.appended = state.saturator.derived_since(log_mark)
        metrics = state.metrics
        metrics["deltas"] += 1
        metrics["last_delta_rows"] = len(rows)
        metrics["last_delta_target_rows"] = len(delta)
        metrics["last_delta_seconds"] = seconds
        metrics["total_delta_seconds"] += seconds
        self._delta_seconds_histogram.observe(seconds)
        telemetry.counter("saturation.deltas").inc()

    # ------------------------------------------------------------------
    # statistics, planning and evaluators
    # ------------------------------------------------------------------
    def statistics_index(self) -> CardinalityStatistics:
        """The store's cardinality profile, version-fresh.

        Built in one scan pass on first use; kept fresh *incrementally* by
        :meth:`add_triples` afterwards (never re-scanned).
        """
        cached = self._statistics
        if cached is not None and cached[0] == self.version:
            return cached[1]
        with self._init_lock:
            cached = self._statistics
            if cached is not None and cached[0] == self.version:
                return cached[1]
            self.build_counters["statistics_scans"] += 1
            statistics = CardinalityStatistics.from_store(self.store)
            self._statistics = (self.version, statistics)
            return statistics

    def planner(self) -> QueryPlanner:
        """The entry's query planner, rebuilt (with an empty plan cache)
        whenever the statistics version moves — cached plans can never
        carry stale estimates."""
        cached = self._planner
        if cached is not None and cached[0] == self.version:
            return cached[1]
        with self._init_lock:
            cached = self._planner
            if cached is not None and cached[0] == self.version:
                return cached[1]
            planner = QueryPlanner(self.statistics_index())
            self._planner = (self.version, planner)
            return planner

    def evaluator_for(self, strategy: str) -> EncodedEvaluator:
        """The entry's evaluator for *strategy* (one cached per strategy).

        Both strategies share the store; the hash evaluator additionally
        draws its plans from the entry's version-fresh planner.
        """
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r} (choose from {STRATEGIES})")
        evaluator = self._evaluators.get(strategy)
        if evaluator is not None:
            return evaluator
        with self._init_lock:
            evaluator = self._evaluators.get(strategy)
            if evaluator is None:
                evaluator = EncodedEvaluator(
                    self.store,
                    strategy=strategy,
                    statistics=self.statistics_index,
                    planner=self.planner,
                )
                self._evaluators[strategy] = evaluator
            return evaluator

    # ------------------------------------------------------------------
    # summaries and pruning graphs
    # ------------------------------------------------------------------
    def summary(self, kind: str = "weak") -> Summary:
        """The *kind* summary of the graph, served from cache when fresh.

        The weak summary is decoded from the live incremental maps — cost
        proportional to the summary, not the graph; the other kinds run the
        encoded engine over the store on first use after a change.
        """
        kind = normalize_kind(kind)
        # Optimistic fast path: a stale read is benign because the hit is
        # version-checked and the miss re-reads under the lock below.
        cached = self._summaries.get(kind)  # repro-lint: disable=guarded-by
        if cached is not None and cached[0] == self.version:
            return cached[1]
        with self._init_lock:
            cached = self._summaries.get(kind)
            if cached is not None and cached[0] == self.version:
                return cached[1]
            if kind == "weak":
                self._ensure_primed()
                self.build_counters["weak_snapshots"] += 1
                summary = self._maintainer.snapshot()
                summary.source_name = self.name
            else:
                self.build_counters["summary_builds"] += 1
                summary = encoded_summarize(self.store, kind, source_name=self.name)
            self._summaries[kind] = (self.version, summary)
            return summary

    def maintainer_state(self) -> Dict[str, object]:
        """The weak-summary maintainer's maps (see
        :meth:`IncrementalWeakSummarizer.state_dict`): pure-integer
        structures referencing live state — serialize before the entry is
        mutated again (the persistence layer runs under the entry's lock)."""
        self._ensure_primed()
        return self._maintainer.state_dict()

    def cached_statistics(self) -> Optional[CardinalityStatistics]:
        """The cardinality profile **iff** fresh at the current version
        (``None`` otherwise — never triggers the one-pass build)."""
        cached = self._statistics
        if cached is not None and cached[0] == self.version:
            return cached[1]
        return None

    def cached_summaries(self) -> Dict[str, Summary]:
        """The summaries cached *at the current version* (no builds)."""
        with self._init_lock:
            return {
                kind: cached[1]
                for kind, cached in self._summaries.items()
                if cached[0] == self.version
            }

    def cached_pruning_size(self, kind: str) -> Optional[int]:
        """Edge count of the *kind* summary graph **iff** it is cached at
        the current version — never triggers a build.

        The query service uses this to order a guard cascade by cost
        without forcing summaries into existence: an unbuilt summary's
        construction is exactly the cost the lazy cascade is designed to
        avoid paying until every cheaper guard has failed to prune.
        """
        # Lock-free cost probe: worst case a stale read makes the cascade
        # treat a just-built summary as unbuilt — an ordering heuristic
        # miss, never an incorrect answer.
        cached = self._summaries.get(  # repro-lint: disable=guarded-by
            normalize_kind(kind)
        )
        if cached is None or cached[0] != self.version:
            return None
        return len(cached[1].graph)

    def pruning_graph(self, kind: str = "weak", saturated: bool = False) -> RDFGraph:
        """The summary graph queries are checked against before evaluation.

        With ``saturated=True`` this is ``(H_G)∞`` (what Proposition 1
        quantifies over); the saturation is cached per summary object via
        :func:`saturate_cached`, and the summary object itself is cached per
        version, so repeated queries between updates saturate nothing.
        """
        graph = self.summary(kind).graph
        return saturate_cached(graph) if saturated else graph

    # ------------------------------------------------------------------
    # saturated evaluation support
    # ------------------------------------------------------------------
    def saturated_evaluator(self, strategy: str = "hash") -> EncodedEvaluator:
        """An evaluator over the *maintained* ``G∞`` store.

        The saturated side is a serving cache kept alive for the entry's
        lifetime: seeded once by :class:`IncrementalSaturator.build` (rule
        application over the whole encoded store — counted in
        ``build_counters["saturation_builds"]``, or rehydrated rule-free
        from a warm-start snapshot) and then maintained **in place** by
        every :meth:`add_triples` delta.  Evaluators, the saturated
        statistics profile and the planner's plan cache therefore survive
        updates instead of being version-invalidated — a
        ``strategy="nested"`` service really runs nested on the saturated
        path too.  Everything runs off the primary store's dictionary; the
        primary tables are never touched.
        """
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r} (choose from {STRATEGIES})")
        with self._init_lock:
            state = self._ensure_saturated()
            evaluator = state.evaluators.get(strategy)
            if evaluator is None:
                evaluator = EncodedEvaluator(
                    state.store,
                    strategy=strategy,
                    statistics=self._saturated_statistics,
                    planner=self._saturated_planner,
                )
                state.evaluators[strategy] = evaluator
            return evaluator

    def _ensure_saturated(self) -> _SaturatedState:
        """The live saturated state (build or rehydrate; init lock held)."""
        state = self._saturated
        if state is not None:
            return state
        if self._saturation_pending is not None:
            return self._materialize_saturated()
        self.build_counters["saturation_builds"] += 1
        build_start = perf_counter()
        saturator = IncrementalSaturator(self.store)
        saturator.build()
        state = _SaturatedState(saturator)
        state.metrics["build_seconds"] = perf_counter() - build_start
        self._saturated = state
        return state

    def _materialize_saturated(self) -> _SaturatedState:
        """Rehydrate the warm-start saturation snapshot (zero rules applied)."""
        saturator = IncrementalSaturator(self.store)
        saturator.load_state(self._saturation_pending)
        build_start = perf_counter()
        saturator.rehydrate()
        state = _SaturatedState(saturator)
        state.metrics["build_seconds"] = perf_counter() - build_start
        state.statistics = self._saturation_statistics_pending
        self._saturation_pending = None
        self._saturation_statistics_pending = None
        self._saturated = state
        return state

    def _saturated_statistics(self) -> CardinalityStatistics:
        """The saturated store's cardinality profile (lazy; then in-place).

        Built by one scan of the (memory-backed) saturated store on first
        planned saturated evaluation — unless a warm start restored it —
        and from then on extended row-by-row with each delta's derivations.
        """
        state = self._saturated
        if state is not None and state.statistics is not None:
            return state.statistics
        with self._init_lock:
            state = self._ensure_saturated()
            if state.statistics is None:
                self.build_counters["saturated_statistics_scans"] += 1
                state.statistics = CardinalityStatistics.from_store(state.store)
            return state.statistics

    def _saturated_planner(self) -> QueryPlanner:
        """The saturated side's planner — one for the entry's lifetime.

        Its plan cache is deliberately *not* flushed on ingest: the
        statistics object underneath is updated in place, so new plans see
        fresh estimates, while cached pattern orders stay valid (order
        affects cost, never answers).
        """
        state = self._saturated
        if state is not None and state.planner is not None:
            return state.planner
        with self._init_lock:
            state = self._ensure_saturated()
            if state.planner is None:
                state.planner = QueryPlanner(self._saturated_statistics())
            return state.planner

    # ------------------------------------------------------------------
    # saturation state exposure (persistence + metrics)
    # ------------------------------------------------------------------
    def saturation_state(self) -> Optional[Dict[str, object]]:
        """The saturator's durable state at the current version, or ``None``.

        Live state references the saturator's maps (serialize under the
        entry's lock, before the next ingest); a not-yet-materialized
        warm-start snapshot is returned as-is — it is only retained while
        no ingest has happened, so it is always current.  Reads the
        live/pending pair under the init lock: a concurrent reader may be
        mid-materialization (which clears the pending state while
        publishing the live one), and an unguarded read in that window
        would see *neither* — a checkpoint would then silently drop the
        durable ``G∞`` state.
        """
        with self._init_lock:
            if self._saturated is not None:
                return self._saturated.saturator.state_dict()
            return self._saturation_pending

    def saturation_cached_statistics(self) -> Optional[CardinalityStatistics]:
        """The saturated store's profile, when one exists (never builds)."""
        with self._init_lock:
            if self._saturated is not None:
                return self._saturated.statistics
            return self._saturation_statistics_pending

    def saturation_appended_rows(self) -> List[Tuple[str, int, int, int]]:
        """Derived-log rows appended by the most recent ingest batch."""
        state = self._saturated
        return state.appended if state is not None else []

    def saturation_metrics(self) -> Optional[Dict[str, object]]:
        """Maintenance metrics of the ``G∞`` cache (``None`` when unused).

        Exposed by the query service's explain output and by the HTTP
        statistics endpoint: what the saturated side cost to build, how
        many deltas it absorbed and what the last one took.  The
        live/pending pair is read under the init lock (see
        :meth:`saturation_state` for the materialization race).
        """
        with self._init_lock:
            state = self._saturated
            pending = self._saturation_pending
        if state is None:
            if pending is None:
                return None
            return {
                "live": False,
                "pending": True,
                "builds": self.build_counters["saturation_builds"],
                "derived_rows": len(pending["_derived"]),
            }
        metrics = dict(state.metrics)
        metrics.update(
            {
                "live": True,
                "pending": False,
                "builds": self.build_counters["saturation_builds"],
                "store_rows": state.store.statistics().total_rows,
                "derived_rows": state.saturator.derived_count(),
            }
        )
        return metrics

    # ------------------------------------------------------------------
    def to_graph(self) -> RDFGraph:
        """Decode the store back into an :class:`RDFGraph` (fresh object)."""
        return self.store.to_graph(name=self.name)

    def close(self) -> None:
        """Release the entry's stores and mark the entry dead.

        Readers queued on the lock while a :meth:`GraphCatalog.drop` closes
        the entry check :attr:`closed` once they get in, so a racing query
        reports an unknown graph instead of a closed-store error.
        """
        self.closed = True
        if self._saturated is not None:
            self._saturated.store.close()
            self._saturated = None
        self.store.close()

    def __repr__(self):
        statistics = self.store.statistics()
        return (
            f"<CatalogEntry {self.name!r}: {statistics.total_rows} rows, "
            f"version {self.version}>"
        )


class GraphCatalog:
    """A registry of named graphs behind the query service.

    Parameters
    ----------
    store_factory:
        Backend constructor used when :meth:`register` is handed a graph
        rather than a pre-loaded store (``MemoryStore`` by default; pass
        ``SQLiteStore`` for the relational backend).

    Registration, lookup and drop are thread-safe; per-entry query/update
    concurrency is governed by each entry's ``rwlock`` (see
    :class:`CatalogEntry`).  A catalog created through :meth:`open` writes
    every registration and ingest batch through to a persistent SQLite
    file and warm-starts from it on the next :meth:`open`.
    """

    def __init__(self, store_factory: Callable[[], TripleStore] = MemoryStore):
        self._store_factory = store_factory
        self._entries: Dict[str, CatalogEntry] = {}
        self._lock = threading.RLock()
        #: Names whose registration is in flight (reserved, heavy build
        #: running outside the lock).
        self._registering: set = set()
        self._persistence = None  # repro.server.persistence.PersistentCatalog

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        path: str,
        store_factory: Callable[[], TripleStore] = MemoryStore,
    ) -> "GraphCatalog":
        """Open (creating if absent) a persistent catalog at *path*.

        Every graph persisted in the file is warm-started: its store rows
        and dictionary are bulk-restored into a fresh *store_factory*
        backend, and the weak-summary maps, cardinality statistics and
        cached summaries are installed directly — zero re-scans, zero
        re-summarization (``entry.build_counters`` stay at zero).
        Registrations and ``add_triples`` batches on the returned catalog
        are checkpointed atomically as they happen; :meth:`checkpoint`
        forces a full rewrite (picking up summaries cached since).
        """
        from repro.server.persistence import PersistentCatalog

        catalog = cls(store_factory=store_factory)
        persistence = PersistentCatalog(path)
        catalog._persistence = persistence
        with catalog._lock:
            for name in persistence.graph_names():
                snapshot = persistence.load_graph(name, store_factory)
                entry = CatalogEntry.restore(
                    name=snapshot.name,
                    store=snapshot.store,
                    version=snapshot.version,
                    maintainer_state=snapshot.maintainer_state,
                    statistics=snapshot.statistics,
                    summaries=snapshot.summaries,
                    saturation_state=snapshot.saturation_state,
                    saturation_statistics=snapshot.saturation_statistics,
                )
                entry._on_update = catalog._persist_update
                catalog._entries[name] = entry
        return catalog

    @property
    def persistent(self) -> bool:
        """``True`` when the catalog writes through to a file."""
        return self._persistence is not None

    def checkpoint(self) -> None:
        """Force a full durable rewrite of every entry (no-op in memory).

        Write-through already keeps rows, dictionary, weak-summary maps and
        statistics durable on every update; a full checkpoint additionally
        captures summaries built (and cached) since the last write, so the
        next warm start serves them too.
        """
        persistence = self._persistence  # one read: close() may detach it
        if persistence is None:
            return
        with self._lock:
            entries = list(self._entries.values())
        for entry in entries:
            with entry.rwlock.read_locked():
                if entry.closed:
                    continue  # raced a drop(); must not resurrect it durably
                # make sure the weak summary (cheap: decoded from the live
                # incremental maps) and the cardinality profile ride along,
                # so the warm-started process rebuilds neither
                entry.summary("weak")
                entry.statistics_index()
                persistence.save_graph(entry)
                entry._persist_dirty = False  # full rewrite heals any divergence

    def _persist_update(self, entry: CatalogEntry, rows: List) -> None:
        """Write-through hook run by :meth:`CatalogEntry.add_triples`.

        A failed write-through (disk full, transient SQLite error) leaves
        the in-memory entry ahead of the file; the error propagates to the
        ingesting caller, and the entry is marked dirty so the next durable
        write is a **full rewrite** from the store — an incremental append
        after a lost batch would checkpoint maintainer/statistics state
        referencing rows the file never received, silently corrupting every
        later warm start.
        """
        persistence = self._persistence  # one read: close() may detach it
        if persistence is None:
            return
        try:
            if entry._persist_dirty:
                entry.summary("weak")
                persistence.save_graph(entry)
            else:
                persistence.append_update(entry, rows)
        except Exception:
            entry._persist_dirty = True
            raise
        entry._persist_dirty = False

    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        graph: Optional[RDFGraph] = None,
        store: Optional[TripleStore] = None,
        lazy_prime: bool = False,
    ) -> CatalogEntry:
        """Register a graph under *name* and return its entry.

        Exactly one of *graph* (loaded into a fresh backend) or *store* (an
        already-loaded :class:`TripleStore`, adopted as-is) must be given.
        Registering a name already in use raises
        :class:`~repro.errors.DuplicateGraphError` (a
        :class:`~repro.errors.CatalogError`) and leaves the existing entry
        untouched — nothing is loaded, closed or replaced.

        ``lazy_prime=True`` (``store=`` registrations on a non-persistent
        catalog only) defers the entry's O(rows) weak-summary priming scan
        to its first summary access or ingest — how a cluster worker
        acknowledges a shared-memory attach in O(1).
        """
        if (graph is None) == (store is None):
            raise ValueError("register() needs exactly one of graph= or store=")
        # reserve the name under the lock, but run the heavy part — loading,
        # summarizing, profiling, the durable write — outside it: a
        # multi-minute registration must not stall queries (entry lookups)
        # on every other graph
        with self._lock:
            if name in self._entries or name in self._registering:
                raise DuplicateGraphError(
                    f"graph {name!r} is already registered; drop() it first "
                    f"to replace it (the existing entry is untouched)"
                )
            self._registering.add(name)
        created_store = store is None
        entry: Optional[CatalogEntry] = None
        try:
            loaded_rows = None
            if store is None:
                store = self._store_factory()
                loaded_rows = store.insert_triples(graph)
            # a persistent catalog snapshots the summary right below, which
            # would pay the deferred scan immediately — keep it eager there
            prime = "lazy" if lazy_prime and self._persistence is None else True
            entry = CatalogEntry(name, store, loaded_rows=loaded_rows, prime=prime)
            if self._persistence is not None:
                entry._on_update = self._persist_update
                # build what a warm start must not: the weak snapshot and
                # the statistics profile are checkpointed alongside the rows
                entry.summary("weak")
                entry.statistics_index()
                self._persistence.save_graph(entry)
            with self._lock:
                self._entries[name] = entry
            return entry
        except BaseException:
            # a failed registration must not leak the backend we created
            # (an adopted store= stays open — the caller owns it)
            if created_store and store is not None:
                if entry is not None:
                    entry.close()
                else:
                    store.close()
            raise
        finally:
            with self._lock:
                self._registering.discard(name)

    def adopt_entry(self, entry: CatalogEntry) -> CatalogEntry:
        """Install an already-built *entry* under its own name.

        The warm-handoff twin of :meth:`register` for callers that
        constructed the entry themselves — typically via
        :meth:`CatalogEntry.restore` with maintainer state shipped from
        another process, so no priming scan runs here.  The catalog takes
        ownership exactly as for a registered entry (:meth:`drop` and
        :meth:`close` will close its store).  Raises
        :class:`~repro.errors.DuplicateGraphError` if the name is taken.
        """
        with self._lock:
            if entry.name in self._entries or entry.name in self._registering:
                raise DuplicateGraphError(
                    f"graph {entry.name!r} is already registered; drop() it "
                    f"first to replace it (the existing entry is untouched)"
                )
            self._entries[entry.name] = entry
        if self._persistence is not None:
            entry._on_update = self._persist_update
        return entry

    def entry(self, name: str) -> CatalogEntry:
        """The entry registered under *name*."""
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                known = ", ".join(sorted(self._entries)) or "none"
                raise UnknownGraphError(f"unknown graph {name!r} (registered: {known})")
            return entry

    def drop(self, name: str) -> None:
        """Unregister *name*, close its stores and forget it durably.

        The entry is closed under its exclusive lock **before** the durable
        delete: an in-flight ingest finishes (and checkpoints) first, a
        queued one sees ``closed`` and reports the graph gone — so a
        write-through can never resurrect the graph in the catalog file
        after it was deleted.
        """
        entry = self.entry(name)
        with entry.rwlock.write_locked():
            entry.close()
        with self._lock:
            if self._entries.get(name) is entry:
                del self._entries[name]
            if self._persistence is not None:
                self._persistence.delete_graph(name)

    def names(self) -> List[str]:
        """Registered graph names, sorted."""
        with self._lock:
            return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    # conveniences forwarding to the entry
    # ------------------------------------------------------------------
    def add_triples(self, name: str, triples: Iterable[Triple]) -> int:
        """Add triples to the named graph (see :meth:`CatalogEntry.add_triples`)."""
        return self.entry(name).add_triples(triples)

    def summary(self, name: str, kind: str = "weak") -> Summary:
        """The cached *kind* summary of the named graph."""
        return self.entry(name).summary(kind)

    def close(self) -> None:
        """Close every registered entry (and the persistence file).

        Each entry closes under its exclusive lock — the same discipline as
        :meth:`drop` — so in-flight queries finish cleanly and queued ones
        see ``closed`` instead of a half-closed store.
        """
        with self._lock:
            entries = list(self._entries.values())
            self._entries.clear()
        # quiesce the entries *before* detaching persistence: an in-flight
        # ingest holds its entry's write lock and must still find the
        # persistence attached when its write-through hook runs — detaching
        # first would make that hook a silent no-op and lose the batch
        for entry in entries:
            with entry.rwlock.write_locked():
                entry.close()
        with self._lock:
            persistence, self._persistence = self._persistence, None
        if persistence is not None:
            persistence.close()

    def __enter__(self) -> "GraphCatalog":
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.close()
        return False
