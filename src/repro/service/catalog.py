"""The :class:`GraphCatalog`: named graphs with cached encoded summaries.

The serving layer keeps each registered graph where the paper's prototype
keeps it — dictionary-encoded in a :class:`~repro.store.base.TripleStore` —
and maintains, per graph:

* an :class:`~repro.service.evaluator.EncodedEvaluator` joined directly on
  the store's integer rows;
* a live :class:`~repro.core.incremental.IncrementalWeakSummarizer` fed one
  encoded row per added triple, so the weak summary every query is guarded
  by stays fresh under updates at the cost of the paper's Algorithms 1-3,
  never a re-summarization;
* lazily built, version-invalidated caches of the other summary kinds
  (rebuilt by the encoded engine on demand) and of the summary graphs'
  saturations used by pruning.

Freshness is tracked by a per-entry version counter bumped on every
:meth:`CatalogEntry.add_triples` batch: a cached artifact tagged with an
older version is silently rebuilt on next access.

Concurrency
-----------
Entries are safe to share across threads.  Each entry carries two locks:

* ``rwlock`` — a :class:`~repro.utils.concurrency.ReadWriteLock` taken on
  the *read* side by :meth:`repro.service.service.QueryService.answer` for
  the whole guard-plus-evaluation span and on the *write* side by
  :meth:`CatalogEntry.add_triples`, so queries never observe a half-applied
  ingest and ingest never races a running join;
* an internal re-entrant init lock serializing the lazy, double-checked
  construction of summaries, statistics, planners and evaluators — several
  concurrent readers may race to build the same artifact, exactly one wins.

Durability
----------
A catalog opened through :meth:`GraphCatalog.open` is backed by a
:class:`repro.server.persistence.PersistentCatalog`: registrations and
every ``add_triples`` batch are written through atomically, and a restarted
process warm-starts each entry — store rows, dictionary, weak-summary maps,
cardinality statistics and cached summaries — with **zero** re-scan or
re-summarization (the ``build_counters`` of a warm entry stay at zero until
something genuinely new is requested).
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.builders import normalize_kind
from repro.core.encoded import encoded_summarize
from repro.core.incremental import IncrementalWeakSummarizer
from repro.core.summary import Summary
from repro.errors import DuplicateGraphError, UnknownGraphError
from repro.model.graph import RDFGraph
from repro.model.triple import Triple, TripleKind
from repro.model.dictionary import EncodedTriple
from repro.schema.saturation import saturate, saturate_cached
from repro.service.evaluator import STRATEGIES, EncodedEvaluator
from repro.service.planner import QueryPlanner
from repro.service.statistics import CardinalityStatistics
from repro.store.base import TripleStore
from repro.store.memory import MemoryStore
from repro.utils.concurrency import ReadWriteLock

__all__ = ["CatalogEntry", "GraphCatalog"]


class CatalogEntry:
    """One registered graph: its store, evaluators, statistics and caches."""

    def __init__(
        self,
        name: str,
        store: TripleStore,
        loaded_rows: Optional[List[Tuple[TripleKind, EncodedTriple]]] = None,
        prime: bool = True,
    ):
        self.name = name
        self.store = store
        self.version = 0
        #: Set by :meth:`close` (drop / catalog shutdown); queries that
        #: acquire the read lock afterwards must treat the graph as gone.
        self.closed = False
        #: Per-entry reader/writer lock; see the module docstring for the
        #: acquisition discipline.
        self.rwlock = ReadWriteLock()
        self._init_lock = threading.RLock()
        #: Counters of the expensive (graph-proportional) builds this entry
        #: has performed.  A warm-started entry restored from a persistent
        #: catalog keeps all of them at zero through its first queries —
        #: the durability tests assert exactly that.
        self.build_counters: Dict[str, int] = {
            "prime_scans": 0,
            "statistics_scans": 0,
            "summary_builds": 0,
            "weak_snapshots": 0,
        }
        #: Write-through hook ``(entry, inserted_rows) -> None`` installed by
        #: a persistence-backed catalog; invoked at the end of every
        #: successful :meth:`add_triples` batch, inside the write lock.
        self._on_update: Optional[Callable[["CatalogEntry", List], None]] = None
        #: ``True`` after a write-through failure: the in-memory entry holds
        #: rows the catalog file does not.  The next durable write must be a
        #: full rewrite — an incremental append would persist maintainer/
        #: statistics state that references the lost rows.
        self._persist_dirty = False
        self._maintainer = IncrementalWeakSummarizer(store)
        self._summaries: Dict[str, Tuple[int, Summary]] = {}
        self._saturated: Optional[Tuple[int, TripleStore, Dict[str, EncodedEvaluator]]] = None
        self._statistics: Optional[Tuple[int, CardinalityStatistics]] = None
        self._planner: Optional[Tuple[int, QueryPlanner]] = None
        self._evaluators: Dict[str, EncodedEvaluator] = {}
        self.evaluator = self.evaluator_for("hash")
        if loaded_rows is not None:
            # the registering caller just inserted these rows and already
            # holds them encoded — skip the store re-scan
            self._maintainer.ingest_rows(loaded_rows)
        elif prime:
            self._prime_from_store()

    @classmethod
    def restore(
        cls,
        name: str,
        store: TripleStore,
        version: int,
        maintainer_state: Dict[str, object],
        statistics: Optional[CardinalityStatistics] = None,
        summaries: Optional[Dict[str, Summary]] = None,
    ) -> "CatalogEntry":
        """Warm-start an entry from persisted state (no priming scan).

        The store arrives already loaded; the weak-summary maps, the
        cardinality profile and any cached summaries are installed as-is at
        *version*, so the first query costs exactly what a long-running
        process would have paid — no re-scan, no re-summarization.
        """
        entry = cls(name, store, prime=False)
        entry.version = version
        entry._maintainer.load_state(maintainer_state)
        if statistics is not None:
            entry._statistics = (version, statistics)
        for kind, summary in (summaries or {}).items():
            entry._summaries[normalize_kind(kind)] = (version, summary)
        return entry

    def _prime_from_store(self) -> None:
        """Feed the weak-summary maintainer every row already in the store."""
        self.build_counters["prime_scans"] += 1
        for batch in self.store.scan_batches(TripleKind.DATA):
            for subject, prop, obj in batch:
                self._maintainer.ingest_data(subject, prop, obj)
        for batch in self.store.scan_batches(TripleKind.TYPE):
            for subject, _prop, class_id in batch:
                self._maintainer.ingest_type(subject, class_id)

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def add_triples(self, triples: Iterable[Triple]) -> int:
        """Encode and insert *triples*; maintain the weak summary online.

        Triples already present are skipped (on every backend — the store
        filters against its rows), so re-adding data neither duplicates
        SQLite rows nor invalidates caches.  The cardinality statistics are
        refreshed in the same breath as the summary caches: the freshly
        inserted rows are folded into the live profile (exact — the profile
        keeps distinct-id sets) and re-tagged with the new version, so the
        planner's estimates never lag an incremental ingest.  Every other
        cached artifact (non-weak summaries, saturated stores, pruning
        graphs, plan caches) is invalidated by the version bump and rebuilt
        only when next requested.  Returns the number of rows actually
        inserted.

        The whole batch runs under the entry's exclusive write lock —
        concurrent queries wait, then observe either none or all of it —
        and, on a persistence-backed catalog, is checkpointed atomically
        before the lock is released.
        """
        with self.rwlock.write_locked():
            if self.closed:
                # we raced a drop(): same report as the query-side race
                raise UnknownGraphError(f"graph {self.name!r} was dropped")
            rows = self.store.insert_triples(triples, skip_existing=True)
            if not rows:
                return 0
            with self._init_lock:
                self._maintainer.ingest_rows(rows)
                self.version += 1
                if self._statistics is not None:
                    statistics = self._statistics[1]
                    statistics.ingest_rows(rows)
                    self._statistics = (self.version, statistics)
            if self._on_update is not None:
                self._on_update(self, rows)
            return len(rows)

    # ------------------------------------------------------------------
    # statistics, planning and evaluators
    # ------------------------------------------------------------------
    def statistics_index(self) -> CardinalityStatistics:
        """The store's cardinality profile, version-fresh.

        Built in one scan pass on first use; kept fresh *incrementally* by
        :meth:`add_triples` afterwards (never re-scanned).
        """
        cached = self._statistics
        if cached is not None and cached[0] == self.version:
            return cached[1]
        with self._init_lock:
            cached = self._statistics
            if cached is not None and cached[0] == self.version:
                return cached[1]
            self.build_counters["statistics_scans"] += 1
            statistics = CardinalityStatistics.from_store(self.store)
            self._statistics = (self.version, statistics)
            return statistics

    def planner(self) -> QueryPlanner:
        """The entry's query planner, rebuilt (with an empty plan cache)
        whenever the statistics version moves — cached plans can never
        carry stale estimates."""
        cached = self._planner
        if cached is not None and cached[0] == self.version:
            return cached[1]
        with self._init_lock:
            cached = self._planner
            if cached is not None and cached[0] == self.version:
                return cached[1]
            planner = QueryPlanner(self.statistics_index())
            self._planner = (self.version, planner)
            return planner

    def evaluator_for(self, strategy: str) -> EncodedEvaluator:
        """The entry's evaluator for *strategy* (one cached per strategy).

        Both strategies share the store; the hash evaluator additionally
        draws its plans from the entry's version-fresh planner.
        """
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r} (choose from {STRATEGIES})")
        evaluator = self._evaluators.get(strategy)
        if evaluator is not None:
            return evaluator
        with self._init_lock:
            evaluator = self._evaluators.get(strategy)
            if evaluator is None:
                evaluator = EncodedEvaluator(
                    self.store,
                    strategy=strategy,
                    statistics=self.statistics_index,
                    planner=self.planner,
                )
                self._evaluators[strategy] = evaluator
            return evaluator

    # ------------------------------------------------------------------
    # summaries and pruning graphs
    # ------------------------------------------------------------------
    def summary(self, kind: str = "weak") -> Summary:
        """The *kind* summary of the graph, served from cache when fresh.

        The weak summary is decoded from the live incremental maps — cost
        proportional to the summary, not the graph; the other kinds run the
        encoded engine over the store on first use after a change.
        """
        kind = normalize_kind(kind)
        cached = self._summaries.get(kind)
        if cached is not None and cached[0] == self.version:
            return cached[1]
        with self._init_lock:
            cached = self._summaries.get(kind)
            if cached is not None and cached[0] == self.version:
                return cached[1]
            if kind == "weak":
                self.build_counters["weak_snapshots"] += 1
                summary = self._maintainer.snapshot()
                summary.source_name = self.name
            else:
                self.build_counters["summary_builds"] += 1
                summary = encoded_summarize(self.store, kind, source_name=self.name)
            self._summaries[kind] = (self.version, summary)
            return summary

    def maintainer_state(self) -> Dict[str, object]:
        """The weak-summary maintainer's maps (see
        :meth:`IncrementalWeakSummarizer.state_dict`): pure-integer
        structures referencing live state — serialize before the entry is
        mutated again (the persistence layer runs under the entry's lock)."""
        return self._maintainer.state_dict()

    def cached_statistics(self) -> Optional[CardinalityStatistics]:
        """The cardinality profile **iff** fresh at the current version
        (``None`` otherwise — never triggers the one-pass build)."""
        cached = self._statistics
        if cached is not None and cached[0] == self.version:
            return cached[1]
        return None

    def cached_summaries(self) -> Dict[str, Summary]:
        """The summaries cached *at the current version* (no builds)."""
        with self._init_lock:
            return {
                kind: cached[1]
                for kind, cached in self._summaries.items()
                if cached[0] == self.version
            }

    def cached_pruning_size(self, kind: str) -> Optional[int]:
        """Edge count of the *kind* summary graph **iff** it is cached at
        the current version — never triggers a build.

        The query service uses this to order a guard cascade by cost
        without forcing summaries into existence: an unbuilt summary's
        construction is exactly the cost the lazy cascade is designed to
        avoid paying until every cheaper guard has failed to prune.
        """
        cached = self._summaries.get(normalize_kind(kind))
        if cached is None or cached[0] != self.version:
            return None
        return len(cached[1].graph)

    def pruning_graph(self, kind: str = "weak", saturated: bool = False) -> RDFGraph:
        """The summary graph queries are checked against before evaluation.

        With ``saturated=True`` this is ``(H_G)∞`` (what Proposition 1
        quantifies over); the saturation is cached per summary object via
        :func:`saturate_cached`, and the summary object itself is cached per
        version, so repeated queries between updates saturate nothing.
        """
        graph = self.summary(kind).graph
        return saturate_cached(graph) if saturated else graph

    # ------------------------------------------------------------------
    # saturated evaluation support
    # ------------------------------------------------------------------
    def saturated_evaluator(self, strategy: str = "hash") -> EncodedEvaluator:
        """An evaluator over ``G∞``, loaded into its own store and cached.

        Built on first use after a change: the store's triples are decoded,
        saturated, and re-encoded into a fresh in-memory store (the
        saturated side is a serving cache, always memory-backed).  One
        evaluator per join *strategy* is cached alongside, so statistics
        profiles and plan caches survive across queries between updates —
        and a ``strategy="nested"`` service really runs nested on the
        saturated path too.  This keeps complete (certain-answer)
        evaluation available without touching the primary store's tables.
        """
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r} (choose from {STRATEGIES})")
        with self._init_lock:
            cached = self._saturated
            if cached is None or cached[0] != self.version:
                # the stale store is dropped, not closed: evaluators handed out
                # before the update still wrap it and must keep working; the
                # memory is reclaimed when the last of them goes away
                saturated_graph = saturate(self.to_graph())
                store = MemoryStore()
                store.load_graph(saturated_graph)
                cached = (self.version, store, {})
                self._saturated = cached
            evaluators = cached[2]
            evaluator = evaluators.get(strategy)
            if evaluator is None:
                evaluator = EncodedEvaluator(cached[1], strategy=strategy)
                evaluators[strategy] = evaluator
            return evaluator

    # ------------------------------------------------------------------
    def to_graph(self) -> RDFGraph:
        """Decode the store back into an :class:`RDFGraph` (fresh object)."""
        return self.store.to_graph(name=self.name)

    def close(self) -> None:
        """Release the entry's stores and mark the entry dead.

        Readers queued on the lock while a :meth:`GraphCatalog.drop` closes
        the entry check :attr:`closed` once they get in, so a racing query
        reports an unknown graph instead of a closed-store error.
        """
        self.closed = True
        if self._saturated is not None:
            self._saturated[1].close()
            self._saturated = None
        self.store.close()

    def __repr__(self):
        statistics = self.store.statistics()
        return (
            f"<CatalogEntry {self.name!r}: {statistics.total_rows} rows, "
            f"version {self.version}>"
        )


class GraphCatalog:
    """A registry of named graphs behind the query service.

    Parameters
    ----------
    store_factory:
        Backend constructor used when :meth:`register` is handed a graph
        rather than a pre-loaded store (``MemoryStore`` by default; pass
        ``SQLiteStore`` for the relational backend).

    Registration, lookup and drop are thread-safe; per-entry query/update
    concurrency is governed by each entry's ``rwlock`` (see
    :class:`CatalogEntry`).  A catalog created through :meth:`open` writes
    every registration and ingest batch through to a persistent SQLite
    file and warm-starts from it on the next :meth:`open`.
    """

    def __init__(self, store_factory: Callable[[], TripleStore] = MemoryStore):
        self._store_factory = store_factory
        self._entries: Dict[str, CatalogEntry] = {}
        self._lock = threading.RLock()
        #: Names whose registration is in flight (reserved, heavy build
        #: running outside the lock).
        self._registering: set = set()
        self._persistence = None  # repro.server.persistence.PersistentCatalog

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        path: str,
        store_factory: Callable[[], TripleStore] = MemoryStore,
    ) -> "GraphCatalog":
        """Open (creating if absent) a persistent catalog at *path*.

        Every graph persisted in the file is warm-started: its store rows
        and dictionary are bulk-restored into a fresh *store_factory*
        backend, and the weak-summary maps, cardinality statistics and
        cached summaries are installed directly — zero re-scans, zero
        re-summarization (``entry.build_counters`` stay at zero).
        Registrations and ``add_triples`` batches on the returned catalog
        are checkpointed atomically as they happen; :meth:`checkpoint`
        forces a full rewrite (picking up summaries cached since).
        """
        from repro.server.persistence import PersistentCatalog

        catalog = cls(store_factory=store_factory)
        persistence = PersistentCatalog(path)
        catalog._persistence = persistence
        with catalog._lock:
            for name in persistence.graph_names():
                snapshot = persistence.load_graph(name, store_factory)
                entry = CatalogEntry.restore(
                    name=snapshot.name,
                    store=snapshot.store,
                    version=snapshot.version,
                    maintainer_state=snapshot.maintainer_state,
                    statistics=snapshot.statistics,
                    summaries=snapshot.summaries,
                )
                entry._on_update = catalog._persist_update
                catalog._entries[name] = entry
        return catalog

    @property
    def persistent(self) -> bool:
        """``True`` when the catalog writes through to a file."""
        return self._persistence is not None

    def checkpoint(self) -> None:
        """Force a full durable rewrite of every entry (no-op in memory).

        Write-through already keeps rows, dictionary, weak-summary maps and
        statistics durable on every update; a full checkpoint additionally
        captures summaries built (and cached) since the last write, so the
        next warm start serves them too.
        """
        persistence = self._persistence  # one read: close() may detach it
        if persistence is None:
            return
        with self._lock:
            entries = list(self._entries.values())
        for entry in entries:
            with entry.rwlock.read_locked():
                if entry.closed:
                    continue  # raced a drop(); must not resurrect it durably
                # make sure the weak summary (cheap: decoded from the live
                # incremental maps) and the cardinality profile ride along,
                # so the warm-started process rebuilds neither
                entry.summary("weak")
                entry.statistics_index()
                persistence.save_graph(entry)
                entry._persist_dirty = False  # full rewrite heals any divergence

    def _persist_update(self, entry: CatalogEntry, rows: List) -> None:
        """Write-through hook run by :meth:`CatalogEntry.add_triples`.

        A failed write-through (disk full, transient SQLite error) leaves
        the in-memory entry ahead of the file; the error propagates to the
        ingesting caller, and the entry is marked dirty so the next durable
        write is a **full rewrite** from the store — an incremental append
        after a lost batch would checkpoint maintainer/statistics state
        referencing rows the file never received, silently corrupting every
        later warm start.
        """
        persistence = self._persistence  # one read: close() may detach it
        if persistence is None:
            return
        try:
            if entry._persist_dirty:
                entry.summary("weak")
                persistence.save_graph(entry)
            else:
                persistence.append_update(entry, rows)
        except Exception:
            entry._persist_dirty = True
            raise
        entry._persist_dirty = False

    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        graph: Optional[RDFGraph] = None,
        store: Optional[TripleStore] = None,
    ) -> CatalogEntry:
        """Register a graph under *name* and return its entry.

        Exactly one of *graph* (loaded into a fresh backend) or *store* (an
        already-loaded :class:`TripleStore`, adopted as-is) must be given.
        Registering a name already in use raises
        :class:`~repro.errors.DuplicateGraphError` (a
        :class:`~repro.errors.CatalogError`) and leaves the existing entry
        untouched — nothing is loaded, closed or replaced.
        """
        if (graph is None) == (store is None):
            raise ValueError("register() needs exactly one of graph= or store=")
        # reserve the name under the lock, but run the heavy part — loading,
        # summarizing, profiling, the durable write — outside it: a
        # multi-minute registration must not stall queries (entry lookups)
        # on every other graph
        with self._lock:
            if name in self._entries or name in self._registering:
                raise DuplicateGraphError(
                    f"graph {name!r} is already registered; drop() it first "
                    f"to replace it (the existing entry is untouched)"
                )
            self._registering.add(name)
        created_store = store is None
        entry: Optional[CatalogEntry] = None
        try:
            loaded_rows = None
            if store is None:
                store = self._store_factory()
                loaded_rows = store.insert_triples(graph)
            entry = CatalogEntry(name, store, loaded_rows=loaded_rows)
            if self._persistence is not None:
                entry._on_update = self._persist_update
                # build what a warm start must not: the weak snapshot and
                # the statistics profile are checkpointed alongside the rows
                entry.summary("weak")
                entry.statistics_index()
                self._persistence.save_graph(entry)
            with self._lock:
                self._entries[name] = entry
            return entry
        except BaseException:
            # a failed registration must not leak the backend we created
            # (an adopted store= stays open — the caller owns it)
            if created_store and store is not None:
                if entry is not None:
                    entry.close()
                else:
                    store.close()
            raise
        finally:
            with self._lock:
                self._registering.discard(name)

    def entry(self, name: str) -> CatalogEntry:
        """The entry registered under *name*."""
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                known = ", ".join(sorted(self._entries)) or "none"
                raise UnknownGraphError(f"unknown graph {name!r} (registered: {known})")
            return entry

    def drop(self, name: str) -> None:
        """Unregister *name*, close its stores and forget it durably.

        The entry is closed under its exclusive lock **before** the durable
        delete: an in-flight ingest finishes (and checkpoints) first, a
        queued one sees ``closed`` and reports the graph gone — so a
        write-through can never resurrect the graph in the catalog file
        after it was deleted.
        """
        entry = self.entry(name)
        with entry.rwlock.write_locked():
            entry.close()
        with self._lock:
            if self._entries.get(name) is entry:
                del self._entries[name]
            if self._persistence is not None:
                self._persistence.delete_graph(name)

    def names(self) -> List[str]:
        """Registered graph names, sorted."""
        with self._lock:
            return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    # conveniences forwarding to the entry
    # ------------------------------------------------------------------
    def add_triples(self, name: str, triples: Iterable[Triple]) -> int:
        """Add triples to the named graph (see :meth:`CatalogEntry.add_triples`)."""
        return self.entry(name).add_triples(triples)

    def summary(self, name: str, kind: str = "weak") -> Summary:
        """The cached *kind* summary of the named graph."""
        return self.entry(name).summary(kind)

    def close(self) -> None:
        """Close every registered entry (and the persistence file).

        Each entry closes under its exclusive lock — the same discipline as
        :meth:`drop` — so in-flight queries finish cleanly and queued ones
        see ``closed`` instead of a half-closed store.
        """
        with self._lock:
            entries = list(self._entries.values())
            self._entries.clear()
        # quiesce the entries *before* detaching persistence: an in-flight
        # ingest holds its entry's write lock and must still find the
        # persistence attached when its write-through hook runs — detaching
        # first would make that hook a silent no-op and lose the batch
        for entry in entries:
            with entry.rwlock.write_locked():
                entry.close()
        with self._lock:
            persistence, self._persistence = self._persistence, None
        if persistence is not None:
            persistence.close()

    def __enter__(self) -> "GraphCatalog":
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.close()
        return False
