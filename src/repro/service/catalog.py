"""The :class:`GraphCatalog`: named graphs with cached encoded summaries.

The serving layer keeps each registered graph where the paper's prototype
keeps it — dictionary-encoded in a :class:`~repro.store.base.TripleStore` —
and maintains, per graph:

* an :class:`~repro.service.evaluator.EncodedEvaluator` joined directly on
  the store's integer rows;
* a live :class:`~repro.core.incremental.IncrementalWeakSummarizer` fed one
  encoded row per added triple, so the weak summary every query is guarded
  by stays fresh under updates at the cost of the paper's Algorithms 1-3,
  never a re-summarization;
* lazily built, version-invalidated caches of the other summary kinds
  (rebuilt by the encoded engine on demand) and of the summary graphs'
  saturations used by pruning.

Freshness is tracked by a per-entry version counter bumped on every
:meth:`CatalogEntry.add_triples` batch: a cached artifact tagged with an
older version is silently rebuilt on next access.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.builders import normalize_kind
from repro.core.encoded import encoded_summarize
from repro.core.incremental import IncrementalWeakSummarizer
from repro.core.summary import Summary
from repro.errors import DuplicateGraphError, UnknownGraphError
from repro.model.graph import RDFGraph
from repro.model.triple import Triple, TripleKind
from repro.model.dictionary import EncodedTriple
from repro.schema.saturation import saturate, saturate_cached
from repro.service.evaluator import STRATEGIES, EncodedEvaluator
from repro.service.planner import QueryPlanner
from repro.service.statistics import CardinalityStatistics
from repro.store.base import TripleStore
from repro.store.memory import MemoryStore

__all__ = ["CatalogEntry", "GraphCatalog"]


class CatalogEntry:
    """One registered graph: its store, evaluators, statistics and caches."""

    def __init__(
        self,
        name: str,
        store: TripleStore,
        loaded_rows: Optional[List[Tuple[TripleKind, EncodedTriple]]] = None,
    ):
        self.name = name
        self.store = store
        self.version = 0
        self._maintainer = IncrementalWeakSummarizer(store)
        self._summaries: Dict[str, Tuple[int, Summary]] = {}
        self._saturated: Optional[Tuple[int, TripleStore, Dict[str, EncodedEvaluator]]] = None
        self._statistics: Optional[Tuple[int, CardinalityStatistics]] = None
        self._planner: Optional[Tuple[int, QueryPlanner]] = None
        self._evaluators: Dict[str, EncodedEvaluator] = {}
        self.evaluator = self.evaluator_for("hash")
        if loaded_rows is not None:
            # the registering caller just inserted these rows and already
            # holds them encoded — skip the store re-scan
            self._maintainer.ingest_rows(loaded_rows)
        else:
            self._prime_from_store()

    def _prime_from_store(self) -> None:
        """Feed the weak-summary maintainer every row already in the store."""
        for batch in self.store.scan_batches(TripleKind.DATA):
            for subject, prop, obj in batch:
                self._maintainer.ingest_data(subject, prop, obj)
        for batch in self.store.scan_batches(TripleKind.TYPE):
            for subject, _prop, class_id in batch:
                self._maintainer.ingest_type(subject, class_id)

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def add_triples(self, triples: Iterable[Triple]) -> int:
        """Encode and insert *triples*; maintain the weak summary online.

        Triples already present are skipped (on every backend — the store
        filters against its rows), so re-adding data neither duplicates
        SQLite rows nor invalidates caches.  The cardinality statistics are
        refreshed in the same breath as the summary caches: the freshly
        inserted rows are folded into the live profile (exact — the profile
        keeps distinct-id sets) and re-tagged with the new version, so the
        planner's estimates never lag an incremental ingest.  Every other
        cached artifact (non-weak summaries, saturated stores, pruning
        graphs, plan caches) is invalidated by the version bump and rebuilt
        only when next requested.  Returns the number of rows actually
        inserted.
        """
        rows = self.store.insert_triples(triples, skip_existing=True)
        if not rows:
            return 0
        self._maintainer.ingest_rows(rows)
        self.version += 1
        if self._statistics is not None:
            statistics = self._statistics[1]
            statistics.ingest_rows(rows)
            self._statistics = (self.version, statistics)
        return len(rows)

    # ------------------------------------------------------------------
    # statistics, planning and evaluators
    # ------------------------------------------------------------------
    def statistics_index(self) -> CardinalityStatistics:
        """The store's cardinality profile, version-fresh.

        Built in one scan pass on first use; kept fresh *incrementally* by
        :meth:`add_triples` afterwards (never re-scanned).
        """
        cached = self._statistics
        if cached is not None and cached[0] == self.version:
            return cached[1]
        statistics = CardinalityStatistics.from_store(self.store)
        self._statistics = (self.version, statistics)
        return statistics

    def planner(self) -> QueryPlanner:
        """The entry's query planner, rebuilt (with an empty plan cache)
        whenever the statistics version moves — cached plans can never
        carry stale estimates."""
        cached = self._planner
        if cached is not None and cached[0] == self.version:
            return cached[1]
        planner = QueryPlanner(self.statistics_index())
        self._planner = (self.version, planner)
        return planner

    def evaluator_for(self, strategy: str) -> EncodedEvaluator:
        """The entry's evaluator for *strategy* (one cached per strategy).

        Both strategies share the store; the hash evaluator additionally
        draws its plans from the entry's version-fresh planner.
        """
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r} (choose from {STRATEGIES})")
        evaluator = self._evaluators.get(strategy)
        if evaluator is None:
            evaluator = EncodedEvaluator(
                self.store,
                strategy=strategy,
                statistics=self.statistics_index,
                planner=self.planner,
            )
            self._evaluators[strategy] = evaluator
        return evaluator

    # ------------------------------------------------------------------
    # summaries and pruning graphs
    # ------------------------------------------------------------------
    def summary(self, kind: str = "weak") -> Summary:
        """The *kind* summary of the graph, served from cache when fresh.

        The weak summary is decoded from the live incremental maps — cost
        proportional to the summary, not the graph; the other kinds run the
        encoded engine over the store on first use after a change.
        """
        kind = normalize_kind(kind)
        cached = self._summaries.get(kind)
        if cached is not None and cached[0] == self.version:
            return cached[1]
        if kind == "weak":
            summary = self._maintainer.snapshot()
            summary.source_name = self.name
        else:
            summary = encoded_summarize(self.store, kind, source_name=self.name)
        self._summaries[kind] = (self.version, summary)
        return summary

    def cached_pruning_size(self, kind: str) -> Optional[int]:
        """Edge count of the *kind* summary graph **iff** it is cached at
        the current version — never triggers a build.

        The query service uses this to order a guard cascade by cost
        without forcing summaries into existence: an unbuilt summary's
        construction is exactly the cost the lazy cascade is designed to
        avoid paying until every cheaper guard has failed to prune.
        """
        cached = self._summaries.get(normalize_kind(kind))
        if cached is None or cached[0] != self.version:
            return None
        return len(cached[1].graph)

    def pruning_graph(self, kind: str = "weak", saturated: bool = False) -> RDFGraph:
        """The summary graph queries are checked against before evaluation.

        With ``saturated=True`` this is ``(H_G)∞`` (what Proposition 1
        quantifies over); the saturation is cached per summary object via
        :func:`saturate_cached`, and the summary object itself is cached per
        version, so repeated queries between updates saturate nothing.
        """
        graph = self.summary(kind).graph
        return saturate_cached(graph) if saturated else graph

    # ------------------------------------------------------------------
    # saturated evaluation support
    # ------------------------------------------------------------------
    def saturated_evaluator(self, strategy: str = "hash") -> EncodedEvaluator:
        """An evaluator over ``G∞``, loaded into its own store and cached.

        Built on first use after a change: the store's triples are decoded,
        saturated, and re-encoded into a fresh in-memory store (the
        saturated side is a serving cache, always memory-backed).  One
        evaluator per join *strategy* is cached alongside, so statistics
        profiles and plan caches survive across queries between updates —
        and a ``strategy="nested"`` service really runs nested on the
        saturated path too.  This keeps complete (certain-answer)
        evaluation available without touching the primary store's tables.
        """
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r} (choose from {STRATEGIES})")
        cached = self._saturated
        if cached is None or cached[0] != self.version:
            # the stale store is dropped, not closed: evaluators handed out
            # before the update still wrap it and must keep working; the
            # memory is reclaimed when the last of them goes away
            saturated_graph = saturate(self.to_graph())
            store = MemoryStore()
            store.load_graph(saturated_graph)
            cached = (self.version, store, {})
            self._saturated = cached
        evaluators = cached[2]
        evaluator = evaluators.get(strategy)
        if evaluator is None:
            evaluator = EncodedEvaluator(cached[1], strategy=strategy)
            evaluators[strategy] = evaluator
        return evaluator

    # ------------------------------------------------------------------
    def to_graph(self) -> RDFGraph:
        """Decode the store back into an :class:`RDFGraph` (fresh object)."""
        return self.store.to_graph(name=self.name)

    def close(self) -> None:
        """Release the entry's stores."""
        if self._saturated is not None:
            self._saturated[1].close()
            self._saturated = None
        self.store.close()

    def __repr__(self):
        statistics = self.store.statistics()
        return (
            f"<CatalogEntry {self.name!r}: {statistics.total_rows} rows, "
            f"version {self.version}>"
        )


class GraphCatalog:
    """A registry of named graphs behind the query service.

    Parameters
    ----------
    store_factory:
        Backend constructor used when :meth:`register` is handed a graph
        rather than a pre-loaded store (``MemoryStore`` by default; pass
        ``SQLiteStore`` for the relational backend).
    """

    def __init__(self, store_factory: Callable[[], TripleStore] = MemoryStore):
        self._store_factory = store_factory
        self._entries: Dict[str, CatalogEntry] = {}

    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        graph: Optional[RDFGraph] = None,
        store: Optional[TripleStore] = None,
    ) -> CatalogEntry:
        """Register a graph under *name* and return its entry.

        Exactly one of *graph* (loaded into a fresh backend) or *store* (an
        already-loaded :class:`TripleStore`, adopted as-is) must be given.
        """
        if name in self._entries:
            raise DuplicateGraphError(f"graph {name!r} is already registered")
        if (graph is None) == (store is None):
            raise ValueError("register() needs exactly one of graph= or store=")
        loaded_rows = None
        if store is None:
            store = self._store_factory()
            loaded_rows = store.insert_triples(graph)
        entry = CatalogEntry(name, store, loaded_rows=loaded_rows)
        self._entries[name] = entry
        return entry

    def entry(self, name: str) -> CatalogEntry:
        """The entry registered under *name*."""
        entry = self._entries.get(name)
        if entry is None:
            known = ", ".join(sorted(self._entries)) or "none"
            raise UnknownGraphError(f"unknown graph {name!r} (registered: {known})")
        return entry

    def drop(self, name: str) -> None:
        """Unregister *name* and close its stores."""
        self.entry(name).close()
        del self._entries[name]

    def names(self) -> List[str]:
        """Registered graph names, sorted."""
        return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # conveniences forwarding to the entry
    # ------------------------------------------------------------------
    def add_triples(self, name: str, triples: Iterable[Triple]) -> int:
        """Add triples to the named graph (see :meth:`CatalogEntry.add_triples`)."""
        return self.entry(name).add_triples(triples)

    def summary(self, name: str, kind: str = "weak") -> Summary:
        """The cached *kind* summary of the named graph."""
        return self.entry(name).summary(kind)

    def close(self) -> None:
        """Close every registered entry."""
        for entry in self._entries.values():
            entry.close()
        self._entries.clear()

    def __enter__(self) -> "GraphCatalog":
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.close()
        return False
