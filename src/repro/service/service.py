"""The :class:`QueryService`: summary-guarded query answering.

Proposition 1 makes summaries *representative*: an RBGP query with answers
on ``G∞`` has answers on the summary's saturation.  The contrapositive is a
server-side guard — if the (tiny) summary rejects the query, the (huge)
graph certainly has no answer and base evaluation is skipped entirely.  The
service runs that guard in front of every eligible query:

1. **dictionary miss** — a constant the store never saw compiles to an
   instant empty answer (no summary, no rows);
2. **summary miss** — the query has no embedding on the (possibly
   saturated) summary graph; the base graph is provably answer-free;
3. **base evaluation** — only queries surviving both guards reach the
   encoded evaluator on the full store.

Soundness of step 2 rests on the quotient homomorphism: every embedding of
an RBGP query into ``G`` composes with ``rd`` into an embedding into
``H_G`` (and, saturated, on Proposition 1), so a summary miss can never
hide a real answer.  The guard therefore only fires for queries where the
argument applies: RBGP queries (Definition 3) without schema-property
patterns, on the well-behaved graphs the paper assumes.  Everything else —
constants in node positions, variable properties, schema lookups — skips
straight to step 3 and is answered exactly, just without the shortcut.
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from time import perf_counter
from typing import Dict, Optional, Sequence, Set, Tuple, Union

from repro import telemetry
from repro.core.builders import normalize_kind
from repro.errors import UnknownGraphError
from repro.model.namespaces import is_schema_property
from repro.utils.concurrency import named_lock
from repro.model.terms import Term
from repro.queries.bgp import BGPQuery
from repro.queries.evaluation import has_answers
from repro.service.catalog import GraphCatalog
from repro.service.evaluator import STRATEGIES
from repro.service.planner import ExecutionTrace
from repro.telemetry import Counter, QueryTrace

__all__ = ["QueryAnswer", "QueryService", "ServiceStatistics"]


class QueryAnswer:
    """The outcome of one :meth:`QueryService.answer` call."""

    __slots__ = (
        "query",
        "graph_name",
        "kind",
        "answers",
        "pruned",
        "prunable",
        "guard_seconds",
        "evaluation_seconds",
        "strategy",
        "guard_order",
        "pruned_by",
        "trace",
        "saturation",
        "cluster",
        "query_trace",
    )

    def __init__(
        self,
        query: BGPQuery,
        graph_name: str,
        kind: str,
        answers: Set[Tuple[Term, ...]],
        pruned: bool,
        prunable: bool,
        guard_seconds: float,
        evaluation_seconds: float,
        strategy: str = "hash",
        guard_order: Tuple[str, ...] = (),
        pruned_by: Optional[str] = None,
        trace: Optional[ExecutionTrace] = None,
        saturation: Optional[Dict[str, object]] = None,
        cluster: Optional[Dict[str, object]] = None,
        query_trace: Optional[QueryTrace] = None,
    ):
        self.query = query
        self.graph_name = graph_name
        self.kind = kind
        self.answers = answers
        #: ``True`` when the summary (or dictionary) guard proved the query
        #: empty and base evaluation was skipped.
        self.pruned = pruned
        #: ``True`` when the query was eligible for the summary guard at all.
        self.prunable = prunable
        self.guard_seconds = guard_seconds
        self.evaluation_seconds = evaluation_seconds
        #: Join strategy of the base evaluation (``hash`` or ``nested``).
        self.strategy = strategy
        #: The guard kinds in the order actually checked (cheapest summary
        #: first); empty when the query was not prunable.
        self.guard_order = guard_order
        #: The guard kind whose summary rejected the query, when pruned by
        #: the cascade (``None`` otherwise).
        self.pruned_by = pruned_by
        #: Execution trace of the base evaluation (``explain=True`` only).
        self.trace = trace
        #: Maintenance metrics of the graph's ``G∞`` serving cache — build
        #: and per-ingest delta latencies (``explain=True`` on a
        #: ``saturated=True`` answer only; see
        #: :meth:`CatalogEntry.saturation_metrics`).
        self.saturation = saturation
        #: Scatter-gather execution metadata attached by the cluster
        #: coordinator (``None`` for in-process answers): routing mode,
        #: worker/shard attribution, retry count.  Purely observational —
        #: the answer set is what it would be in-process.
        self.cluster = cluster
        #: The telemetry span tree of this query (``trace=True`` only): a
        #: :class:`~repro.telemetry.QueryTrace` whose id crossed every
        #: process boundary the query did.
        self.query_trace = query_trace

    @property
    def empty(self) -> bool:
        """``True`` when the query has no answer."""
        return not self.answers

    @property
    def total_seconds(self) -> float:
        return self.guard_seconds + self.evaluation_seconds

    def __repr__(self):
        state = "pruned" if self.pruned else f"{len(self.answers)} answers"
        return f"<QueryAnswer {self.query.name or 'query'!s} on {self.graph_name!r}: {state}>"


class ServiceStatistics:
    """Running counters of a :class:`QueryService` (per-query pruning/timing).

    Updates are lock-protected: the concurrent executor records answers
    from many threads, and unsynchronized ``+=`` on attributes loses
    increments even under the GIL.

    Each count is a private telemetry :class:`~repro.telemetry.Counter`
    whose parent is the process-wide registry family (``query.count``,
    ``query.guard.pruned``, …): the per-instance view stays exact — the
    ``/graphs/<name>/statistics`` payload and the tests read it — while the
    same ``inc()`` advances the shared metric, so there is no parallel
    bookkeeping to drift.  :meth:`record` also feeds the registry latency
    histograms and, when the answer crossed the threshold, the process
    slow-query log.
    """

    __slots__ = (
        "_queries",
        "_pruned",
        "_evaluated",
        "_unprunable",
        "_guard_seconds",
        "_evaluation_seconds",
        "pruned_by_kind",
        "_pruned_by_counters",
        "_guard_histogram",
        "_evaluation_histogram",
        "_total_histogram",
        "_slow_log",
        "_lock",
    )

    def __init__(self):
        self._queries = Counter("queries", parent=telemetry.counter("query.count"))
        self._pruned = Counter("pruned", parent=telemetry.counter("query.guard.pruned"))
        self._evaluated = Counter(
            "evaluated", parent=telemetry.counter("query.evaluated")
        )
        self._unprunable = Counter(
            "unprunable", parent=telemetry.counter("query.unprunable")
        )
        # the registry-side second totals live in the histograms' sums
        self._guard_seconds = Counter("guard_seconds")
        self._evaluation_seconds = Counter("evaluation_seconds")
        #: Pruning attribution: guard kind → queries it rejected.
        #: guarded by self._lock
        self.pruned_by_kind: Dict[str, int] = {}
        #: Lazily-created per-kind registry children; guarded by self._lock
        self._pruned_by_counters: Dict[str, Counter] = {}
        self._guard_histogram = telemetry.histogram("query.guard.seconds")
        self._evaluation_histogram = telemetry.histogram("query.evaluation.seconds")
        self._total_histogram = telemetry.histogram("query.total.seconds")
        self._slow_log = telemetry.SLOW_LOG if telemetry.enabled() else None
        self._lock = named_lock("service.statistics_lock")

    def record(self, answer: QueryAnswer) -> None:
        with self._lock:
            self._queries.inc()
            if answer.pruned:
                self._pruned.inc()
                if answer.pruned_by is not None:
                    self.pruned_by_kind[answer.pruned_by] = (
                        self.pruned_by_kind.get(answer.pruned_by, 0) + 1
                    )
                    by_kind = self._pruned_by_counters.get(answer.pruned_by)
                    if by_kind is None:
                        by_kind = telemetry.counter(
                            f"query.guard.pruned.{answer.pruned_by}"
                        )
                        self._pruned_by_counters[answer.pruned_by] = by_kind
                    by_kind.inc()
            else:
                self._evaluated.inc()
            if not answer.prunable:
                self._unprunable.inc()
            self._guard_seconds.inc(answer.guard_seconds)
            self._evaluation_seconds.inc(answer.evaluation_seconds)
        self._guard_histogram.observe(answer.guard_seconds)
        self._evaluation_histogram.observe(answer.evaluation_seconds)
        self._total_histogram.observe(answer.total_seconds)
        slow_log = self._slow_log
        if slow_log is not None and answer.total_seconds >= slow_log.threshold_seconds:
            slow_log.record(
                total_seconds=answer.total_seconds,
                graph=answer.graph_name,
                query=str(answer.query.name or "query"),
                sparql=answer.query.to_sparql(),
                guard_seconds=answer.guard_seconds,
                evaluation_seconds=answer.evaluation_seconds,
                pruned=answer.pruned,
                strategy=answer.strategy,
                answer_count=len(answer.answers),
                trace_id=(
                    answer.query_trace.trace_id
                    if answer.query_trace is not None
                    else None
                ),
            )

    # ------------------------------------------------------------------
    # the public counts: thin integer/float views over the counters, so
    # existing callers (tests, /graphs statistics, benchmarks) see the
    # exact per-instance numbers they always did
    @property
    def queries(self) -> int:
        return self._queries.int_value

    @property
    def pruned(self) -> int:
        return self._pruned.int_value

    @property
    def evaluated(self) -> int:
        return self._evaluated.int_value

    @property
    def unprunable(self) -> int:
        return self._unprunable.int_value

    @property
    def guard_seconds(self) -> float:
        return self._guard_seconds.value

    @property
    def evaluation_seconds(self) -> float:
        return self._evaluation_seconds.value

    @property
    def pruning_rate(self) -> float:
        """Fraction of queries the guard answered without base evaluation."""
        queries = self.queries
        return self.pruned / queries if queries else 0.0

    def as_dict(self) -> Dict[str, object]:
        with self._lock:
            pruned_by_kind = dict(self.pruned_by_kind)
        return {
            "queries": self.queries,
            "pruned": self.pruned,
            "evaluated": self.evaluated,
            "unprunable": self.unprunable,
            "pruning_rate": self.pruning_rate,
            "guard_seconds": self.guard_seconds,
            "evaluation_seconds": self.evaluation_seconds,
            "pruned_by_kind": pruned_by_kind,
        }

    def __repr__(self):
        return (
            f"ServiceStatistics(queries={self.queries}, pruned={self.pruned}, "
            f"evaluated={self.evaluated})"
        )


def _guard_applies(query: BGPQuery) -> bool:
    """Whether the summary guard is sound for *query*.

    RBGP membership gives the homomorphism/Proposition-1 argument; the extra
    schema-pattern exclusion keeps the guard conservative on inputs that
    violate the paper's well-behavedness assumption (a schema pattern's
    join variable could name a class node that also carries data edges
    there).
    """
    if not query.is_rbgp():
        return False
    return all(not is_schema_property(pattern.predicate) for pattern in query.patterns)


def _maybe_span(query_trace: Optional[QueryTrace], name: str, **attributes):
    """A trace span when tracing, an inert context otherwise."""
    if query_trace is None:
        return nullcontext()
    return query_trace.span(name, **attributes)


class QueryService:
    """Answers BGP queries over catalog graphs, summary guard first.

    Parameters
    ----------
    catalog:
        The :class:`GraphCatalog` holding the registered graphs.
    kind:
        Summary kind(s) used for the guard: one of the five names, a
        ``"+"``-joined cascade such as ``"weak+strong"``, or a sequence of
        names.  A cascade checks the summaries in order and prunes on the
        first rejection — each kind is a sound over-approximation on its
        own, so any rejection proves emptiness, and a sharper (larger)
        summary behind a coarser (smaller) one catches joins the coarser
        one over-merges while keeping the common case one tiny check.
    prune:
        ``False`` disables the summary guard entirely — every query runs
        base evaluation.  The dictionary-miss fast path stays on (it is part
        of compilation, not of the guard).
    strategy:
        Join strategy of base evaluation: ``"hash"`` (statistics-planned,
        vectorized — the default) or ``"nested"`` (the legacy per-binding
        index-nested-loop, kept for A/B comparison).
    order_guards:
        With ``True`` (default) the guard cascade is re-ordered per query,
        cheapest first: cached summaries by ascending size, the
        incrementally-maintained weak summary counted as cheap, and
        not-yet-built summaries last in declared order (built only when
        every cheaper guard failed to prune).  ``False`` keeps the
        declared order.
    """

    def __init__(
        self,
        catalog: GraphCatalog,
        kind: Union[str, Sequence[str]] = "weak",
        prune: bool = True,
        strategy: str = "hash",
        order_guards: bool = True,
    ):
        self.catalog = catalog
        if isinstance(kind, str):
            parts = [part.strip() for part in kind.split("+") if part.strip()]
        else:
            parts = list(kind)
        self.kinds: Tuple[str, ...] = tuple(normalize_kind(part) for part in parts)
        if not self.kinds:
            raise ValueError("the guard needs at least one summary kind")
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r} (choose from {STRATEGIES})")
        self.kind = "+".join(self.kinds)
        self.prune = prune
        self.strategy = strategy
        self.order_guards = order_guards
        self.statistics = ServiceStatistics()
        self._read_wait_seconds = telemetry.histogram("lock.read_wait.seconds")

    # ------------------------------------------------------------------
    def _guard_cascade(self, entry) -> Tuple[str, ...]:
        """The guard kinds in checking order for one query.

        Cheapest-first, **without building anything**: kinds whose summary
        is already cached at the current version sort by summary size (a
        summary a tenth the size answers the common rejected case ten
        times cheaper); the weak summary counts as cheap even when not yet
        snapshotted (it is maintained incrementally — cost proportional to
        the summary, never the graph); every other unbuilt kind keeps its
        declared position *after* the cached ones, so an expensive summary
        is only constructed when every cheaper guard failed to prune —
        the lazy escalation a cascade exists for.  Every kind alone is a
        sound rejector, so order never affects verdicts, only cost.  For
        saturated guards the plain summary sizes serve as the cost proxy
        (a saturation grows each summary by roughly the same factor).
        """
        if not self.order_guards or len(self.kinds) == 1:
            return self.kinds

        def cost_key(indexed: Tuple[int, str]) -> Tuple[int, int, int]:
            index, guard_kind = indexed
            size = entry.cached_pruning_size(guard_kind)
            if size is not None:
                return (0, size, index)
            if guard_kind == "weak":
                return (0, 0, index)
            return (1, 0, index)

        return tuple(kind for _i, kind in sorted(enumerate(self.kinds), key=cost_key))

    # ------------------------------------------------------------------
    def answer(
        self,
        graph_name: str,
        query: BGPQuery,
        limit: Optional[int] = None,
        saturated: bool = False,
        explain: bool = False,
        trace: Union[bool, QueryTrace] = False,
    ) -> QueryAnswer:
        """Answer *query* on the named graph, guard first.

        With ``saturated=True`` answers are computed over ``G∞`` (certain
        answers, the paper's query semantics) and the guard checks the
        summary's saturation as Proposition 1 requires; the default answers
        over the explicit triples, guarded by the plain summary.  With
        ``explain=True`` the returned answer carries the base evaluation's
        :class:`ExecutionTrace` (plan, estimated vs. actual cardinalities,
        probes) alongside the guard decisions.  With ``trace=True`` (or an
        existing :class:`~repro.telemetry.QueryTrace` to record into — how
        a cluster worker continues the coordinator's trace id) the answer
        carries a telemetry span tree timing the guard cascade and the
        base evaluation.
        """
        entry = self.catalog.entry(graph_name)
        query_trace: Optional[QueryTrace] = None
        if trace:
            query_trace = trace if isinstance(trace, QueryTrace) else QueryTrace()

        # the whole guard-plus-evaluation span holds the entry's shared
        # (read) lock: concurrent queries overlap freely, while an ingest
        # (the exclusive side) can never interleave with a running join or
        # leave the guard checking a summary newer than the store it
        # protects.  The lock is non-reentrant — nothing below may call
        # back into answer() or add_triples().  The acquisition itself is
        # timed separately: it measures queueing behind an ingest, not
        # query work.
        wait_start = perf_counter()
        entry.rwlock.acquire_read()
        self._read_wait_seconds.observe(perf_counter() - wait_start)
        try:
            if entry.closed:
                # we raced a drop(): the write lock closed the entry while
                # we were queued — the graph is gone, report it as such
                raise UnknownGraphError(f"graph {graph_name!r} was dropped")
            prunable = self.prune and _guard_applies(query)

            guard_start = perf_counter()
            pruned = False
            pruned_by: Optional[str] = None
            guard_order: Tuple[str, ...] = ()
            with _maybe_span(query_trace, "guard") as guard_span:
                if prunable:
                    guard_order = self._guard_cascade(entry)
                    for guard_kind in guard_order:
                        pruning_graph = entry.pruning_graph(guard_kind, saturated=saturated)
                        if not has_answers(pruning_graph, query):
                            pruned = True
                            pruned_by = guard_kind
                            break
                if guard_span is not None:
                    guard_span.attributes.update(
                        prunable=prunable,
                        pruned=pruned,
                        order=list(guard_order),
                        pruned_by=pruned_by,
                    )
            guard_seconds = perf_counter() - guard_start

            answers: Set[Tuple[Term, ...]] = set()
            evaluation_seconds = 0.0
            execution_trace: Optional[ExecutionTrace] = ExecutionTrace() if explain else None
            if not pruned:
                if saturated:
                    evaluator = entry.saturated_evaluator(self.strategy)
                else:
                    evaluator = entry.evaluator_for(self.strategy)
                evaluation_start = perf_counter()
                with _maybe_span(
                    query_trace, "evaluate", strategy=self.strategy
                ) as evaluate_span:
                    answers = evaluator.evaluate(query, limit=limit, trace=execution_trace)
                    if evaluate_span is not None:
                        evaluate_span.attributes["answers"] = len(answers)
                evaluation_seconds = perf_counter() - evaluation_start
            # the G∞ maintenance costs behind this answer (still under the
            # read lock: an ingest cannot change the metrics mid-gather)
            saturation = entry.saturation_metrics() if saturated and explain else None
        finally:
            entry.rwlock.release_read()

        if query_trace is not None:
            query_trace.annotate(graph=graph_name, kind=self.kind)
            query_trace.finish(guard_seconds + evaluation_seconds)
        result = QueryAnswer(
            query=query,
            graph_name=graph_name,
            kind=self.kind,
            answers=answers,
            pruned=pruned,
            prunable=prunable,
            guard_seconds=guard_seconds,
            evaluation_seconds=evaluation_seconds,
            strategy=self.strategy,
            guard_order=guard_order,
            pruned_by=pruned_by,
            trace=execution_trace,
            saturation=saturation,
            query_trace=query_trace,
        )
        self.statistics.record(result)
        return result

    def has_answers(self, graph_name: str, query: BGPQuery, saturated: bool = False) -> bool:
        """Boolean form of :meth:`answer` (stops at the first embedding)."""
        return not self.answer(graph_name, query, limit=1, saturated=saturated).empty
