"""Workload generation and the guarded-vs-direct comparison driver.

The service's value proposition is measured on *mixed* workloads: a share
of satisfiable RBGP queries (sampled from the graph, so they have answers)
and a share of unsatisfiable ones.  Unsatisfiable queries come in two
flavours with very different costs:

* **structurally unsatisfiable** — every constant exists in the graph but
  the join is empty: two properties that never meet on a node, or a class
  none of a property's subjects belongs to.  Direct evaluation pays real
  join work (enumerate one side, probe the other) to discover this; the
  summary guard answers from a graph a few dozen edges large.  These are
  built *unsatisfiable by construction* from one indexing pass over the
  graph — disjoint endpoint sets prove emptiness — so generation never
  evaluates a join.
* **dictionary misses** — a constant the graph never mentions.  Both the
  guarded and the direct encoded path reject these in microseconds, so
  they are kept a minority (they don't differentiate the systems).

:func:`run_workload` drives a service over a workload and checks every
verdict against the generation-time ground truth — the pruning-soundness
property the paper guarantees.  :func:`compare_guarded_vs_direct` times the
same workload through the guarded service and through direct per-query
evaluation on the base store, verifying the two agree query by query; it is
the engine behind ``repro query --workload`` and
``benchmarks/bench_query_service.py``.
"""

from __future__ import annotations

import gc
import random
from collections import Counter
from contextlib import contextmanager
from time import perf_counter
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.model.graph import RDFGraph
from repro.model.namespaces import Namespace, RDF_TYPE
from repro.model.terms import URI
from repro.queries.bgp import BGPQuery, TriplePattern, Variable
from repro.queries.evaluation import iter_embeddings
from repro.queries.generator import RBGPQueryGenerator
from repro.service.catalog import GraphCatalog
from repro.service.evaluator import EncodedEvaluator
from repro.service.service import QueryAnswer, QueryService
from repro.store.memory import MemoryStore
from repro.store.sqlite import SQLiteStore

__all__ = [
    "WorkloadQuery",
    "FamilyQuery",
    "WorkloadReport",
    "ComparisonReport",
    "generate_mixed_workload",
    "generate_join_workload",
    "run_workload",
    "compare_guarded_vs_direct",
    "run_strategy_comparison",
]

#: Namespace used for dictionary-miss (absent-constant) queries.
_ABSENT_NS = Namespace("http://rdfsummary.example.org/absent/")


@contextmanager
def _gc_paused():
    """Pause the cyclic collector across a timed region.

    Both comparison drivers allocate large transient binding structures;
    attributing a collection pause to whichever query happens to trigger
    it would swamp the per-query numbers.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


class WorkloadQuery(NamedTuple):
    """A query plus its generation-time ground truth on the base graph."""

    query: BGPQuery
    #: ``True`` when the query has at least one answer on the explicit graph.
    satisfiable: bool


def _unsatisfiable_candidates(
    graph: RDFGraph, rng: random.Random
) -> List[Tuple[str, BGPQuery]]:
    """Structurally empty RBGP joins, proven empty by disjoint endpoint sets.

    One pass over the data and type components collects, per property, its
    subject and object sets and, per class, its instance set.  Three query
    shapes follow — all of them expensive for a direct evaluator (it must
    enumerate one pattern's matches and probe each) and all provably empty:

    * *chain* — ``?x p1 ?y . ?y p2 ?z`` where ``objects(p1)`` and
      ``subjects(p2)`` are disjoint;
    * *fork* — ``?x p1 ?y . ?x p2 ?z`` where the subject sets are disjoint;
    * *typed* — ``?x a C . ?x p ?y`` where no subject of ``p`` is a
      ``C`` instance;
    * *long chain* — ``?w p0 ?x . ?x p1 ?y . ?y p2 ?z`` prepending, to a
      disjoint ``(p1, p2)`` pair, a ``p0`` whose objects *do* feed ``p1``:
      direct evaluation must enumerate the whole non-empty ``p0 ⋈ p1``
      prefix before discovering that no result survives ``p2``.

    Candidates are shuffled with *rng*, then stably ordered by descending
    driver cardinality (the number of matches direct evaluation must
    enumerate before concluding emptiness): the front of the list is the
    traffic where a summary guard pays off most, which is what the mixed
    workload should stress.
    """
    subjects_of: Dict[URI, set] = {}
    objects_of: Dict[URI, set] = {}
    for triple in graph.data_triples:
        subjects_of.setdefault(triple.predicate, set()).add(triple.subject)
        objects_of.setdefault(triple.predicate, set()).add(triple.object)
    instances_of: Dict[URI, set] = {}
    for triple in graph.type_triples:
        if isinstance(triple.object, URI):
            instances_of.setdefault(triple.object, set()).add(triple.subject)

    variable_w = Variable("w")
    variable_x, variable_y, variable_z = Variable("x"), Variable("y"), Variable("z")
    properties = sorted(subjects_of)
    candidates: List[Tuple[int, str, BGPQuery]] = []
    for first in properties:
        driver_cost = len(subjects_of[first])
        # the heaviest feeder into `first` makes the long chain's non-empty
        # prefix join as expensive as the graph allows
        feeder = max(
            (p for p in properties if p != first and (objects_of[p] & subjects_of[first])),
            key=lambda p: len(subjects_of[p]),
            default=None,
        )
        for second in properties:
            if first == second:
                continue
            if not (objects_of[first] & subjects_of[second]):
                candidates.append(
                    (
                        driver_cost,
                        "unsat_chain",
                        BGPQuery(
                            [
                                TriplePattern(variable_x, first, variable_y),
                                TriplePattern(variable_y, second, variable_z),
                            ],
                            head=(variable_x, variable_z),
                        ),
                    )
                )
                if feeder is not None:
                    candidates.append(
                        (
                            len(subjects_of[feeder]) + driver_cost,
                            "unsat_long_chain",
                            BGPQuery(
                                [
                                    TriplePattern(variable_w, feeder, variable_x),
                                    TriplePattern(variable_x, first, variable_y),
                                    TriplePattern(variable_y, second, variable_z),
                                ],
                                head=(variable_w,),
                            ),
                        )
                    )
            if first < second and not (subjects_of[first] & subjects_of[second]):
                candidates.append(
                    (
                        driver_cost,
                        "unsat_fork",
                        BGPQuery(
                            [
                                TriplePattern(variable_x, first, variable_y),
                                TriplePattern(variable_x, second, variable_z),
                            ],
                            head=(variable_x,),
                        ),
                    )
                )
    for class_uri, instances in sorted(instances_of.items()):
        for prop in properties:
            if not (instances & subjects_of[prop]):
                candidates.append(
                    (
                        len(instances),
                        "unsat_typed",
                        BGPQuery(
                            [
                                TriplePattern(variable_x, RDF_TYPE, class_uri),
                                TriplePattern(variable_x, prop, variable_y),
                            ],
                            head=(variable_x,),
                        ),
                    )
                )
    rng.shuffle(candidates)
    candidates.sort(key=lambda item: -item[0])
    return [(family, query) for _cost, family, query in candidates]


def _cheap_under_budget(
    graph: RDFGraph, query: BGPQuery, answer_limit: Optional[int], budget: int
) -> bool:
    """Whether *query* is served within *budget* embeddings.

    A query passes when it either enumerates completely within the budget,
    or — when the service caps answers at *answer_limit* — reaches that many
    distinct head projections first.  Queries failing both are the hub-join
    pathologies that would dominate any workload they appear in.
    """
    distinct = set()
    count = 0
    for bindings in iter_embeddings(graph, query):
        count += 1
        if count > budget:
            return False
        if answer_limit is not None:
            distinct.add(tuple(bindings[variable] for variable in query.head))
            if len(distinct) >= answer_limit:
                return True
    return True


def generate_mixed_workload(
    graph: RDFGraph,
    count: int = 40,
    unsatisfiable_fraction: float = 0.5,
    size: int = 2,
    seed: int = 0,
    dictionary_miss_fraction: float = 0.1,
    max_embeddings: Optional[int] = 20_000,
    answer_limit: Optional[int] = None,
) -> List[WorkloadQuery]:
    """A reproducible mixed RBGP workload with per-query ground truth.

    ``unsatisfiable_fraction`` of the *count* queries are empty on *graph*
    (guaranteed at generation time); of those, ``dictionary_miss_fraction``
    use an absent constant and the rest are structurally unsatisfiable
    joins over existing properties.  Satisfiable queries are kept only when
    they evaluate within *max_embeddings* join steps — completely, or up to
    *answer_limit* distinct answers when the workload is meant to be served
    with a limit (pass ``max_embeddings=None`` to keep everything).  The
    result is shuffled with the same seed, so identical parameters yield
    the identical workload.
    """
    if not 0.0 <= unsatisfiable_fraction <= 1.0:
        raise ValueError("unsatisfiable_fraction must be within [0, 1]")
    rng = random.Random(seed)
    unsat_target = round(count * unsatisfiable_fraction)
    sat_target = count - unsat_target

    generator = RBGPQueryGenerator(graph, seed=seed)
    workload: List[WorkloadQuery] = []
    attempts = 0
    while len(workload) < sat_target and attempts < sat_target * 20 + 10:
        attempts += 1
        query = generator.generate(size=size)
        if query is None:
            break
        if max_embeddings is not None and not _cheap_under_budget(
            graph, query, answer_limit, max_embeddings
        ):
            continue
        query.name = f"sat_{len(workload)}"
        workload.append(WorkloadQuery(query, True))

    if len(workload) < sat_target and unsatisfiable_fraction < 1.0:
        # satisfiable generation fell short (tiny graph, or every sample
        # blew the embedding budget): shrink the unsatisfiable quota to
        # keep the requested composition instead of silently skewing the
        # workload toward unsatisfiable queries
        unsat_target = round(
            len(workload) * unsatisfiable_fraction / (1.0 - unsatisfiable_fraction)
        )

    miss_target = round(unsat_target * dictionary_miss_fraction)
    produced = 0
    for _family, candidate in _unsatisfiable_candidates(graph, rng):
        if produced >= unsat_target - miss_target:
            break
        candidate.name = f"unsat_{produced}"
        workload.append(WorkloadQuery(candidate, False))
        produced += 1
    # dictionary misses (plus a fallback when structural mutation could not
    # reach the target, e.g. on graphs with a single property)
    miss_index = 0
    while produced < unsat_target:
        variable_x, variable_y = Variable("x"), Variable("y")
        query = BGPQuery(
            [TriplePattern(variable_x, _ABSENT_NS.term(f"p{seed}_{miss_index}"), variable_y)],
            head=(variable_x,),
            name=f"unsat_miss_{miss_index}",
        )
        workload.append(WorkloadQuery(query, False))
        produced += 1
        miss_index += 1

    rng.shuffle(workload)
    return workload


class FamilyQuery(NamedTuple):
    """A query tagged with its structural family and ground truth."""

    query: BGPQuery
    #: Family label: ``sat_chain`` / ``sat_fork`` / ``sat_long_chain`` for
    #: satisfiable multi-joins, the ``unsat_*`` shapes of
    #: :func:`_unsatisfiable_candidates`, or ``dictionary_miss``.
    family: str
    satisfiable: bool


def generate_join_workload(
    graph: RDFGraph,
    per_family: int = 6,
    seed: int = 0,
    max_join_size: int = 50_000,
) -> List[FamilyQuery]:
    """A family-labelled join workload for strategy A/B comparison.

    The *satisfiable* families are the join shapes where execution strategy
    matters most — every query enumerates a real, non-empty join:

    * ``sat_chain`` — ``?x p1 ?y . ?y p2 ?z`` with ``objects(p1)`` meeting
      ``subjects(p2)``;
    * ``sat_fork`` — ``?x p1 ?y . ?x p2 ?z`` with overlapping subjects;
    * ``sat_long_chain`` — a three-pattern chain over two meeting pairs.

    Exact embedding counts are computed at generation time from per-property
    endpoint multisets (no join is ever evaluated), candidates are kept when
    ``1 <= embeddings <= max_join_size``, and within each family the largest
    joins — the heaviest per-binding probe traffic for a nested-loop
    evaluator — come first.  The ``unsat_*`` families of
    :func:`_unsatisfiable_candidates` and a few dictionary misses ride along
    so a comparison also covers the traffic the guard usually absorbs.
    """
    rng = random.Random(seed)
    subject_counts: Dict[URI, Counter] = {}
    object_counts: Dict[URI, Counter] = {}
    edges_of: Dict[URI, List[Tuple[object, object]]] = {}
    for triple in graph.data_triples:
        subject_counts.setdefault(triple.predicate, Counter())[triple.subject] += 1
        object_counts.setdefault(triple.predicate, Counter())[triple.object] += 1
        edges_of.setdefault(triple.predicate, []).append((triple.subject, triple.object))
    properties = sorted(subject_counts)

    variable_w = Variable("w")
    variable_x, variable_y, variable_z = Variable("x"), Variable("y"), Variable("z")

    def chain_size(first: URI, second: URI) -> int:
        firsts, seconds = object_counts[first], subject_counts[second]
        if len(firsts) > len(seconds):
            firsts, seconds = seconds, firsts
        return sum(count * seconds[node] for node, count in firsts.items() if node in seconds)

    def fork_size(first: URI, second: URI) -> int:
        firsts, seconds = subject_counts[first], subject_counts[second]
        if len(firsts) > len(seconds):
            firsts, seconds = seconds, firsts
        return sum(count * seconds[node] for node, count in firsts.items() if node in seconds)

    chains: List[Tuple[int, BGPQuery, Tuple[URI, URI]]] = []
    forks: List[Tuple[int, BGPQuery, Tuple[URI, URI]]] = []
    for first in properties:
        for second in properties:
            if first != second:
                size = chain_size(first, second)
                if 1 <= size <= max_join_size:
                    chains.append(
                        (
                            size,
                            BGPQuery(
                                [
                                    TriplePattern(variable_x, first, variable_y),
                                    TriplePattern(variable_y, second, variable_z),
                                ],
                                head=(variable_x, variable_z),
                            ),
                            (first, second),
                        )
                    )
            if first < second:
                size = fork_size(first, second)
                if 1 <= size <= max_join_size:
                    forks.append(
                        (
                            size,
                            BGPQuery(
                                [
                                    TriplePattern(variable_x, first, variable_y),
                                    TriplePattern(variable_x, second, variable_z),
                                ],
                                head=(variable_y, variable_z),
                            ),
                            (first, second),
                        )
                    )
    chains.sort(key=lambda item: -item[0])
    forks.sort(key=lambda item: -item[0])

    long_chains: List[Tuple[int, BGPQuery]] = []
    for _size, _query, (first, second) in chains[: per_family * 4]:
        for feeder in properties:
            if feeder in (first, second):
                continue
            feeder_objects = object_counts[feeder]
            second_subjects = subject_counts[second]
            size = sum(
                feeder_objects[edge_subject] * second_subjects[edge_object]
                for edge_subject, edge_object in edges_of[first]
                if edge_subject in feeder_objects and edge_object in second_subjects
            )
            if 1 <= size <= max_join_size:
                long_chains.append(
                    (
                        size,
                        BGPQuery(
                            [
                                TriplePattern(variable_w, feeder, variable_x),
                                TriplePattern(variable_x, first, variable_y),
                                TriplePattern(variable_y, second, variable_z),
                            ],
                            head=(variable_w, variable_z),
                        ),
                    )
                )
    long_chains.sort(key=lambda item: -item[0])

    workload: List[FamilyQuery] = []

    def take(family: str, ranked: List[Tuple], query_position: int) -> None:
        for index, item in enumerate(ranked[:per_family]):
            query = item[query_position]
            query.name = f"{family}_{index}"
            workload.append(FamilyQuery(query, family, family.startswith("sat")))

    take("sat_chain", chains, 1)
    take("sat_fork", forks, 1)
    take("sat_long_chain", long_chains, 1)

    unsat_per_family: Dict[str, int] = {}
    for family, query in _unsatisfiable_candidates(graph, rng):
        produced = unsat_per_family.get(family, 0)
        if produced >= per_family:
            continue
        query.name = f"{family}_{produced}"
        unsat_per_family[family] = produced + 1
        workload.append(FamilyQuery(query, family, False))
    for index in range(min(per_family, 3)):
        query = BGPQuery(
            [TriplePattern(variable_x, _ABSENT_NS.term(f"p{seed}_{index}"), variable_y)],
            head=(variable_x,),
            name=f"dictionary_miss_{index}",
        )
        workload.append(FamilyQuery(query, "dictionary_miss", False))
    return workload


def run_strategy_comparison(
    graph: RDFGraph,
    per_family: int = 6,
    seed: int = 0,
    backend: str = "memory",
    max_join_size: int = 50_000,
    answer_limit: Optional[int] = None,
    repeat: int = 3,
) -> Dict[str, object]:
    """Time the nested-loop, hash-join and merge-join strategies against each other.

    One store (``backend`` is ``"memory"`` or ``"sqlite"``) is loaded with
    *graph*; every query of :func:`generate_join_workload` is evaluated by
    an ``strategy="nested"``, an ``strategy="hash"`` and an
    ``strategy="merge"`` :class:`EncodedEvaluator` over that same store
    (on backends without sorted posting runs the merge side degrades to
    the hash fetch per stage), and the answer sets are compared exactly.  Each query is timed ``repeat`` times per
    strategy and the best round counts, with the cyclic garbage collector
    paused across the measured region — both join strategies allocate large
    transient binding structures, and attributing a collection pause to
    whichever query happens to trigger it would swamp the per-family
    numbers.  The returned JSON-friendly report aggregates wall time and
    answer differences per family, plus a ``satisfiable_join`` aggregate
    over the ``sat_*`` families — the traffic where join strategy, not
    pruning, is the whole story.  The hash side's one-off statistics build
    is timed separately (``statistics_seconds``) and excluded from
    per-query time, matching a serving layer that profiles a store once at
    registration.
    """
    if repeat <= 0:
        raise ValueError("repeat must be positive")
    if backend == "memory":
        store = MemoryStore()
    elif backend == "sqlite":
        store = SQLiteStore()
    else:
        raise ValueError(f"unknown backend {backend!r} (choose memory or sqlite)")
    store.load_graph(graph)
    workload = generate_join_workload(
        graph, per_family=per_family, seed=seed, max_join_size=max_join_size
    )

    nested = EncodedEvaluator(store, strategy="nested")
    hashed = EncodedEvaluator(store, strategy="hash")
    statistics_start = perf_counter()
    statistics = hashed.statistics()
    statistics_seconds = perf_counter() - statistics_start
    # the merge side shares the hash side's profile and plan cache — the
    # comparison is about the per-stage join algorithm, nothing else
    merged = EncodedEvaluator(store, strategy="merge", statistics=statistics, planner=hashed.planner())

    families: Dict[str, Dict[str, object]] = {}
    differences = 0
    try:
        with _gc_paused():
            for item in workload:
                bucket = families.setdefault(
                    item.family,
                    {
                        "queries": 0,
                        "nested_seconds": 0.0,
                        "hash_seconds": 0.0,
                        "merge_seconds": 0.0,
                        "answer_differences": 0,
                    },
                )
                nested_seconds = hash_seconds = merge_seconds = float("inf")
                nested_answers = hash_answers = merge_answers = None
                for _round in range(repeat):
                    start = perf_counter()
                    nested_answers = nested.evaluate(item.query, limit=answer_limit)
                    nested_seconds = min(nested_seconds, perf_counter() - start)
                    start = perf_counter()
                    hash_answers = hashed.evaluate(item.query, limit=answer_limit)
                    hash_seconds = min(hash_seconds, perf_counter() - start)
                    start = perf_counter()
                    merge_answers = merged.evaluate(item.query, limit=answer_limit)
                    merge_seconds = min(merge_seconds, perf_counter() - start)
                bucket["queries"] += 1
                bucket["nested_seconds"] += nested_seconds
                bucket["hash_seconds"] += hash_seconds
                bucket["merge_seconds"] += merge_seconds
                if answer_limit is None and not (
                    nested_answers == hash_answers == merge_answers
                ):
                    bucket["answer_differences"] += 1
                    differences += 1
                elif answer_limit is not None:
                    # under a limit all sides may legally truncate
                    # differently; emptiness must still agree exactly
                    if not (bool(nested_answers) == bool(hash_answers) == bool(merge_answers)):
                        bucket["answer_differences"] += 1
                        differences += 1
    finally:
        store.close()

    def aggregate(names: Sequence[str]) -> Dict[str, object]:
        rows = [families[name] for name in names if name in families]
        nested_seconds = sum(row["nested_seconds"] for row in rows)
        hash_seconds = sum(row["hash_seconds"] for row in rows)
        merge_seconds = sum(row["merge_seconds"] for row in rows)
        return {
            "queries": sum(row["queries"] for row in rows),
            "nested_seconds": nested_seconds,
            "hash_seconds": hash_seconds,
            "merge_seconds": merge_seconds,
            "speedup": (nested_seconds / hash_seconds) if hash_seconds > 0 else float("inf"),
            "merge_vs_hash": (hash_seconds / merge_seconds) if merge_seconds > 0 else float("inf"),
        }

    for bucket in families.values():
        bucket["speedup"] = (
            bucket["nested_seconds"] / bucket["hash_seconds"]
            if bucket["hash_seconds"] > 0
            else float("inf")
        )
        bucket["merge_vs_hash"] = (
            bucket["hash_seconds"] / bucket["merge_seconds"]
            if bucket["merge_seconds"] > 0
            else float("inf")
        )
    satisfiable_families = sorted(name for name in families if name.startswith("sat"))
    return {
        "graph": graph.name or "graph",
        "triples": len(graph),
        "backend": backend,
        "queries": len(workload),
        "statistics_seconds": statistics_seconds,
        "families": families,
        "satisfiable_join": aggregate(satisfiable_families),
        "overall": aggregate(sorted(families)),
        "answer_differences": differences,
        "sound": differences == 0,
    }


class WorkloadReport:
    """Outcome of running one workload through a :class:`QueryService`."""

    def __init__(
        self,
        results: List[Tuple[WorkloadQuery, QueryAnswer]],
        total_seconds: float,
        check_ground_truth: bool = True,
    ):
        self.results = results
        self.total_seconds = total_seconds
        #: Queries whose service verdict contradicts the ground truth.  A
        #: satisfiable query answered empty would be a *pruning error* — the
        #: unsoundness the paper's Proposition 1 rules out.  Empty when the
        #: run was made under semantics the ground truth does not cover
        #: (``check_ground_truth=False``, e.g. saturated answering against
        #: explicit-graph labels).
        self.errors: List[WorkloadQuery] = (
            [item for item, answer in results if item.satisfiable == answer.empty]
            if check_ground_truth
            else []
        )
        self.pruned = sum(1 for _, answer in results if answer.pruned)

    @property
    def sound(self) -> bool:
        """``True`` when every verdict matched the ground truth."""
        return not self.errors

    @property
    def query_count(self) -> int:
        return len(self.results)

    def as_dict(self) -> Dict[str, object]:
        return {
            "queries": self.query_count,
            "pruned": self.pruned,
            "errors": len(self.errors),
            "total_seconds": self.total_seconds,
        }


def run_workload(
    service: QueryService,
    graph_name: str,
    workload: Sequence[WorkloadQuery],
    saturated: bool = False,
    answer_limit: Optional[int] = None,
) -> WorkloadReport:
    """Run every workload query through *service* and verify the verdicts.

    *answer_limit* caps the distinct answers per query (typical serving
    behaviour); it never changes a verdict — emptiness is exact either way.
    With ``saturated=True`` the ground-truth check is skipped: the workload
    labels state satisfiability on the *explicit* graph, and a query empty
    on ``G`` may legitimately have certain answers on ``G∞``.
    """
    results: List[Tuple[WorkloadQuery, QueryAnswer]] = []
    start = perf_counter()
    for item in workload:
        results.append(
            (item, service.answer(graph_name, item.query, limit=answer_limit, saturated=saturated))
        )
    return WorkloadReport(results, perf_counter() - start, check_ground_truth=not saturated)


class ComparisonReport:
    """Guarded service vs. direct per-query evaluation on one workload."""

    def __init__(
        self,
        guarded: WorkloadReport,
        direct_seconds: float,
        disagreements: List[BGPQuery],
        direct_errors: List[WorkloadQuery],
    ):
        self.guarded = guarded
        self.direct_seconds = direct_seconds
        #: Queries where the guarded answers differ from direct evaluation.
        self.disagreements = disagreements
        self.direct_errors = direct_errors

    @property
    def speedup(self) -> float:
        """Direct wall time divided by guarded wall time."""
        if self.guarded.total_seconds <= 0:
            return float("inf")
        return self.direct_seconds / self.guarded.total_seconds

    @property
    def sound(self) -> bool:
        """Zero pruning errors and full agreement with direct evaluation."""
        return self.guarded.sound and not self.disagreements and not self.direct_errors

    def as_dict(self) -> Dict[str, object]:
        return {
            "queries": self.guarded.query_count,
            "pruned": self.guarded.pruned,
            "guarded_seconds": self.guarded.total_seconds,
            "direct_seconds": self.direct_seconds,
            "speedup": self.speedup,
            "pruning_errors": len(self.guarded.errors),
            "disagreements": len(self.disagreements),
            "sound": self.sound,
        }


def compare_guarded_vs_direct(
    catalog: GraphCatalog,
    graph_name: str,
    workload: Sequence[WorkloadQuery],
    kind: str = "weak",
    answer_limit: Optional[int] = None,
    strategy: str = "hash",
) -> ComparisonReport:
    """Time *workload* through the guard and through direct evaluation.

    Both sides use the same encoded evaluator (same join *strategy*) over
    the same store with the same *answer_limit*; the only difference is the
    summary guard, so the measured gap is the guard's contribution.  Every
    query's two answer sets are compared — any disagreement (and any
    verdict contradicting the generation-time ground truth) is reported,
    making the comparison double as a soundness check.  Verdicts are exact
    despite the limit: an empty result is only ever produced by exhaustive
    (or provably prunable) evaluation.
    """
    entry = catalog.entry(graph_name)
    service = QueryService(catalog, kind=kind, prune=True, strategy=strategy)

    # warm-up: build the summaries and the cardinality statistics before
    # timing, as a server would at registration — neither side should be
    # charged for one-off profile builds
    for guard_kind in service.kinds:
        entry.pruning_graph(guard_kind)
    entry.statistics_index()

    with _gc_paused():
        guarded = run_workload(service, graph_name, workload, answer_limit=answer_limit)

        evaluator = entry.evaluator_for(strategy)
        direct_answers = []
        direct_start = perf_counter()
        for item in workload:
            direct_answers.append(evaluator.evaluate(item.query, limit=answer_limit))
        direct_seconds = perf_counter() - direct_start

    disagreements: List[BGPQuery] = []
    direct_errors: List[WorkloadQuery] = []
    for (item, answer), direct in zip(guarded.results, direct_answers):
        if answer.pruned:
            if direct:
                disagreements.append(item.query)
        elif answer.answers != direct:
            disagreements.append(item.query)
        if item.satisfiable == (not direct):
            direct_errors.append(item)
    return ComparisonReport(guarded, direct_seconds, disagreements, direct_errors)
