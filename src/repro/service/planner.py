"""Statistics-driven join planning for the encoded BGP evaluator.

The nested-loop evaluator of PR 2 ordered patterns greedily by *bound
position count* — a purely syntactic criterion that knows nothing about the
data.  This module replaces it with textbook cost-based ordering over the
:class:`~repro.service.statistics.CardinalityStatistics` profile of the
store:

* the *cardinality estimate* of a pattern given the already-bound variable
  slots is the row count of the pattern's property (or table, for a
  variable property), divided by the distinct-value count of every column a
  constant or bound variable pins down — the classic uniform-distribution
  selectivity formula (`rows(p) / V(column, p)`), with class-membership
  counts sharpening ``rdf:type`` patterns;
* the *plan* orders patterns greedily by that estimate: at every step the
  remaining pattern with the smallest estimated output joins next, so the
  intermediate binding tables the vectorized executor materializes stay as
  small as the statistics can make them;
* plans are cached per *query shape* — the tuple of compiled integer
  patterns — so a repeated workload query costs one dictionary lookup, not
  a planning pass.  The cache belongs to the planner, and the serving layer
  drops the planner whenever the statistics change, which keeps cached
  plans and estimates consistent by construction.

Pessimistic (upper-bound) join-size reasoning in the spirit of the
Sidorenko-style bounds (see PAPERS.md) is approximated here by clamping
every division at one row: an estimate never drops below the certainty
that a matching row, if any, costs at least one probe.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro import telemetry
from repro.model.triple import TripleKind
from repro.service.statistics import CardinalityStatistics
from repro.telemetry import Counter
from repro.utils.concurrency import named_lock

__all__ = [
    "DEFAULT_PLAN_CACHE_CAP",
    "PatternEstimate",
    "QueryPlan",
    "QueryPlanner",
    "ExecutionTrace",
    "StageTrace",
]

#: Default bound of the per-planner plan cache.  Plans are tiny, but a
#: long-lived server facing adversarially diverse query shapes must not
#: grow an unbounded dict; 512 covers every realistic repeated workload.
DEFAULT_PLAN_CACHE_CAP = 512


class PatternEstimate:
    """One planned stage: a pattern index plus its cardinality estimates."""

    __slots__ = ("pattern_index", "estimate", "cumulative")

    def __init__(self, pattern_index: int, estimate: float, cumulative: float):
        #: Index of the pattern in the compiled query's original order.
        self.pattern_index = pattern_index
        #: Estimated matching rows for the pattern given the bound slots.
        self.estimate = estimate
        #: Estimated binding-table size after this stage joins.
        self.cumulative = cumulative

    def __repr__(self):
        return (
            f"PatternEstimate(#{self.pattern_index}, est={self.estimate:.1f}, "
            f"cum={self.cumulative:.1f})"
        )


class QueryPlan:
    """An ordered execution plan for one compiled query shape."""

    __slots__ = ("stages", "shape")

    def __init__(self, stages: Sequence[PatternEstimate], shape: Tuple):
        self.stages = list(stages)
        self.shape = shape

    @property
    def order(self) -> List[int]:
        """Pattern indices in execution order."""
        return [stage.pattern_index for stage in self.stages]

    def __repr__(self):
        return f"<QueryPlan {self.order}>"


def plan_shape(compiled) -> Tuple:
    """The cache key of a compiled query: its integer patterns.

    Two queries over the same store that lower to the same constants, the
    same variable slots and the same table routing are the same planning
    problem, whatever their surface syntax.
    """
    return tuple(
        (pattern.subject, pattern.predicate, pattern.object, pattern.tables)
        for pattern in compiled.patterns
    )


class QueryPlanner:
    """Cost-based pattern ordering with a bounded, shape-keyed plan cache.

    The cache is an LRU bounded by *plan_cache_cap*: a long-lived server
    answering adversarially diverse query shapes re-plans cold shapes
    instead of leaking one cached plan per shape ever seen.  A re-planned
    evicted shape counts as an ordinary miss (and the eviction itself is
    tallied in ``cache_evictions``), so the hit/miss counters stay exact
    arrival statistics whatever the cap.  The cache is guarded by a lock —
    one planner is shared by every executor thread of a catalog entry.
    """

    def __init__(
        self,
        statistics: CardinalityStatistics,
        plan_cache_cap: int = DEFAULT_PLAN_CACHE_CAP,
    ):
        if plan_cache_cap <= 0:
            raise ValueError("plan_cache_cap must be positive")
        self.statistics = statistics
        self.plan_cache_cap = plan_cache_cap
        #: LRU plan cache (shape → plan); guarded by self._cache_lock
        self._plans: "OrderedDict[Tuple, QueryPlan]" = OrderedDict()
        self._cache_lock = named_lock("planner.cache_lock")
        # per-planner children of the process-wide ``planner.cache.*``
        # registry family: the instance counts stay exact (tests and
        # benchmarks assert them on fresh planners) while the same inc()
        # advances the shared metric
        self._cache_hits = Counter("hits", parent=telemetry.counter("planner.cache.hits"))
        self._cache_misses = Counter(
            "misses", parent=telemetry.counter("planner.cache.misses")
        )
        self._cache_evictions = Counter(
            "evictions", parent=telemetry.counter("planner.cache.evictions")
        )
        #: Whether the most recent :meth:`plan` call was served from cache.
        self.last_was_hit = False

    @property
    def cache_hits(self) -> int:
        return self._cache_hits.int_value

    @property
    def cache_misses(self) -> int:
        return self._cache_misses.int_value

    @property
    def cache_evictions(self) -> int:
        return self._cache_evictions.int_value

    @property
    def cached_plan_count(self) -> int:
        """Number of plans currently held (never exceeds the cap)."""
        with self._cache_lock:
            return len(self._plans)

    # ------------------------------------------------------------------
    # estimation
    # ------------------------------------------------------------------
    def estimate_pattern(self, pattern, bound_slots: Set[int]) -> float:
        """Estimated rows matching *pattern* given the bound variable slots.

        Sums the per-table estimates over the tables the pattern routes to
        (more than one only for variable-property patterns).
        """
        return sum(
            self._estimate_for_table(pattern, bound_slots, kind) for kind in pattern.tables
        )

    def _estimate_for_table(self, pattern, bound_slots: Set[int], kind: TripleKind) -> float:
        statistics = self.statistics
        s_spec, p_spec, o_spec = pattern.subject, pattern.predicate, pattern.object
        subject_pinned = s_spec >= 0 or (-s_spec - 1) in bound_slots
        object_const = o_spec >= 0
        object_pinned = object_const or (-o_spec - 1) in bound_slots

        if p_spec >= 0:
            profile = statistics.predicate(kind, p_spec)
            if profile is None:
                return 0.0
            base = float(profile.rows)
            distinct_subjects = profile.distinct_subjects
            distinct_objects = profile.distinct_objects
        else:
            base = float(statistics.table_rows(kind))
            if base == 0.0:
                return 0.0
            distinct_subjects = statistics.distinct_subjects(kind)
            distinct_objects = statistics.distinct_objects(kind)
            if (-p_spec - 1) in bound_slots:
                base /= max(1, statistics.distinct_predicates(kind))

        if object_const and kind is TripleKind.TYPE:
            # class-membership counts are exact for `?x rdf:type C`
            base = float(statistics.class_count(o_spec))
            if base == 0.0:
                return 0.0
        elif object_pinned:
            base /= max(1, distinct_objects)
        if subject_pinned:
            base /= max(1, distinct_subjects)
        return max(base, 1.0)

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def plan(self, compiled) -> QueryPlan:
        """The execution plan for *compiled*, cached per query shape (LRU)."""
        shape = plan_shape(compiled)
        with self._cache_lock:
            cached = self._plans.get(shape)
            if cached is not None:
                self._plans.move_to_end(shape)
                self._cache_hits.inc()
                self.last_was_hit = True
                return cached
            self._cache_misses.inc()
            self.last_was_hit = False
        plan = self._build_plan(compiled, shape)
        with self._cache_lock:
            self._plans[shape] = plan
            self._plans.move_to_end(shape)
            while len(self._plans) > self.plan_cache_cap:
                self._plans.popitem(last=False)
                self._cache_evictions.inc()
        return plan

    def _build_plan(self, compiled, shape: Tuple) -> QueryPlan:
        remaining = list(range(len(compiled.patterns)))
        bound: Set[int] = set()
        stages: List[PatternEstimate] = []
        cumulative = 1.0
        while remaining:
            best_index: Optional[int] = None
            best_estimate = float("inf")
            for index in remaining:
                estimate = self.estimate_pattern(compiled.patterns[index], bound)
                # strict < keeps ties on the earliest pattern: deterministic
                # plans for equal statistics
                if estimate < best_estimate:
                    best_index, best_estimate = index, estimate
            assert best_index is not None
            remaining.remove(best_index)
            pattern = compiled.patterns[best_index]
            cumulative *= max(best_estimate, 1.0)
            stages.append(PatternEstimate(best_index, best_estimate, cumulative))
            bound |= pattern.slots()
        return QueryPlan(stages, shape)

    def __repr__(self):
        return (
            f"QueryPlanner(plans={self.cached_plan_count}/{self.plan_cache_cap}, "
            f"hits={self.cache_hits}, misses={self.cache_misses}, "
            f"evictions={self.cache_evictions})"
        )


class StageTrace:
    """Observed execution of one plan stage (``--explain`` output)."""

    __slots__ = (
        "description",
        "estimate",
        "cumulative_estimate",
        "fetched",
        "produced",
        "probes",
        "algorithm",
    )

    def __init__(
        self,
        description: str,
        estimate: Optional[float],
        cumulative_estimate: Optional[float],
        fetched: Optional[int],
        produced: Optional[int],
        probes: int,
        algorithm: Optional[str] = None,
    ):
        self.description = description
        self.estimate = estimate
        self.cumulative_estimate = cumulative_estimate
        #: Rows fetched from the store for this stage (None for the
        #: nested-loop strategy, which has no per-stage fetch).
        self.fetched = fetched
        #: Binding-table rows after this stage joined.
        self.produced = produced
        self.probes = probes
        #: The join algorithm this stage actually ran ("hash" or "merge";
        #: None for strategies without per-stage algorithm choice).
        self.algorithm = algorithm

    def as_dict(self) -> Dict[str, object]:
        return {
            "pattern": self.description,
            "estimated_rows": self.estimate,
            "estimated_cumulative": self.cumulative_estimate,
            "fetched_rows": self.fetched,
            "produced_rows": self.produced,
            "probes": self.probes,
            "algorithm": self.algorithm,
        }


class ExecutionTrace:
    """What one evaluation actually did: plan, cardinalities, probes.

    Filled in by :meth:`EncodedEvaluator.evaluate` when passed as its
    ``trace`` argument; rendered by ``repro query --explain``.
    """

    __slots__ = ("strategy", "plan_cached", "stages")

    def __init__(self):
        self.strategy: Optional[str] = None
        self.plan_cached: Optional[bool] = None
        self.stages: List[StageTrace] = []

    @property
    def total_probes(self) -> int:
        return sum(stage.probes for stage in self.stages)

    def add_stage(
        self,
        description: str,
        estimate: Optional[float] = None,
        cumulative_estimate: Optional[float] = None,
        fetched: Optional[int] = None,
        produced: Optional[int] = None,
        probes: int = 0,
        algorithm: Optional[str] = None,
    ) -> None:
        self.stages.append(
            StageTrace(
                description, estimate, cumulative_estimate, fetched, produced, probes, algorithm
            )
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "strategy": self.strategy,
            "plan_cached": self.plan_cached,
            "total_probes": self.total_probes,
            "stages": [stage.as_dict() for stage in self.stages],
        }
