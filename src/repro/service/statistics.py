"""Store-level cardinality statistics behind the query planner.

The paper's prototype keeps the encoded graph in three relational tables;
any cost-based decision about a query over those tables — join order, guard
cascade order — needs the table shapes: how many rows each table holds, how
many of them carry each property, and how many *distinct* subjects/objects
each property touches (the classic selectivity denominators).  This module
maintains exactly that, one integer-keyed profile per store:

* per-table row counts;
* per-property row counts and distinct subject / object sets, per table;
* class-membership counts (rows of the type table per class id);
* table-level distinct subject / object / property counts.

A profile is *computable in one pass* over an existing store
(:meth:`CardinalityStatistics.from_store` — one ``scan_columns`` sweep per
table, no SQL round-trips per property) and *maintainable incrementally*
(:meth:`CardinalityStatistics.ingest_rows` — the same ``(kind, row)`` batches
:meth:`TripleStore.insert_triples` returns), so the serving layer never
re-scans a store to keep its estimates fresh.  Distinct counts are exact:
the per-property subject/object id sets are kept, which at the scales this
prototype serves (hundreds of thousands of rows) is a few megabytes — the
price of estimates that never drift.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from repro.model.dictionary import EncodedTriple
from repro.model.triple import TripleKind
from repro.store.base import TripleStore

__all__ = ["PredicateStatistics", "CardinalityStatistics"]

_ALL_KINDS = (TripleKind.DATA, TripleKind.TYPE, TripleKind.SCHEMA)


class PredicateStatistics:
    """Shape of one property within one triple table."""

    __slots__ = ("rows", "subjects", "objects")

    def __init__(self):
        self.rows = 0
        self.subjects: Set[int] = set()
        self.objects: Set[int] = set()

    @property
    def distinct_subjects(self) -> int:
        return len(self.subjects)

    @property
    def distinct_objects(self) -> int:
        return len(self.objects)

    def as_dict(self) -> Dict[str, int]:
        return {
            "rows": self.rows,
            "distinct_subjects": self.distinct_subjects,
            "distinct_objects": self.distinct_objects,
        }

    def __repr__(self):
        return (
            f"PredicateStatistics(rows={self.rows}, subjects={self.distinct_subjects}, "
            f"objects={self.distinct_objects})"
        )


class CardinalityStatistics:
    """Cardinality profile of one :class:`TripleStore`'s three tables.

    Build with :meth:`from_store` (one scan pass) and keep fresh with
    :meth:`ingest_rows` on every insert batch; a profile built one way and a
    profile built the other over the same rows are identical, which is what
    lets :class:`~repro.service.catalog.CatalogEntry` update in place instead
    of re-scanning after incremental ingest.
    """

    __slots__ = ("_predicates", "_rows", "_class_rows", "_kind_subjects", "_kind_objects")

    def __init__(self):
        self._predicates: Dict[TripleKind, Dict[int, PredicateStatistics]] = {
            kind: {} for kind in _ALL_KINDS
        }
        self._rows: Dict[TripleKind, int] = {kind: 0 for kind in _ALL_KINDS}
        self._class_rows: Dict[int, int] = {}
        self._kind_subjects: Dict[TripleKind, Set[int]] = {kind: set() for kind in _ALL_KINDS}
        self._kind_objects: Dict[TripleKind, Set[int]] = {kind: set() for kind in _ALL_KINDS}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_store(cls, store: TripleStore) -> "CardinalityStatistics":
        """Profile *store* in one batched column scan per table."""
        statistics = cls()
        for kind in _ALL_KINDS:
            for subjects, predicates, objects in store.scan_columns(kind):
                statistics._ingest_kind_columns(kind, subjects, predicates, objects)
        return statistics

    def ingest_rows(self, rows: Iterable[Tuple[TripleKind, EncodedTriple]]) -> None:
        """Fold freshly inserted ``(kind, row)`` pairs into the profile.

        Callers must hand in only rows actually inserted (the
        ``skip_existing=True`` contract of :meth:`TripleStore.insert_triples`)
        — duplicate rows would inflate the row counts.
        """
        for kind, row in rows:
            self._ingest_one(kind, row[0], row[1], row[2])

    def _ingest_kind_batch(self, kind: TripleKind, batch: Iterable[EncodedTriple]) -> None:
        predicates = self._predicates[kind]
        kind_subjects = self._kind_subjects[kind]
        kind_objects = self._kind_objects[kind]
        class_rows = self._class_rows
        count = 0
        is_type = kind is TripleKind.TYPE
        for subject, predicate, obj in batch:
            count += 1
            entry = predicates.get(predicate)
            if entry is None:
                entry = predicates[predicate] = PredicateStatistics()
            entry.rows += 1
            entry.subjects.add(subject)
            entry.objects.add(obj)
            kind_subjects.add(subject)
            kind_objects.add(obj)
            if is_type:
                class_rows[obj] = class_rows.get(obj, 0) + 1
        self._rows[kind] += count

    def _ingest_kind_columns(self, kind, subjects, predicates, objects) -> None:
        """Fold three parallel column slices into the profile.

        The table-level distinct sets take whole column slices in one C-level
        ``set.update`` each; only the per-property profiles walk rows.
        """
        by_predicate = self._predicates[kind]
        self._kind_subjects[kind].update(subjects)
        self._kind_objects[kind].update(objects)
        class_rows = self._class_rows
        is_type = kind is TripleKind.TYPE
        for subject, predicate, obj in zip(subjects, predicates, objects):
            entry = by_predicate.get(predicate)
            if entry is None:
                entry = by_predicate[predicate] = PredicateStatistics()
            entry.rows += 1
            entry.subjects.add(subject)
            entry.objects.add(obj)
            if is_type:
                class_rows[obj] = class_rows.get(obj, 0) + 1
        self._rows[kind] += len(subjects)

    def _ingest_one(self, kind: TripleKind, subject: int, predicate: int, obj: int) -> None:
        self._ingest_kind_batch(kind, ((subject, predicate, obj),))

    # ------------------------------------------------------------------
    # lookups (the planner's vocabulary)
    # ------------------------------------------------------------------
    def table_rows(self, kind: TripleKind) -> int:
        """Total rows of the *kind* table."""
        return self._rows[kind]

    @property
    def total_rows(self) -> int:
        return sum(self._rows.values())

    def predicate(self, kind: TripleKind, predicate: int) -> Optional[PredicateStatistics]:
        """Per-property profile, or ``None`` when the table never saw it."""
        return self._predicates[kind].get(predicate)

    def predicate_rows(self, kind: TripleKind, predicate: int) -> int:
        entry = self._predicates[kind].get(predicate)
        return entry.rows if entry is not None else 0

    def distinct_predicates(self, kind: TripleKind) -> int:
        return len(self._predicates[kind])

    def distinct_subjects(self, kind: TripleKind, predicate: Optional[int] = None) -> int:
        """Distinct subject ids, per property or per table."""
        if predicate is None:
            return len(self._kind_subjects[kind])
        entry = self._predicates[kind].get(predicate)
        return entry.distinct_subjects if entry is not None else 0

    def distinct_objects(self, kind: TripleKind, predicate: Optional[int] = None) -> int:
        """Distinct object ids, per property or per table."""
        if predicate is None:
            return len(self._kind_objects[kind])
        entry = self._predicates[kind].get(predicate)
        return entry.distinct_objects if entry is not None else 0

    def class_count(self, class_id: int) -> int:
        """Type-table rows whose object is *class_id* (class membership)."""
        return self._class_rows.get(class_id, 0)

    def class_counts(self) -> Dict[int, int]:
        """All class-membership counts (copy)."""
        return dict(self._class_rows)

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly rendering (per-table rows and property profiles)."""
        tables: Dict[str, object] = {}
        for kind in _ALL_KINDS:
            tables[kind.name.lower()] = {
                "rows": self._rows[kind],
                "distinct_subjects": len(self._kind_subjects[kind]),
                "distinct_objects": len(self._kind_objects[kind]),
                "predicates": {
                    str(predicate): entry.as_dict()
                    for predicate, entry in sorted(self._predicates[kind].items())
                },
            }
        return {
            "tables": tables,
            "class_rows": {str(class_id): count for class_id, count in sorted(self._class_rows.items())},
            "total_rows": self.total_rows,
        }

    def __eq__(self, other):
        if not isinstance(other, CardinalityStatistics):
            return NotImplemented
        if self._rows != other._rows or self._class_rows != other._class_rows:
            return False
        for kind in _ALL_KINDS:
            mine, theirs = self._predicates[kind], other._predicates[kind]
            if mine.keys() != theirs.keys():
                return False
            for predicate, entry in mine.items():
                against = theirs[predicate]
                if (
                    entry.rows != against.rows
                    or entry.subjects != against.subjects
                    or entry.objects != against.objects
                ):
                    return False
        return True

    def __repr__(self):
        per_kind = ", ".join(
            f"{kind.name.lower()}={self._rows[kind]}" for kind in _ALL_KINDS
        )
        return f"CardinalityStatistics({per_kind})"
