"""BGP query evaluation over an :class:`~repro.model.graph.RDFGraph`.

Evaluation finds every embedding (homomorphism) of the query body into the
graph.  The join order is chosen greedily: at each step the pattern with the
most bound positions is evaluated next, which keeps the search close to an
index-nested-loop join and is adequate for the query sizes of the paper's
experiments.

The paper evaluates queries either against the explicit triples of ``G`` or
against its saturation ``G∞`` (Section 2.1, "Query answering"); the helper
:func:`evaluate_saturated` performs the latter.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.model.graph import RDFGraph
from repro.model.terms import Term
from repro.queries.bgp import BGPQuery, PatternTerm, TriplePattern, Variable
from repro.schema.rdfs import RDFSchema
from repro.schema.saturation import saturate_cached

__all__ = ["Bindings", "evaluate", "evaluate_saturated", "has_answers", "count_answers"]

#: A variable assignment produced during evaluation.
Bindings = Dict[Variable, Term]


def _resolve(term: PatternTerm, bindings: Bindings) -> Optional[Term]:
    """Return the constant that *term* must match given *bindings*, or ``None``."""
    if isinstance(term, Variable):
        return bindings.get(term)
    return term


def _match_pattern(
    graph: RDFGraph, pattern: TriplePattern, bindings: Bindings
) -> Iterator[Bindings]:
    """Yield every extension of *bindings* matching *pattern* in *graph*."""
    subject = _resolve(pattern.subject, bindings)
    predicate = _resolve(pattern.predicate, bindings)
    obj = _resolve(pattern.object, bindings)
    for triple in graph.triples(subject, predicate, obj):
        extended = dict(bindings)
        consistent = True
        for pattern_term, value in (
            (pattern.subject, triple.subject),
            (pattern.predicate, triple.predicate),
            (pattern.object, triple.object),
        ):
            if isinstance(pattern_term, Variable):
                bound = extended.get(pattern_term)
                if bound is None:
                    extended[pattern_term] = value
                elif bound != value:
                    consistent = False
                    break
        if consistent:
            yield extended


def _order_patterns(patterns: Sequence[TriplePattern]) -> List[TriplePattern]:
    """Greedy join ordering: repeatedly pick the most-bound remaining pattern."""
    remaining = list(patterns)
    ordered: List[TriplePattern] = []
    bound: Set[Variable] = set()
    while remaining:
        best = max(remaining, key=lambda p: (p.bound_count(bound), -len(p.variables())))
        ordered.append(best)
        remaining.remove(best)
        bound |= best.variables()
    return ordered


def iter_embeddings(graph: RDFGraph, query: BGPQuery) -> Iterator[Bindings]:
    """Yield every embedding of the query body into *graph*."""
    ordered = _order_patterns(query.patterns)

    def recurse(index: int, bindings: Bindings) -> Iterator[Bindings]:
        if index == len(ordered):
            yield bindings
            return
        for extended in _match_pattern(graph, ordered[index], bindings):
            yield from recurse(index + 1, extended)

    yield from recurse(0, {})


def evaluate(graph: RDFGraph, query: BGPQuery, limit: Optional[int] = None) -> Set[Tuple[Term, ...]]:
    """Evaluate *query* against the explicit triples of *graph*.

    Returns the set of answer tuples (projections of the embeddings on the
    head variables).  For a boolean query the result is ``{()}`` when the
    query has at least one embedding and ``set()`` otherwise.
    """
    answers: Set[Tuple[Term, ...]] = set()
    for bindings in iter_embeddings(graph, query):
        answers.add(tuple(bindings[variable] for variable in query.head))
        if limit is not None and len(answers) >= limit:
            break
    return answers


def evaluate_saturated(
    graph: RDFGraph, query: BGPQuery, schema: Optional[RDFSchema] = None
) -> Set[Tuple[Term, ...]]:
    """Evaluate *query* against the saturation ``G∞`` (complete answers).

    The saturation is computed through :func:`saturate_cached`, so workload
    loops evaluating many queries against the same graph saturate it once.
    """
    return evaluate(saturate_cached(graph, schema=schema), query)


def _saturation_target(
    graph: RDFGraph, saturated: bool, saturated_graph: Optional[RDFGraph]
) -> RDFGraph:
    """The graph a check should run against.

    A caller that already holds ``G∞`` passes it as *saturated_graph* and no
    saturation work happens at all; otherwise ``saturated=True`` uses the
    per-graph saturation cache, paying ``O(|G∞|)`` only when the graph
    changed since the previous query.
    """
    if saturated_graph is not None:
        return saturated_graph
    if saturated:
        return saturate_cached(graph)
    return graph


def has_answers(
    graph: RDFGraph,
    query: BGPQuery,
    saturated: bool = False,
    saturated_graph: Optional[RDFGraph] = None,
) -> bool:
    """``True`` when the query has at least one answer on *graph*.

    With ``saturated=True`` the check runs against ``G∞`` — the notion used
    by query-based representativeness (Definition 1).  A pre-computed
    saturation can be supplied as *saturated_graph* to skip even the cache
    lookup.
    """
    target = _saturation_target(graph, saturated, saturated_graph)
    for _ in iter_embeddings(target, query):
        return True
    return False


def count_answers(
    graph: RDFGraph,
    query: BGPQuery,
    saturated: bool = False,
    saturated_graph: Optional[RDFGraph] = None,
) -> int:
    """Number of distinct answer tuples of *query* on *graph* (or ``G∞``)."""
    target = _saturation_target(graph, saturated, saturated_graph)
    return len(evaluate(target, query))
