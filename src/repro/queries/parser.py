"""Parsing of BGP queries from a SPARQL-like concrete syntax.

Two statement forms are supported, which cover the paper's examples and the
needs of the test suite and benchmarks:

* ``SELECT ?x ?y WHERE { ?x <uri> ?y . ?y a <uri> }`` with optional
  ``PREFIX pfx: <uri>`` lines and prefixed names in patterns;
* ``ASK WHERE { ... }`` / ``ASK { ... }`` for boolean queries.

The ``a`` keyword abbreviates ``rdf:type`` as in SPARQL / Turtle.
"""

from __future__ import annotations

import re
from typing import Dict, List

from repro.errors import QueryParseError
from repro.model.namespaces import RDF, RDF_TYPE, RDFS, XSD
from repro.model.terms import BlankNode, Literal, URI
from repro.queries.bgp import BGPQuery, PatternTerm, TriplePattern, Variable

__all__ = ["parse_query"]

_PREFIX_RE = re.compile(r"PREFIX\s+([A-Za-z][\w-]*)?:\s*<([^>]*)>", re.IGNORECASE)
_SELECT_RE = re.compile(r"SELECT\s+(.*?)\s+WHERE\s*\{(.*)\}", re.IGNORECASE | re.DOTALL)
_ASK_RE = re.compile(r"ASK\s*(?:WHERE\s*)?\{(.*)\}", re.IGNORECASE | re.DOTALL)

_TERM_RE = re.compile(
    r"""
    (?P<var>\?[A-Za-z_][\w]*)
  | (?P<uri><[^>]*>)
  | (?P<blank>_:[A-Za-z0-9][\w.-]*)
  | (?P<literal>"(?:[^"\\]|\\.)*"(?:\^\^<[^>]*>|@[a-zA-Z-]+)?)
  | (?P<a_kw>\ba\b)
  | (?P<pname>[A-Za-z][\w-]*:[\w.-]+)
    """,
    re.VERBOSE,
)

_DEFAULT_PREFIXES = {"rdf": RDF.prefix, "rdfs": RDFS.prefix, "xsd": XSD.prefix}


def _parse_term(kind: str, text: str, prefixes: Dict[str, str]) -> PatternTerm:
    if kind == "var":
        return Variable(text)
    if kind == "uri":
        return URI(text[1:-1])
    if kind == "blank":
        return BlankNode(text[2:])
    if kind == "a_kw":
        return RDF_TYPE
    if kind == "pname":
        prefix, _, local = text.partition(":")
        if prefix not in prefixes:
            raise QueryParseError(f"undeclared prefix in query: {prefix!r}")
        return URI(prefixes[prefix] + local)
    if kind == "literal":
        closing = text.rindex('"')
        lexical = text[1:closing].replace('\\"', '"').replace("\\\\", "\\")
        suffix = text[closing + 1 :]
        if suffix.startswith("^^<"):
            return Literal(lexical, datatype=URI(suffix[3:-1]))
        if suffix.startswith("@"):
            return Literal(lexical, language=suffix[1:])
        return Literal(lexical)
    raise QueryParseError(f"cannot parse query term: {text!r}")


def _parse_patterns(body: str, prefixes: Dict[str, str]) -> List[TriplePattern]:
    """Tokenize the whole WHERE body, then group terms into triple patterns.

    The ``.`` separating patterns is recognised as a token of its own, so
    dots inside URIs or literals (``http://www.w3.org/...``) never split a
    pattern apart.
    """
    patterns: List[TriplePattern] = []
    terms: List[PatternTerm] = []
    position = 0

    def flush_pattern() -> None:
        if not terms:
            return
        if len(terms) != 3:
            raise QueryParseError(
                f"each triple pattern needs exactly 3 terms, got {len(terms)}"
            )
        patterns.append(TriplePattern(terms[0], terms[1], terms[2]))
        terms.clear()

    while position < len(body):
        character = body[position]
        if character in " \t\n\r":
            position += 1
            continue
        if character == ".":
            flush_pattern()
            position += 1
            continue
        match = _TERM_RE.match(body, position)
        if not match:
            raise QueryParseError(
                f"cannot tokenize query pattern near: {body[position:position+30]!r}"
            )
        terms.append(_parse_term(match.lastgroup, match.group(0), prefixes))
        position = match.end()
        if len(terms) == 3:
            flush_pattern()
    flush_pattern()

    if not patterns:
        raise QueryParseError("the query body contains no triple pattern")
    return patterns


def parse_query(text: str, name: str = "") -> BGPQuery:
    """Parse a SELECT or ASK query string into a :class:`BGPQuery`."""
    prefixes = dict(_DEFAULT_PREFIXES)
    for match in _PREFIX_RE.finditer(text):
        prefixes[match.group(1) or ""] = match.group(2)
    stripped = _PREFIX_RE.sub("", text).strip()

    select_match = _SELECT_RE.search(stripped)
    if select_match:
        head_text, body = select_match.group(1), select_match.group(2)
        if head_text.strip() == "*":
            patterns = _parse_patterns(body, prefixes)
            variables = sorted(
                {v for p in patterns for v in p.variables()}, key=lambda v: v.name
            )
            return BGPQuery(patterns, head=variables, name=name)
        head = [Variable(token) for token in head_text.split() if token.startswith("?")]
        if not head:
            raise QueryParseError("SELECT clause names no variables")
        return BGPQuery(_parse_patterns(body, prefixes), head=head, name=name)

    ask_match = _ASK_RE.search(stripped)
    if ask_match:
        return BGPQuery(_parse_patterns(ask_match.group(1), prefixes), head=(), name=name)

    raise QueryParseError("query must be a SELECT or ASK form")
