"""BGP / RBGP queries: model, parser, evaluation and workload generation."""

from repro.queries.bgp import BGPQuery, TriplePattern, Variable
from repro.queries.evaluation import (
    count_answers,
    evaluate,
    evaluate_saturated,
    has_answers,
    iter_embeddings,
)
from repro.queries.generator import RBGPQueryGenerator, generate_rbgp_workload
from repro.queries.parser import parse_query

__all__ = [
    "BGPQuery",
    "TriplePattern",
    "Variable",
    "count_answers",
    "evaluate",
    "evaluate_saturated",
    "has_answers",
    "iter_embeddings",
    "RBGPQueryGenerator",
    "generate_rbgp_workload",
    "parse_query",
]
