"""Random RBGP query workload generation.

The representativeness experiments (E8 in DESIGN.md) need query workloads
that (a) belong to the RBGP dialect of Definition 3 and (b) are guaranteed to
have answers on the input graph — Definition 1 quantifies over queries with
non-empty answers on ``G∞``.  The generator below walks the (saturated)
graph: it picks a seed resource and grows a connected set of triple patterns
around it, replacing resources by variables and keeping property URIs and
type URIs, which is precisely the RBGP shape.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.model.graph import RDFGraph
from repro.model.namespaces import RDF_TYPE
from repro.model.terms import Term, URI
from repro.queries.bgp import BGPQuery, TriplePattern, Variable

__all__ = ["RBGPQueryGenerator", "generate_rbgp_workload"]


class RBGPQueryGenerator:
    """Generates RBGP queries that have at least one answer on the graph.

    Parameters
    ----------
    graph:
        The graph the queries are sampled from.  Pass the *saturated* graph
        to obtain queries with answers on ``G∞``.
    seed:
        Seed for the internal pseudo-random generator (reproducible
        workloads).
    """

    def __init__(self, graph: RDFGraph, seed: int = 0):
        self.graph = graph
        self._random = random.Random(seed)
        self._data_triples = sorted(graph.data_triples)
        self._type_triples = sorted(graph.type_triples)

    def generate(self, size: int = 2, include_type_pattern: bool = True) -> Optional[BGPQuery]:
        """Generate one connected RBGP query with about *size* data patterns.

        Returns ``None`` when the graph has no data triples to seed from.
        """
        if not self._data_triples:
            return None
        seed_triple = self._random.choice(self._data_triples)
        variable_of: Dict[Term, Variable] = {}

        def variable_for(node: Term) -> Variable:
            existing = variable_of.get(node)
            if existing is not None:
                return existing
            variable = Variable(f"x{len(variable_of) + 1}")
            variable_of[node] = variable
            return variable

        patterns: List[TriplePattern] = []
        frontier: List[Term] = []

        def add_data_pattern(triple) -> None:
            patterns.append(
                TriplePattern(
                    variable_for(triple.subject), triple.predicate, variable_for(triple.object)
                )
            )
            frontier.append(triple.subject)
            frontier.append(triple.object)

        add_data_pattern(seed_triple)
        attempts = 0
        while len(patterns) < size and attempts < size * 10 and frontier:
            attempts += 1
            node = self._random.choice(frontier)
            neighbours = list(self.graph.triples(subject=node)) + list(
                self.graph.triples(obj=node)
            )
            neighbours = [t for t in neighbours if not t.is_schema() and not t.is_type()]
            if not neighbours:
                continue
            candidate = self._random.choice(neighbours)
            pattern = TriplePattern(
                variable_for(candidate.subject),
                candidate.predicate,
                variable_for(candidate.object),
            )
            if pattern not in patterns:
                add_data_pattern(candidate)

        if include_type_pattern:
            typed_nodes = [node for node in variable_of if self.graph.has_type(node)]
            if typed_nodes:
                node = self._random.choice(typed_nodes)
                class_uri = sorted(self.graph.types_of(node))[0]
                if isinstance(class_uri, URI):
                    pattern = TriplePattern(variable_of[node], RDF_TYPE, class_uri)
                    if pattern not in patterns:
                        patterns.append(pattern)

        head = sorted({v for p in patterns for v in p.variables()}, key=lambda v: v.name)
        query = BGPQuery(patterns, head=head[:2], name=f"rbgp_{len(patterns)}")
        query.check_rbgp()
        return query

    def workload(self, count: int, size: int = 2) -> List[BGPQuery]:
        """Generate a list of *count* queries (duplicates are allowed)."""
        queries: List[BGPQuery] = []
        while len(queries) < count:
            query = self.generate(size=size)
            if query is None:
                break
            queries.append(query)
        return queries


def generate_rbgp_workload(
    graph: RDFGraph, count: int = 20, size: int = 2, seed: int = 0
) -> List[BGPQuery]:
    """Convenience wrapper: a reproducible RBGP workload over *graph*."""
    return RBGPQueryGenerator(graph, seed=seed).workload(count, size=size)
