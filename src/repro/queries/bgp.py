"""Basic graph pattern (BGP) queries and the RBGP dialect.

The paper (Section 2.1) considers SPARQL BGP — conjunctive — queries:
``q(x̄) :- t1, ..., tα`` where each ``ti`` is a triple pattern whose subject,
property and object may be variables or constants.  The *relational BGP*
(RBGP, Definition 3) dialect further requires URIs in every property
position, a URI in the object position of every ``rdf:type`` pattern, and
variables everywhere else; summary representativeness and accuracy are
stated with respect to RBGP queries.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.errors import NotRBGPError, QueryError
from repro.model.namespaces import RDF_TYPE
from repro.model.terms import BlankNode, Literal, Term, URI

__all__ = ["Variable", "TriplePattern", "BGPQuery", "PatternTerm"]


class Variable:
    """A query variable, written ``?name`` in SPARQL / ``x`` in the paper."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not isinstance(name, str) or not name:
            raise QueryError(f"variable name must be a non-empty string, got {name!r}")
        self.name = name.lstrip("?")

    def __eq__(self, other):
        return isinstance(other, Variable) and self.name == other.name

    def __hash__(self):
        return hash(("var", self.name))

    def __repr__(self):
        return f"Variable({self.name!r})"

    def __str__(self):
        return f"?{self.name}"


PatternTerm = Union[Variable, URI, Literal, BlankNode]


def _is_constant(term: PatternTerm) -> bool:
    return not isinstance(term, Variable)


class TriplePattern:
    """A triple pattern: subject / property / object, each variable or constant."""

    __slots__ = ("subject", "predicate", "object")

    def __init__(self, subject: PatternTerm, predicate: PatternTerm, obj: PatternTerm):
        if isinstance(subject, Literal):
            raise QueryError("a literal cannot appear in subject position")
        self.subject = subject
        self.predicate = predicate
        self.object = obj

    def __eq__(self, other):
        return (
            isinstance(other, TriplePattern)
            and self.subject == other.subject
            and self.predicate == other.predicate
            and self.object == other.object
        )

    def __hash__(self):
        return hash((self.subject, self.predicate, self.object))

    def __iter__(self):
        return iter((self.subject, self.predicate, self.object))

    def __repr__(self):
        return f"TriplePattern({self.subject!r}, {self.predicate!r}, {self.object!r})"

    def __str__(self):
        def render(term: PatternTerm) -> str:
            return str(term) if isinstance(term, Variable) else term.n3()

        return f"{render(self.subject)} {render(self.predicate)} {render(self.object)} ."

    def variables(self) -> Set[Variable]:
        """The variables occurring in the pattern."""
        return {term for term in self if isinstance(term, Variable)}

    def constants(self) -> Set[Term]:
        """The constant terms occurring in the pattern."""
        return {term for term in self if _is_constant(term)}

    def is_type_pattern(self) -> bool:
        """``True`` when the pattern's property is the constant ``rdf:type``."""
        return self.predicate == RDF_TYPE

    def bound_count(self, bound_variables: Set[Variable]) -> int:
        """Number of positions that are constants or already-bound variables.

        Used by the evaluator to order patterns greedily (most selective
        first).
        """
        count = 0
        for term in self:
            if _is_constant(term) or term in bound_variables:
                count += 1
        return count


class BGPQuery:
    """A conjunctive (BGP) query ``q(x̄) :- t1, ..., tα``.

    Parameters
    ----------
    patterns:
        The triple patterns forming the query body.
    head:
        The distinguished (answer) variables; empty for a boolean query.
    name:
        Optional label used in reports.
    """

    def __init__(
        self,
        patterns: Iterable[TriplePattern],
        head: Sequence[Variable] = (),
        name: str = "",
    ):
        self.patterns: List[TriplePattern] = list(patterns)
        self.head: Tuple[Variable, ...] = tuple(head)
        self.name = name
        if not self.patterns:
            raise QueryError("a BGP query needs at least one triple pattern")
        body_variables = self.variables()
        for variable in self.head:
            if variable not in body_variables:
                raise QueryError(
                    f"distinguished variable {variable} does not occur in the query body"
                )

    def __repr__(self):
        head = ", ".join(str(v) for v in self.head)
        return f"BGPQuery(q({head}) :- {len(self.patterns)} patterns)"

    def __str__(self):
        head = ", ".join(str(v) for v in self.head)
        body = " ".join(str(p) for p in self.patterns)
        return f"q({head}) :- {body}"

    def __eq__(self, other):
        return (
            isinstance(other, BGPQuery)
            and self.head == other.head
            and set(self.patterns) == set(other.patterns)
        )

    def __hash__(self):
        return hash((self.head, frozenset(self.patterns)))

    # ------------------------------------------------------------------
    def variables(self) -> Set[Variable]:
        """All variables occurring in the body."""
        result: Set[Variable] = set()
        for pattern in self.patterns:
            result |= pattern.variables()
        return result

    def constants(self) -> Set[Term]:
        """All constants occurring in the body."""
        result: Set[Term] = set()
        for pattern in self.patterns:
            result |= pattern.constants()
        return result

    def is_boolean(self) -> bool:
        """``True`` for a boolean query (empty head)."""
        return not self.head

    def to_sparql(self) -> str:
        """Render in the concrete syntax :func:`repro.queries.parser.parse_query`
        accepts (``SELECT ... WHERE { ... }`` / ``ASK WHERE { ... }``).

        This is the wire format of the HTTP API: a query object serialized
        here parses back to an equal query on the other side.
        """

        def render(term: PatternTerm) -> str:
            return str(term) if isinstance(term, Variable) else term.n3()

        body = " . ".join(
            f"{render(p.subject)} {render(p.predicate)} {render(p.object)}"
            for p in self.patterns
        )
        if self.is_boolean():
            return f"ASK WHERE {{ {body} }}"
        head = " ".join(str(variable) for variable in self.head)
        return f"SELECT {head} WHERE {{ {body} }}"

    # ------------------------------------------------------------------
    # RBGP dialect (Definition 3)
    # ------------------------------------------------------------------
    def is_rbgp(self) -> bool:
        """``True`` when the query belongs to the RBGP dialect."""
        try:
            self.check_rbgp()
        except NotRBGPError:
            return False
        return True

    def check_rbgp(self) -> None:
        """Raise :class:`NotRBGPError` when the query violates Definition 3."""
        for pattern in self.patterns:
            if not isinstance(pattern.predicate, URI):
                raise NotRBGPError(
                    f"RBGP requires a URI in every property position: {pattern}"
                )
            if pattern.is_type_pattern():
                if not isinstance(pattern.object, URI):
                    raise NotRBGPError(
                        f"RBGP requires a URI as the object of every rdf:type pattern: {pattern}"
                    )
                if not isinstance(pattern.subject, Variable):
                    raise NotRBGPError(
                        f"RBGP requires a variable subject in rdf:type patterns: {pattern}"
                    )
            else:
                if not isinstance(pattern.subject, Variable):
                    raise NotRBGPError(
                        f"RBGP requires variables in non-property positions: {pattern}"
                    )
                if not isinstance(pattern.object, Variable):
                    raise NotRBGPError(
                        f"RBGP requires variables in non-property positions: {pattern}"
                    )
