"""Command-line interface: ``rdfsummary`` / ``python -m repro``.

Sub-commands
------------
``summarize``
    Summarize an N-Triples (or Turtle) file with one of the four summary
    kinds and write the result as N-Triples or DOT.
``stats``
    Print size statistics of a graph and of its four summaries.
``saturate``
    Write the saturation ``G∞`` of a graph.
``generate``
    Generate a synthetic dataset (bsbm / lubm / bibliography) as N-Triples.
``sweep``
    Run the Figure 11-13 scale sweep and print the three series.
``query``
    Answer a BGP query through the summary-guarded query service, or run a
    mixed workload comparing the guarded service against direct evaluation.
``serve``
    Run the durable HTTP query server: a (optionally persistent) graph
    catalog behind the JSON API of :mod:`repro.server.http`.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from typing import List, Optional

from repro.analysis.harness import (
    format_figure_series,
    format_query_service_report,
    run_query_service_workload,
    run_scale_sweep,
)
from repro.analysis.metrics import format_table, summary_size_table
from repro.core.builders import ENGINE_CHOICES, SUMMARY_KINDS, summarize
from repro.datasets.bibliography import generate_bibliography
from repro.datasets.bsbm import generate_bsbm
from repro.datasets.lubm import generate_lubm
from repro.io.dot import summary_to_dot, write_dot
from repro.io.ntriples import dump_ntriples, load_ntriples
from repro.io.turtle_lite import load_turtle
from repro.model.graph import RDFGraph
from repro.model.terms import term_sort_key
from repro.queries.parser import parse_query
from repro.schema.saturation import saturate
from repro.service.catalog import GraphCatalog
from repro.service.service import QueryService

__all__ = ["main", "build_parser"]


def _load_graph(path: str) -> RDFGraph:
    if path.endswith(".ttl") or path.endswith(".turtle"):
        return load_turtle(path)
    return load_ntriples(path)


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="rdfsummary",
        description="Query-oriented summarization of RDF graphs (weak / strong / typed summaries).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    summarize_parser = subparsers.add_parser("summarize", help="summarize an RDF file")
    summarize_parser.add_argument("input", help="input .nt or .ttl file")
    summarize_parser.add_argument(
        "--kind", default="weak", choices=sorted(SUMMARY_KINDS), help="summary kind"
    )
    summarize_parser.add_argument(
        "--engine",
        default=None,
        choices=list(ENGINE_CHOICES),
        help="summarization engine: the integer-encoded pipeline (default) "
        "or the legacy Term-object pipeline",
    )
    summarize_parser.add_argument("--output", "-o", help="output file (N-Triples, or DOT with --dot)")
    summarize_parser.add_argument("--dot", action="store_true", help="write GraphViz DOT instead of N-Triples")

    stats_parser = subparsers.add_parser("stats", help="print graph and summary statistics")
    stats_parser.add_argument("input", help="input .nt or .ttl file")

    saturate_parser = subparsers.add_parser("saturate", help="write the RDFS saturation of a graph")
    saturate_parser.add_argument("input", help="input .nt or .ttl file")
    saturate_parser.add_argument("--output", "-o", required=True, help="output N-Triples file")

    generate_parser = subparsers.add_parser("generate", help="generate a synthetic dataset")
    generate_parser.add_argument(
        "dataset", choices=["bsbm", "lubm", "bibliography"], help="dataset family"
    )
    generate_parser.add_argument("--scale", type=int, default=100, help="generator scale")
    generate_parser.add_argument("--seed", type=int, default=0, help="random seed")
    generate_parser.add_argument("--output", "-o", required=True, help="output N-Triples file")

    sweep_parser = subparsers.add_parser("sweep", help="run the Figure 11-13 scale sweep")
    sweep_parser.add_argument(
        "--scales", type=int, nargs="+", default=[50, 100, 200], help="BSBM scales (products)"
    )
    sweep_parser.add_argument("--seed", type=int, default=0, help="random seed")
    sweep_parser.add_argument(
        "--engine",
        default=None,
        choices=list(ENGINE_CHOICES),
        help="summarization engine used for every sweep point",
    )

    query_parser = subparsers.add_parser(
        "query", help="answer BGP queries through the summary-guarded service"
    )
    query_parser.add_argument("input", help="input .nt or .ttl file")
    group = query_parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--query", help="a SELECT/ASK query string")
    group.add_argument("--query-file", help="file holding a SELECT/ASK query")
    group.add_argument(
        "--workload",
        type=int,
        metavar="N",
        help="generate a mixed N-query workload and compare the guarded "
        "service against direct evaluation",
    )
    query_parser.add_argument(
        "--kind",
        default="weak+strong",
        help="guard summary kind(s); '+'-joined names cascade, e.g. weak+strong",
    )
    query_parser.add_argument(
        "--strategy",
        default="hash",
        choices=["hash", "nested", "sql", "merge"],
        help="join strategy of base evaluation: the statistics-planned "
        "vectorized hash join (default), the legacy index-nested-loop, "
        "whole-join SQL pushdown (SQLite-backed stores; falls back to hash), "
        "or sorted-run merge joins (columnar memory store; per-stage "
        "fallback to hash)",
    )
    query_parser.add_argument(
        "--explain",
        action="store_true",
        help="print the chosen plan (pattern order, estimated vs actual "
        "cardinalities, probes) and the guard cascade order",
    )
    query_parser.add_argument(
        "--trace",
        action="store_true",
        help="print the query's span tree (guard / evaluation timings with "
        "a trace id) after the answers",
    )
    query_parser.add_argument(
        "--no-prune", action="store_true", help="disable the summary guard"
    )
    query_parser.add_argument(
        "--saturated",
        action="store_true",
        help="answer over the saturation G∞ (certain answers)",
    )
    query_parser.add_argument(
        "--limit", type=int, default=None, help="maximum distinct answers per query"
    )
    query_parser.add_argument(
        "--unsat-fraction",
        type=float,
        default=0.5,
        help="unsatisfiable share of the generated workload",
    )
    query_parser.add_argument("--seed", type=int, default=0, help="workload seed")
    query_parser.add_argument(
        "--json", dest="json_output", help="write the workload report as JSON to this file"
    )

    serve_parser = subparsers.add_parser(
        "serve", help="run the durable HTTP query server"
    )
    serve_parser.add_argument(
        "--catalog",
        help="persistent catalog file (created if absent; omitted = in-memory only)",
    )
    serve_parser.add_argument(
        "--load",
        action="append",
        default=[],
        metavar="NAME=FILE",
        help="register FILE (N-Triples/Turtle) under NAME at startup; "
        "skipped when the catalog already holds NAME (warm start wins)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_parser.add_argument(
        "--port", type=int, default=8080, help="bind port (0 picks an ephemeral port)"
    )
    serve_parser.add_argument(
        "--threads", type=int, default=8, help="query executor worker threads"
    )
    serve_parser.add_argument(
        "--kind",
        default="weak+strong",
        help="guard summary kind(s); '+'-joined names cascade, e.g. weak+strong",
    )
    serve_parser.add_argument(
        "--strategy",
        default=None,
        choices=["hash", "nested", "sql", "merge"],
        help="join strategy of base evaluation (default: sql for the sqlite "
        "backend — whole-join pushdown, the strategy that scales across "
        "threads — and hash for the memory backend; merge runs sorted-run "
        "merge joins on the columnar memory store)",
    )
    serve_parser.add_argument(
        "--backend",
        default="memory",
        choices=["memory", "sqlite"],
        help="store backend for graphs (sqlite uses per-graph database files "
        "next to the catalog for parallel reads; memory is fastest serially)",
    )
    serve_parser.add_argument(
        "--limit", type=int, default=1000, help="default answer limit per query"
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="shard the catalog across this many worker processes "
        "(scatter-gather serving via repro.cluster; 0 = in-process)",
    )
    serve_parser.add_argument(
        "--no-shm",
        action="store_true",
        help="ship cluster shards as inline pipe blobs instead of attaching "
        "workers to a shared-memory segment (the default when --workers > 0 "
        "and the platform supports named shared memory)",
    )
    serve_parser.add_argument(
        "--max-body-mb",
        type=int,
        default=64,
        help="largest accepted request body in MiB (oversized requests get 413)",
    )
    serve_parser.add_argument(
        "--verbose", action="store_true", help="log one line per HTTP request"
    )
    serve_parser.add_argument(
        "--slow-query-threshold",
        type=float,
        default=None,
        metavar="SECONDS",
        help="queries slower than this land in the slow-query log "
        "(GET /debug/slow; default 0.25)",
    )
    serve_parser.add_argument(
        "--no-telemetry",
        action="store_true",
        help="disable the metrics registry, tracing and the slow-query log "
        "(instruments become no-ops; /metrics serves an empty exposition)",
    )

    lint_parser = subparsers.add_parser(
        "lint",
        help="run the project static-analysis rules (concurrency discipline, "
        "clock choice, telemetry hygiene)",
    )
    lint_parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the installed repro package)",
    )
    lint_parser.add_argument(
        "--json", dest="json_output", action="store_true",
        help="emit findings as a JSON document",
    )
    lint_parser.add_argument(
        "--rules", help="comma-separated rule names to run (default: all)"
    )
    lint_parser.add_argument(
        "--list-rules", action="store_true", help="list available rules and exit"
    )

    return parser


def _command_summarize(args: argparse.Namespace) -> int:
    graph = _load_graph(args.input)
    summary = summarize(graph, args.kind, engine=args.engine)
    statistics = summary.statistics()
    ratio = statistics.compression_ratio
    rendered_ratio = "n/a (empty input)" if math.isnan(ratio) else f"{ratio:.5f}"
    print(
        f"{args.kind} summary: {statistics.all_node_count} nodes, "
        f"{statistics.all_edge_count} edges "
        f"(input: {statistics.input_edge_count} triples, ratio {rendered_ratio})"
    )
    if args.output:
        if args.dot:
            write_dot(summary_to_dot(summary, show_extents=True), args.output)
        else:
            dump_ntriples(summary.graph, args.output)
        print(f"written to {args.output}")
    return 0


def _command_stats(args: argparse.Namespace) -> int:
    graph = _load_graph(args.input)
    statistics = graph.statistics()
    for key, value in statistics.as_dict().items():
        print(f"{key:>28}: {value}")
    print()
    print(format_table(summary_size_table(graph)))
    return 0


def _command_saturate(args: argparse.Namespace) -> int:
    graph = _load_graph(args.input)
    saturated = saturate(graph)
    dump_ntriples(saturated, args.output)
    print(f"saturation: {len(graph)} -> {len(saturated)} triples, written to {args.output}")
    return 0


def _command_generate(args: argparse.Namespace) -> int:
    if args.dataset == "bsbm":
        graph = generate_bsbm(scale=args.scale, seed=args.seed)
    elif args.dataset == "lubm":
        graph = generate_lubm(universities=max(1, args.scale // 100 + 1), seed=args.seed)
    else:
        graph = generate_bibliography(publications=args.scale, seed=args.seed)
    dump_ntriples(graph, args.output)
    print(f"generated {len(graph)} triples into {args.output}")
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    result = run_scale_sweep(scales=args.scales, seed=args.seed, engine=args.engine)
    print(format_figure_series(result, "data_nodes", "Figure 11 (top): data nodes"))
    print(format_figure_series(result, "all_nodes", "Figure 11 (bottom): all nodes"))
    print(format_figure_series(result, "data_edges", "Figure 12 (top): data edges"))
    print(format_figure_series(result, "all_edges", "Figure 12 (bottom): all edges"))
    print(format_figure_series(result, "build_seconds", "Figure 13: summarization time (s)"))
    return 0


def _command_query(args: argparse.Namespace) -> int:
    graph = _load_graph(args.input)
    if not graph.name:
        graph.name = args.input

    if args.workload is not None:
        if args.saturated or args.no_prune:
            print(
                "error: --saturated / --no-prune apply to single queries only; "
                "the workload comparison measures the guard over the explicit graph",
                file=sys.stderr,
            )
            return 2
        report = run_query_service_workload(
            graph,
            count=args.workload,
            unsatisfiable_fraction=args.unsat_fraction,
            kind=args.kind,
            seed=args.seed,
            answer_limit=args.limit if args.limit is not None else 100,
            strategy=args.strategy,
        )
        print(format_query_service_report(report))
        if args.json_output:
            with open(args.json_output, "w", encoding="utf-8") as handle:
                json.dump(report, handle, indent=2, sort_keys=True)
            print(f"report written to {args.json_output}")
        return 0 if report["sound"] else 1

    if args.query_file:
        with open(args.query_file, "r", encoding="utf-8") as handle:
            query_text = handle.read()
    else:
        query_text = args.query
    query = parse_query(query_text, name="cli")

    limit = args.limit
    if query.is_boolean() and limit is None:
        # () is the only possible answer tuple — stop at the first embedding
        limit = 1
    with GraphCatalog() as catalog:
        entry = catalog.register(graph.name, graph=graph)
        service = QueryService(
            catalog, kind=args.kind, prune=not args.no_prune, strategy=args.strategy
        )
        answer = service.answer(
            graph.name,
            query,
            limit=limit,
            saturated=args.saturated,
            explain=args.explain,
            trace=args.trace,
        )
        if answer.pruned:
            print(
                f"pruned by the {answer.pruned_by or args.kind} summary in "
                f"{answer.guard_seconds*1000:.2f} ms (no answers on the graph)"
            )
        elif query.is_boolean():
            verdict = "yes" if answer.answers else "no"
            print(f"{verdict} ({answer.total_seconds*1000:.2f} ms)")
        else:
            print(
                f"{len(answer.answers)} answer(s) in {answer.total_seconds*1000:.2f} ms "
                f"(guard: {answer.guard_seconds*1000:.2f} ms)"
            )
            rows = sorted(
                answer.answers,
                key=lambda row: tuple(term_sort_key(term) for term in row),
            )
            for row in rows[:20]:
                print("  " + "\t".join(term.n3() for term in row))
            if len(answer.answers) > 20:
                print(f"  ... and {len(answer.answers) - 20} more")
        if args.explain:
            _print_explain(answer, entry)
        if args.trace and answer.query_trace is not None:
            print()
            print(answer.query_trace.render())
    return 0


def _print_explain(answer, entry) -> None:
    """Render the guard cascade and the executed plan of one answer."""

    def guard_size(kind: str) -> str:
        # report only what the cascade actually materialized — forcing a
        # summary build just to print its size would undo the lazy
        # escalation the ordering exists for
        size = entry.cached_pruning_size(kind)
        return f"{kind} ({size} edges)" if size is not None else f"{kind} (not built)"

    print(f"\nexplain (strategy: {answer.strategy})")
    if answer.guard_order:
        sized = ", ".join(guard_size(kind) for kind in answer.guard_order)
        print(f"  guard cascade : {sized}")
        if answer.pruned_by is not None:
            print(f"  pruned by     : {answer.pruned_by} summary (base evaluation skipped)")
        else:
            print("  guard verdict : not prunable by the cascade, evaluated on the base store")
    else:
        print("  guard cascade : skipped (query not eligible or pruning disabled)")
    saturation = answer.saturation
    if saturation is not None and saturation.get("live"):
        builds = saturation["builds"]
        # builds == 0 means the store was rehydrated from a warm-start
        # snapshot (row inserts only) — build_seconds times that instead
        origin = (
            f"built {builds}x" if builds else "rehydrated (0 rules applied)"
        )
        print(
            f"  saturation    : G∞ store {saturation['store_rows']} rows "
            f"({saturation['derived_rows']} derived), {origin} "
            f"in {saturation['build_seconds']*1000:.1f} ms, "
            f"{saturation['deltas']} delta(s), last delta "
            f"{saturation['last_delta_seconds']*1000:.2f} ms "
            f"for {saturation['last_delta_rows']} row(s)"
        )
    trace = answer.trace
    if trace is None or not trace.stages:
        return
    cached = "hit" if trace.plan_cached else "miss"
    if trace.plan_cached is None:
        print("  plan          :")
    else:
        print(f"  plan          : (cache {cached}, {trace.total_probes} probes)")
    for index, stage in enumerate(trace.stages, start=1):
        estimated = (
            "-"
            if stage.cumulative_estimate is None
            else f"{stage.cumulative_estimate:,.0f}"
        )
        produced = "-" if stage.produced is None else f"{stage.produced:,}"
        fetched = "-" if stage.fetched is None else f"{stage.fetched:,}"
        algorithm = "" if stage.algorithm is None else f", join {stage.algorithm}"
        print(
            f"    {index}. {stage.description}"
            f"  [est {estimated} rows, fetched {fetched}, actual {produced}{algorithm}]"
        )


def _sqlite_store_factory(directory: str):
    """A factory minting one file-backed SQLite store per graph.

    The files live next to the catalog and are pure caches: a warm start
    rebuilds them from the catalog file, so a stale file is simply removed
    and rewritten.  File-backed stores are what give the executor its read
    parallelism (per-thread connections, GIL released inside SQLite).
    """
    import itertools
    import os

    from repro.store.sqlite import SQLiteStore

    counter = itertools.count()
    os.makedirs(directory, exist_ok=True)

    def factory():
        path = os.path.join(directory, f"store-{next(counter)}.db")
        # remove the WAL/SHM sidecars along with the stale database: a
        # fresh db paired with a leftover hot WAL is SQLite's documented
        # corruption case
        for stale in (path, path + "-wal", path + "-shm"):
            if os.path.exists(stale):
                os.remove(stale)
        return SQLiteStore(path)

    return factory


def _command_serve(args: argparse.Namespace) -> int:
    from repro import telemetry
    from repro.server.http import ServerApp, make_server

    # telemetry enablement must precede every construction below: services
    # capture their instruments (or the no-op singletons) when built
    if args.no_telemetry:
        telemetry.set_enabled(False)
    if args.slow_query_threshold is not None:
        if args.slow_query_threshold <= 0:
            print("error: --slow-query-threshold must be positive", file=sys.stderr)
            return 2
        telemetry.SLOW_LOG.threshold_seconds = args.slow_query_threshold

    if args.backend == "sqlite":
        store_factory = _sqlite_store_factory((args.catalog or "repro-serve") + ".stores")
    else:
        from repro.store.memory import MemoryStore

        store_factory = MemoryStore
    if args.strategy is None:
        args.strategy = "sql" if args.backend == "sqlite" else "hash"

    if args.catalog:
        catalog = GraphCatalog.open(args.catalog, store_factory=store_factory)
    else:
        catalog = GraphCatalog(store_factory=store_factory)

    for spec in args.load:
        if "=" not in spec:
            print(f"error: --load expects NAME=FILE, got {spec!r}", file=sys.stderr)
            return 2
        name, file_path = spec.split("=", 1)
        if name in catalog:
            # the persisted (warm-started) copy wins: re-loading would both
            # waste the warm start and risk diverging from the durable state
            print(f"graph {name!r} already in the catalog (warm start), skipping {file_path}")
            continue
        graph = _load_graph(file_path)
        graph.name = name
        catalog.register(name, graph=graph)

    cluster = None
    if args.workers > 0:
        from repro.cluster import ClusterCoordinator

        # workers serve their shipped shards from columnar memory stores
        # whatever the coordinator's backend, so the sqlite-only "sql"
        # strategy falls back to hash inside the worker processes
        worker_strategy = args.strategy if args.strategy != "sql" else "hash"
        cluster = ClusterCoordinator(
            catalog,
            workers=args.workers,
            kind=args.kind,
            strategy=worker_strategy,
            use_shm=not args.no_shm,
        )
    app = ServerApp(
        catalog,
        kind=args.kind,
        strategy=args.strategy,
        max_workers=args.threads,
        default_limit=args.limit,
        quiet=not args.verbose,
        max_body_bytes=args.max_body_mb * 1024 * 1024,
        cluster=cluster,
    )
    server = make_server(app, args.host, args.port)
    host, port = server.server_address[:2]
    names = ", ".join(catalog.names()) or "none"
    tier = ""
    if cluster:
        shipping = "shared-memory" if cluster.use_shm else "pipe-blob"
        tier = f", cluster: {args.workers} worker process(es), {shipping} shipping"
    print(
        f"serving {len(catalog)} graph(s) [{names}] on http://{host}:{port} "
        f"(catalog: {args.catalog or 'in-memory'}, guard: {args.kind}, "
        f"strategy: {args.strategy}, workers: {args.threads}{tier})",
        flush=True,
    )
    # a SIGTERM (docker stop, kill) should run the same graceful path as
    # Ctrl-C: final checkpoint, then close
    import signal

    def _terminate(_signum, _frame):
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _terminate)
    except ValueError:  # pragma: no cover - not the main thread
        pass

    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", flush=True)
    finally:
        # graceful drain: stop accepting, let in-flight requests answer,
        # then stop executing (app.close also drains and stops the cluster
        # workers), and only then checkpoint — the durable state includes
        # every ingest a client got a 200 for
        server.server_close()
        app.drain()
        app.close()
        catalog.checkpoint()
        catalog.close()
        # the slow-query log is in-memory only: dump what the ring still
        # holds alongside the final checkpoint so it survives the process
        slow = telemetry.SLOW_LOG
        if slow.entries():
            print("slow queries (threshold "
                  f"{slow.threshold_seconds:.3f}s, {len(slow.entries())} entries):")
            print(json.dumps(slow.as_dict(), indent=2, sort_keys=True), flush=True)
    return 0


def _command_lint(args: argparse.Namespace) -> int:
    from repro.lint import main as lint_main

    forwarded: List[str] = list(args.paths)
    if args.json_output:
        forwarded.append("--json")
    if args.rules:
        forwarded.extend(["--rules", args.rules])
    if args.list_rules:
        forwarded.append("--list-rules")
    return lint_main(forwarded)


_COMMANDS = {
    "summarize": _command_summarize,
    "stats": _command_stats,
    "saturate": _command_saturate,
    "generate": _command_generate,
    "sweep": _command_sweep,
    "query": _command_query,
    "serve": _command_serve,
    "lint": _command_lint,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _COMMANDS[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
