"""The persistent catalog file behind :meth:`GraphCatalog.open`.

The paper's premise is a summary built once and exploited by a long-lived
service; this module makes the service's state *survive the process*.  A
:class:`PersistentCatalog` is one SQLite file holding, per registered
graph:

* its **metadata** (name, entry version) in ``graphs``;
* its **dictionary** in ``dictionary_terms`` — terms stored structurally
  (kind + lexical fields), one row per dense id, and re-minted through the
  term constructors on load.  Term objects are never pickled: their
  memoized hashes are salted per process, and a hash smuggled across
  processes would corrupt every dict they key;
* its **encoded triples** — columnar stores checkpoint as ``graph_columns``
  (one packed ``array('q')`` blob per column per table, written and read
  back with zero per-row SQL; ``graph_triples`` then holds only the rows
  appended after the snapshot), while row stores keep using
  ``graph_triples`` (table kind + the three integer columns, insertion
  order preserved);
* its **artifacts** in ``artifacts`` — version-tagged binary payloads for
  the weak-summary maintainer maps, the cardinality statistics and every
  summary cached at checkpoint time.  Maintainer and statistics payloads
  are pickles of pure-integer structures; summary payloads are pickles of
  *packed* plain tuples (kind tags + strings), unpacked back through the
  term constructors.

Durability discipline
---------------------
``save_graph`` rewrites one graph completely; ``append_update`` is the
write-through hook of :meth:`CatalogEntry.add_triples` and appends only
the freshly inserted rows and dictionary ids, then refreshes the
artifacts.  Either way the whole graph update is **one SQLite
transaction**: a reader (or a crash) sees the previous checkpoint or the
new one, never a torn mix.  The schema carries a version
(``schema_version`` in ``catalog_meta``); opening a file written by a
different schema raises :class:`~repro.errors.PersistenceError` instead of
misreading it.

The artifact payloads use :mod:`pickle` (stdlib, compact, fast) over
structures that contain no code and no Term objects.  Treat the catalog
file like a database file: open catalogs you wrote — unpickling an
untrusted file can execute arbitrary code.
"""

from __future__ import annotations

import pickle
import sqlite3
import sys
import threading
from array import array
from time import perf_counter
from typing import Callable, Dict, Iterable, Iterator, List, NamedTuple, Optional, Tuple

from repro import telemetry
from repro.core.summary import Summary
from repro.errors import PersistenceError
from repro.model.dictionary import Dictionary, EncodedTriple
from repro.model.graph import GraphStatistics, RDFGraph
from repro.model.terms import BlankNode, Literal, Term, URI
from repro.model.triple import Triple, TripleKind
from repro.service.statistics import CardinalityStatistics
from repro.store.base import TripleStore

__all__ = ["GraphSnapshot", "PersistentCatalog", "SCHEMA_VERSION"]

#: Bump on any incompatible change to the tables or artifact payloads.
#: Version 2 added the ``graph_columns`` packed-blob table; version-1 files
#: (pure row checkpoints) are still readable, so opening upgrades them in
#: place instead of refusing them.
SCHEMA_VERSION = 2

#: The oldest schema this build still reads (older files are refused).
MIN_SUPPORTED_SCHEMA_VERSION = 1

_PICKLE_PROTOCOL = 4

_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS catalog_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS graphs (
    name    TEXT PRIMARY KEY,
    version INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS dictionary_terms (
    graph    TEXT NOT NULL,
    id       INTEGER NOT NULL,
    kind     TEXT NOT NULL,             -- 'u' (URI) | 'b' (blank) | 'l' (literal)
    value    TEXT NOT NULL,             -- uri / label / lexical form
    datatype TEXT,                      -- literals only
    language TEXT,                      -- literals only
    PRIMARY KEY (graph, id)
);
CREATE TABLE IF NOT EXISTS graph_triples (
    graph TEXT NOT NULL,
    kind  TEXT NOT NULL,                -- TripleKind.value: data | type | schema
    s INTEGER NOT NULL,
    p INTEGER NOT NULL,
    o INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_graph_triples_graph ON graph_triples(graph);
CREATE TABLE IF NOT EXISTS graph_columns (
    graph     TEXT NOT NULL,            -- packed column snapshot (one blob per
    kind      TEXT NOT NULL,            --   column); graph_triples then holds
    rows      INTEGER NOT NULL,         --   only the post-snapshot tail rows
    byteorder TEXT NOT NULL,            -- 'little' | 'big' (the writer's native)
    s BLOB NOT NULL,
    p BLOB NOT NULL,
    o BLOB NOT NULL,
    PRIMARY KEY (graph, kind)
);
CREATE TABLE IF NOT EXISTS artifacts (
    graph   TEXT NOT NULL,
    name    TEXT NOT NULL,              -- maintainer | statistics | summary:<kind>
                                        --   | saturation | saturation_statistics
    version INTEGER NOT NULL,
    payload BLOB NOT NULL,
    PRIMARY KEY (graph, name)
);
CREATE TABLE IF NOT EXISTS saturation_rows (
    graph TEXT NOT NULL,                -- the G∞ derived-row log, in derivation order
    kind  TEXT NOT NULL,
    s INTEGER NOT NULL,
    p INTEGER NOT NULL,
    o INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_saturation_rows_graph ON saturation_rows(graph);
"""

#: Per-graph tables cleared wholesale on rewrite / delete.
_GRAPH_TABLES = (
    "dictionary_terms",
    "graph_triples",
    "graph_columns",
    "artifacts",
    "saturation_rows",
)

_KIND_BY_VALUE = {kind.value: kind for kind in TripleKind}


def _unpack_column(blob: bytes, byteorder: str) -> "array":
    """One persisted column blob back as a native-order ``array('q')``."""
    column = array("q")
    column.frombytes(blob)
    if byteorder != sys.byteorder:
        column.byteswap()
    return column


# ----------------------------------------------------------------------
# term / summary codecs (structural — no Term object ever serialized)
# ----------------------------------------------------------------------
def _term_columns(term: Term) -> Tuple[str, str, Optional[str], Optional[str]]:
    """``(kind, value, datatype, language)`` columns for one term."""
    if isinstance(term, URI):
        return ("u", term.value, None, None)
    if isinstance(term, BlankNode):
        return ("b", term.label, None, None)
    if isinstance(term, Literal):
        datatype = term.datatype.value if term.datatype is not None else None
        return ("l", term.lexical, datatype, term.language)
    raise PersistenceError(f"not a persistable RDF term: {term!r}")


def _term_from_columns(
    kind: str, value: str, datatype: Optional[str], language: Optional[str]
) -> Term:
    if kind == "u":
        return URI(value)
    if kind == "b":
        return BlankNode(value)
    if kind == "l":
        return Literal(value, datatype=URI(datatype) if datatype else None, language=language)
    raise PersistenceError(f"unknown persisted term kind {kind!r}")


def _pack_term(term: Term) -> Tuple:
    return _term_columns(term)


def _unpack_term(packed: Tuple) -> Term:
    return _term_from_columns(*packed)


def _pack_summary(summary: Summary) -> Dict[str, object]:
    """A summary as plain tuples/strings (reconstructible in any process)."""
    return {
        "kind": summary.kind,
        "source_name": summary.source_name,
        "graph_name": summary.graph.name,
        "triples": [
            (_pack_term(t.subject), _pack_term(t.predicate), _pack_term(t.object))
            for t in summary.graph
        ],
        "representative_of": [
            (_pack_term(node), _pack_term(representative))
            for node, representative in summary.representative_of.items()
        ],
        "source_statistics": (
            summary.source_statistics.as_dict()
            if summary.source_statistics is not None
            else None
        ),
    }


def _unpack_summary(payload: Dict[str, object]) -> Summary:
    graph = RDFGraph(name=payload.get("graph_name", ""))
    for subject, predicate, obj in payload["triples"]:
        graph.add(Triple(_unpack_term(subject), _unpack_term(predicate), _unpack_term(obj)))
    representative_of = {
        _unpack_term(node): _unpack_term(representative)
        for node, representative in payload["representative_of"]
    }
    source_statistics = payload.get("source_statistics")
    return Summary(
        kind=payload["kind"],
        graph=graph,
        representative_of=representative_of,
        source_statistics=(
            GraphStatistics(**source_statistics) if source_statistics is not None else None
        ),
        source_name=payload.get("source_name", ""),
    )


class GraphSnapshot(NamedTuple):
    """Everything needed to warm-start one catalog entry."""

    name: str
    version: int
    store: TripleStore
    maintainer_state: Dict[str, object]
    statistics: Optional[CardinalityStatistics]
    summaries: Dict[str, Summary]
    #: The incremental saturator's state (schema maps + derived-row log),
    #: when the graph's ``G∞`` cache was checkpointed — lets the restarted
    #: entry rehydrate the saturated store without applying a single rule.
    saturation_state: Optional[Dict[str, object]] = None
    saturation_statistics: Optional[CardinalityStatistics] = None


class PersistentCatalog:
    """One SQLite file durably backing a :class:`GraphCatalog`.

    All methods are thread-safe (a single connection serialized by an
    internal lock — persistence writes are not the serving hot path), and
    every graph-level mutation is one transaction.
    """

    def __init__(self, path: str):
        self.path = str(path)
        self._lock = threading.RLock()
        self._checkpoints = telemetry.counter("persistence.checkpoints")
        self._appends = telemetry.counter("persistence.appends")
        self._write_seconds = telemetry.histogram("persistence.write.seconds")
        #: ``graph -> rows currently persisted in saturation_rows``, so the
        #: per-ingest append path never re-counts the (potentially
        #: ``O(|G∞|)``-sized) durable derived log.  Maintained under the
        #: lock, populated lazily with one COUNT per graph, and dropped on
        #: any failed write (the next append re-counts).
        self._saturation_counts: Dict[str, int] = {}
        try:
            self._connection: Optional[sqlite3.Connection] = sqlite3.connect(
                self.path, check_same_thread=False
            )
        except sqlite3.Error as error:
            raise PersistenceError(f"cannot open catalog file {self.path!r}: {error}")
        connection = self._connection
        try:
            connection.execute("PRAGMA busy_timeout = 10000")
            # refuse to adopt a foreign SQLite database: silently creating
            # catalog tables inside e.g. a per-graph store file would both
            # mutate that file and mask the misconfiguration as an empty
            # catalog
            existing_tables = {
                row[0]
                for row in connection.execute(
                    "SELECT name FROM sqlite_master WHERE type = 'table'"
                )
            }
            if existing_tables and "catalog_meta" not in existing_tables:
                raise PersistenceError(
                    f"{self.path!r} is an SQLite database but not a catalog file "
                    f"(no catalog_meta table; found: {', '.join(sorted(existing_tables))})"
                )
            # check the version BEFORE applying any DDL: a file written by
            # a different schema must be refused untouched, not first
            # mutated with this build's tables and then rejected
            stored = None
            if "catalog_meta" in existing_tables:
                stored = connection.execute(
                    "SELECT value FROM catalog_meta WHERE key = 'schema_version'"
                ).fetchone()
                if stored is not None and not (
                    MIN_SUPPORTED_SCHEMA_VERSION <= int(stored[0]) <= SCHEMA_VERSION
                ):
                    raise PersistenceError(
                        f"catalog file {self.path!r} has schema version {stored[0]}, "
                        f"this build reads versions "
                        f"{MIN_SUPPORTED_SCHEMA_VERSION}..{SCHEMA_VERSION}"
                    )
            connection.executescript(_SCHEMA_SQL)
            if stored is None:
                connection.execute(
                    "INSERT INTO catalog_meta (key, value) VALUES ('schema_version', ?)",
                    (str(SCHEMA_VERSION),),
                )
            elif int(stored[0]) != SCHEMA_VERSION:
                # the DDL above is purely additive, so an old readable file
                # is upgraded in place (its row checkpoints stay valid)
                connection.execute(
                    "UPDATE catalog_meta SET value = ? WHERE key = 'schema_version'",
                    (str(SCHEMA_VERSION),),
                )
            connection.commit()
        except PersistenceError:
            connection.close()
            self._connection = None
            raise
        except sqlite3.Error as error:
            connection.close()
            self._connection = None
            raise PersistenceError(f"{self.path!r} is not a catalog file: {error}")

    # ------------------------------------------------------------------
    def _conn(self) -> sqlite3.Connection:
        if self._connection is None:
            raise PersistenceError("the persistent catalog has been closed")
        return self._connection

    def close(self) -> None:
        with self._lock:
            if self._connection is not None:
                self._connection.close()
                self._connection = None

    def __enter__(self) -> "PersistentCatalog":
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.close()
        return False

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def graph_names(self) -> List[str]:
        with self._lock:
            rows = self._conn().execute("SELECT name FROM graphs ORDER BY name").fetchall()
        return [row[0] for row in rows]

    def _artifact_rows(
        self,
        entry,
        saturation_state: Optional[Dict[str, object]],
        include_saturation_statistics: bool = True,
    ) -> Iterator[Tuple[str, int, bytes]]:
        """The artifact payloads of *entry* at its current version.

        *saturation_state* is the caller's one-per-transaction snapshot of
        ``entry.saturation_state()`` — re-reading it here could observe a
        ``G∞`` build that completed mid-transaction and persist an
        artifact whose ``derived_count`` disagrees with the
        ``saturation_rows`` the caller wrote.

        The saturated store's cardinality profile (distinct-id sets sized
        like ``G∞``) only rides along when *include_saturation_statistics*
        — full checkpoints; the per-ingest append path skips it to stay
        delta-sized, at the cost of one profile scan on the first
        saturated evaluation after a write-through-only restart.
        """
        yield (
            "maintainer",
            entry.version,
            pickle.dumps(entry.maintainer_state(), protocol=_PICKLE_PROTOCOL),
        )
        statistics = entry.cached_statistics()
        if statistics is not None:
            yield (
                "statistics",
                entry.version,
                pickle.dumps(statistics, protocol=_PICKLE_PROTOCOL),
            )
        if saturation_state is not None:
            # the derived-row log lives in its own appendable table; the
            # artifact carries the (small) schema maps plus the log length,
            # which load_graph uses as a torn-state check
            payload = {key: value for key, value in saturation_state.items() if key != "_derived"}
            payload["derived_count"] = len(saturation_state["_derived"])
            yield (
                "saturation",
                entry.version,
                pickle.dumps(payload, protocol=_PICKLE_PROTOCOL),
            )
            saturation_statistics = (
                entry.saturation_cached_statistics() if include_saturation_statistics else None
            )
            if saturation_statistics is not None:
                yield (
                    "saturation_statistics",
                    entry.version,
                    pickle.dumps(saturation_statistics, protocol=_PICKLE_PROTOCOL),
                )
        for kind, summary in entry.cached_summaries().items():
            yield (
                f"summary:{kind}",
                entry.version,
                pickle.dumps(_pack_summary(summary), protocol=_PICKLE_PROTOCOL),
            )

    def _write_dictionary_rows(
        self, connection: sqlite3.Connection, name: str, dictionary: Dictionary, start_id: int
    ) -> None:
        rows = []
        for term, identifier in dictionary.items():
            if identifier < start_id:
                continue
            kind, value, datatype, language = _term_columns(term)
            rows.append((name, identifier, kind, value, datatype, language))
        if rows:
            connection.executemany(
                "INSERT INTO dictionary_terms (graph, id, kind, value, datatype, language) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                rows,
            )

    def _replace_artifacts(
        self,
        connection: sqlite3.Connection,
        entry,
        saturation_state: Optional[Dict[str, object]],
        include_saturation_statistics: bool = True,
    ) -> None:
        connection.execute("DELETE FROM artifacts WHERE graph = ?", (entry.name,))
        connection.executemany(
            "INSERT INTO artifacts (graph, name, version, payload) VALUES (?, ?, ?, ?)",
            [
                (entry.name, name, version, payload)
                for name, version, payload in self._artifact_rows(
                    entry, saturation_state, include_saturation_statistics
                )
            ],
        )

    def save_graph(self, entry) -> None:
        """Durably (re)write *entry* completely, in one transaction.

        Callers must hold the entry's lock (either side for a quiescent
        entry, the read side is enough — nothing here mutates the entry).
        """
        write_start = perf_counter()
        with self._lock:
            connection = self._conn()
            # one snapshot per transaction: a concurrent (read-locked)
            # saturated query may publish the G∞ state mid-checkpoint, and
            # the rows table and the artifact must agree on one view
            saturation_state = entry.saturation_state()
            try:
                with connection:  # one transaction, rolled back on error
                    connection.execute("DELETE FROM graphs WHERE name = ?", (entry.name,))
                    for table in _GRAPH_TABLES:
                        connection.execute(f"DELETE FROM {table} WHERE graph = ?", (entry.name,))
                    connection.execute(
                        "INSERT INTO graphs (name, version) VALUES (?, ?)",
                        (entry.name, entry.version),
                    )
                    self._write_dictionary_rows(connection, entry.name, entry.store.dictionary, 0)
                    if getattr(entry.store, "supports_column_snapshot", False):
                        # columnar store: one packed blob per column, no
                        # per-row SQL at all — the warm-start fast path
                        for kind in TripleKind:
                            count, s_bytes, p_bytes, o_bytes = entry.store.column_bytes(kind)
                            connection.execute(
                                "INSERT INTO graph_columns "
                                "(graph, kind, rows, byteorder, s, p, o) "
                                "VALUES (?, ?, ?, ?, ?, ?, ?)",
                                (
                                    entry.name,
                                    kind.value,
                                    count,
                                    sys.byteorder,
                                    s_bytes,
                                    p_bytes,
                                    o_bytes,
                                ),
                            )
                    else:
                        for kind in TripleKind:
                            for batch in entry.store.scan_batches(kind):
                                connection.executemany(
                                    "INSERT INTO graph_triples (graph, kind, s, p, o) "
                                    "VALUES (?, ?, ?, ?, ?)",
                                    [
                                        (entry.name, kind.value, row[0], row[1], row[2])
                                        for row in batch
                                    ],
                                )
                    if saturation_state is not None:
                        self._insert_saturation_rows(
                            connection, entry.name, saturation_state["_derived"]
                        )
                    self._replace_artifacts(connection, entry, saturation_state)
            except sqlite3.Error as error:
                self._saturation_counts.pop(entry.name, None)
                raise PersistenceError(f"checkpoint of graph {entry.name!r} failed: {error}")
            self._saturation_counts[entry.name] = (
                len(saturation_state["_derived"]) if saturation_state is not None else 0
            )
        self._checkpoints.inc()
        self._write_seconds.observe(perf_counter() - write_start)

    def _insert_saturation_rows(
        self, connection: sqlite3.Connection, name: str, derived: Iterable[Tuple[str, int, int, int]]
    ) -> None:
        connection.executemany(
            "INSERT INTO saturation_rows (graph, kind, s, p, o) VALUES (?, ?, ?, ?, ?)",
            [(name, kind_value, s, p, o) for kind_value, s, p, o in derived],
        )

    def append_update(self, entry, rows: List[Tuple[TripleKind, EncodedTriple]]) -> None:
        """Atomically append one ``add_triples`` batch and refresh artifacts.

        Runs inside the entry's exclusive write lock (it is the
        write-through hook of :meth:`CatalogEntry.add_triples`), so the
        entry state it serializes cannot move underneath it.  Only the new
        dictionary ids, the inserted rows and the ``G∞`` derived rows the
        batch entailed are appended — the incremental checkpoint stays
        proportional to the delta; the artifacts (maintainer maps,
        statistics, the freshly snapshotted weak summary, the saturator's
        schema maps) are replaced wholesale — they are the price of a warm
        start that rebuilds nothing.
        """
        # snapshot the weak summary first so it rides along in the same
        # checkpoint: the incremental maintainer makes this summary-sized
        # work, and a warm-started process then guards its first query
        # without even a snapshot pass (lazy-init mutation is legal here —
        # the entry's init lock serializes it, and we are the only writer)
        entry.summary("weak")
        write_start = perf_counter()
        with self._lock:
            connection = self._conn()
            saturation_state = entry.saturation_state()
            try:
                with connection:
                    persisted = connection.execute(
                        "SELECT COUNT(*) FROM dictionary_terms WHERE graph = ?",
                        (entry.name,),
                    ).fetchone()[0]
                    self._write_dictionary_rows(
                        connection, entry.name, entry.store.dictionary, persisted
                    )
                    connection.executemany(
                        "INSERT INTO graph_triples (graph, kind, s, p, o) VALUES (?, ?, ?, ?, ?)",
                        [(entry.name, kind.value, row[0], row[1], row[2]) for kind, row in rows],
                    )
                    if saturation_state is not None:
                        derived = saturation_state["_derived"]
                        appended = entry.saturation_appended_rows()
                        persisted_derived = self._saturation_counts.get(entry.name)
                        if persisted_derived is None:
                            # one COUNT per graph per process lifetime; every
                            # later append stays delta-sized
                            persisted_derived = connection.execute(
                                "SELECT COUNT(*) FROM saturation_rows WHERE graph = ?",
                                (entry.name,),
                            ).fetchone()[0]
                        if persisted_derived + len(appended) == len(derived):
                            self._insert_saturation_rows(connection, entry.name, appended)
                        else:
                            # the durable log lags the live one (the G∞ cache
                            # was seeded between checkpoints): rewrite it whole
                            connection.execute(
                                "DELETE FROM saturation_rows WHERE graph = ?", (entry.name,)
                            )
                            self._insert_saturation_rows(connection, entry.name, derived)
                    elif self._saturation_counts.get(entry.name) != 0:
                        # a stale log may linger (e.g. the artifact failed to
                        # load); skip the DELETE once the log is known empty
                        connection.execute(
                            "DELETE FROM saturation_rows WHERE graph = ?", (entry.name,)
                        )
                    updated = connection.execute(
                        "UPDATE graphs SET version = ? WHERE name = ?",
                        (entry.version, entry.name),
                    )
                    if updated.rowcount == 0:
                        connection.execute(
                            "INSERT INTO graphs (name, version) VALUES (?, ?)",
                            (entry.name, entry.version),
                        )
                    self._replace_artifacts(
                        connection, entry, saturation_state, include_saturation_statistics=False
                    )
            except sqlite3.Error as error:
                self._saturation_counts.pop(entry.name, None)
                raise PersistenceError(f"incremental checkpoint of {entry.name!r} failed: {error}")
            self._saturation_counts[entry.name] = (
                len(saturation_state["_derived"]) if saturation_state is not None else 0
            )
        self._appends.inc()
        self._write_seconds.observe(perf_counter() - write_start)

    def delete_graph(self, name: str) -> None:
        """Forget *name* durably (no-op when it was never persisted)."""
        with self._lock:
            self._saturation_counts.pop(name, None)
            connection = self._conn()
            try:
                with connection:
                    connection.execute("DELETE FROM graphs WHERE name = ?", (name,))
                    for table in _GRAPH_TABLES:
                        connection.execute(f"DELETE FROM {table} WHERE graph = ?", (name,))
            except sqlite3.Error as error:
                raise PersistenceError(f"dropping graph {name!r} failed: {error}")

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def load_graph(
        self, name: str, store_factory: Callable[[], TripleStore]
    ) -> GraphSnapshot:
        """Rebuild one graph's warm-start snapshot from the file."""
        with self._lock:
            connection = self._conn()
            graph_row = connection.execute(
                "SELECT version FROM graphs WHERE name = ?", (name,)
            ).fetchone()
            if graph_row is None:
                raise PersistenceError(f"graph {name!r} is not in catalog file {self.path!r}")
            version = int(graph_row[0])
            term_rows = connection.execute(
                "SELECT id, kind, value, datatype, language FROM dictionary_terms "
                "WHERE graph = ? ORDER BY id",
                (name,),
            ).fetchall()
            triple_rows = connection.execute(
                "SELECT kind, s, p, o FROM graph_triples WHERE graph = ? ORDER BY rowid",
                (name,),
            ).fetchall()
            column_rows = connection.execute(
                "SELECT kind, rows, byteorder, s, p, o FROM graph_columns WHERE graph = ?",
                (name,),
            ).fetchall()
            artifact_rows = connection.execute(
                "SELECT name, version, payload FROM artifacts WHERE graph = ?",
                (name,),
            ).fetchall()
            saturation_row_data = connection.execute(
                "SELECT kind, s, p, o FROM saturation_rows WHERE graph = ? ORDER BY rowid",
                (name,),
            ).fetchall()

        dictionary = Dictionary()
        for position, (identifier, kind, value, datatype, language) in enumerate(term_rows):
            if identifier != position:
                raise PersistenceError(
                    f"dictionary of graph {name!r} is not dense at id {identifier} "
                    f"(expected {position}) — the catalog file is corrupt"
                )
            dictionary.encode(_term_from_columns(kind, value, datatype, language))

        store = store_factory()
        store.dictionary = dictionary
        if column_rows and getattr(store, "supports_column_snapshot", False):
            # blob fast path: three frombytes calls per table, no per-row
            # work and no index / dedup-set build (both stay deferred)
            for kind_value, count, byteorder, s_bytes, p_bytes, o_bytes in column_rows:
                loaded = store.load_column_bytes(
                    _KIND_BY_VALUE[kind_value], s_bytes, p_bytes, o_bytes, byteorder=byteorder
                )
                if loaded != count:
                    raise PersistenceError(
                        f"column snapshot of graph {name!r} ({kind_value}) holds {loaded} "
                        f"rows, expected {count} — the catalog file is corrupt"
                    )
        elif column_rows:
            # a column snapshot loaded into a store without blob adoption
            # (e.g. the sqlite backend): unpack the blobs into plain rows
            triple_rows = [
                (kind_value, s, p, o)
                for kind_value, _count, byteorder, s_bytes, p_bytes, o_bytes in column_rows
                for s, p, o in zip(
                    _unpack_column(s_bytes, byteorder),
                    _unpack_column(p_bytes, byteorder),
                    _unpack_column(o_bytes, byteorder),
                )
            ] + triple_rows
        if triple_rows:
            store._insert_rows(
                [(_KIND_BY_VALUE[kind], EncodedTriple(s, p, o)) for kind, s, p, o in triple_rows]
            )
        ensure_indexes = getattr(store, "ensure_summarization_indexes", None)
        if callable(ensure_indexes):
            ensure_indexes()

        maintainer_state: Optional[Dict[str, object]] = None
        statistics: Optional[CardinalityStatistics] = None
        summaries: Dict[str, Summary] = {}
        saturation_payload: Optional[Dict[str, object]] = None
        saturation_statistics: Optional[CardinalityStatistics] = None
        for artifact_name, artifact_version, payload in artifact_rows:
            if artifact_version != version:
                continue  # stale artifact from an interrupted lineage
            try:
                value = pickle.loads(payload)
            except Exception as error:  # noqa: BLE001 - surface as PersistenceError
                raise PersistenceError(
                    f"artifact {artifact_name!r} of graph {name!r} is unreadable: {error}"
                )
            if artifact_name == "maintainer":
                maintainer_state = value
            elif artifact_name == "statistics":
                statistics = value
            elif artifact_name == "saturation":
                saturation_payload = value
            elif artifact_name == "saturation_statistics":
                saturation_statistics = value
            elif artifact_name.startswith("summary:"):
                summaries[artifact_name.split(":", 1)[1]] = _unpack_summary(value)
        if maintainer_state is None:
            raise PersistenceError(
                f"graph {name!r} has no weak-summary maintainer state at version {version} "
                f"— the catalog file is corrupt"
            )
        saturation_state: Optional[Dict[str, object]] = None
        if saturation_payload is not None:
            derived = [
                (kind_value, s, p, o) for kind_value, s, p, o in saturation_row_data
            ]
            if len(derived) == saturation_payload.pop("derived_count", -1):
                saturation_state = dict(saturation_payload)
                saturation_state["_derived"] = derived
            else:
                # the derived log and the schema maps disagree (an older
                # lineage's rows survived a partial rewrite): the G∞ cache
                # is expendable — drop it and let the entry rebuild lazily
                saturation_statistics = None
        return GraphSnapshot(
            name=name,
            version=version,
            store=store,
            maintainer_state=maintainer_state,
            statistics=statistics,
            summaries=summaries,
            saturation_state=saturation_state,
            saturation_statistics=saturation_statistics,
        )
