"""The durable serving layer: persistent catalogs, a concurrent query
executor, and the stdlib HTTP front end.

``repro.server`` turns the query service of :mod:`repro.service` into a
restartable, concurrent daemon:

* :mod:`repro.server.persistence` — the SQLite-backed catalog file behind
  :meth:`repro.service.catalog.GraphCatalog.open`: graphs, dictionaries,
  encoded triples, weak-summary maps, cardinality statistics and cached
  summaries survive restarts, so a reopened catalog answers its first
  guarded query with zero re-summarization and zero re-scan;
* :mod:`repro.server.executor` — a bounded thread-pool
  :class:`~repro.server.executor.QueryExecutor` running queries under each
  entry's shared lock (ingest takes the exclusive side);
* :mod:`repro.server.http` — a :class:`ThreadingHTTPServer` JSON API
  (``repro serve``) exposing query, ingest, statistics and summary
  endpoints.
"""

from repro.server.executor import QueryExecutor
from repro.server.http import ServerApp, make_server, serve, start_background
from repro.server.persistence import GraphSnapshot, PersistentCatalog

__all__ = [
    "GraphSnapshot",
    "PersistentCatalog",
    "QueryExecutor",
    "ServerApp",
    "make_server",
    "serve",
    "start_background",
]
