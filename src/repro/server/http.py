"""The stdlib HTTP front end of the serving layer (``repro serve``).

A thin JSON API over one :class:`~repro.service.catalog.GraphCatalog`,
served by :class:`http.server.ThreadingHTTPServer` (one handler thread per
connection, actual query work bounded by the
:class:`~repro.server.executor.QueryExecutor` pool).  Routes:

========  =================================  =====================================
method    path                               action
========  =================================  =====================================
GET       ``/healthz``                       liveness + catalog overview
GET       ``/metrics``                       Prometheus text exposition
GET       ``/debug/slow``                    slow-query log (JSON ring buffer)
GET       ``/cluster``                       worker-pool status (404 in-process)
GET       ``/graphs``                        registered graphs with row counts
POST      ``/graphs``                        register a graph (JSON name+triples)
DELETE    ``/graphs/<name>``                 drop a graph
GET       ``/graphs/<name>/statistics``      store + cardinality + service stats
GET       ``/graphs/<name>/summary/<kind>``  summary metrics (``?format=ntriples``
                                             for the summary graph itself)
POST      ``/graphs/<name>/query``           answer a BGP query (summary-guarded)
POST      ``/graphs/<name>/triples``         ingest N-Triples (write-locked)
========  =================================  =====================================

Request and response bodies are JSON (except the optional N-Triples
rendering of a summary); RDF terms travel in N-Triples syntax.  Errors map
onto conventional status codes: unknown graph → 404, malformed queries or
triples → 400, duplicate registration → 409.

The server binds ``127.0.0.1`` by default and has no authentication —
front it with a reverse proxy before exposing it beyond localhost.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import monotonic, perf_counter
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlparse

import repro
from repro import telemetry
from repro.errors import (
    ClusterError,
    DuplicateGraphError,
    PersistenceError,
    QueryError,
    ReproError,
    UnknownGraphError,
    UnknownSummaryKindError,
)
from repro.io.ntriples import parse_ntriples, serialize_ntriples
from repro.model.graph import RDFGraph
from repro.model.terms import term_sort_key
from repro.queries.parser import parse_query
from repro.server.executor import QueryExecutor
from repro.service.catalog import GraphCatalog
from repro.service.service import QueryAnswer, QueryService

__all__ = ["ServerApp", "make_server", "serve", "start_background"]

_GRAPH_ROUTE = re.compile(r"^/graphs/(?P<name>[^/]+)(?P<rest>/.*)?$")

#: Largest accepted request body (64 MiB) — a guard against memory abuse,
#: not a statement about sensible ingest batch sizes.
_MAX_BODY_BYTES = 64 * 1024 * 1024


class _HTTPError(Exception):
    """Internal: an error with a status code, rendered as a JSON body."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class ServerApp:
    """The server's state: catalog, guarded service, executor pool.

    Parameters mirror ``repro serve``: the guard *kind* cascade and join
    *strategy* configure the single shared :class:`QueryService`;
    *max_workers* bounds concurrent query/ingest execution; *default_limit*
    caps answers per query unless the request asks for fewer;
    *max_body_bytes* is the request-size ceiling behind the 413 response
    (deployments ingesting big N-Triples batches raise it, public-facing
    ones lower it).  With a *cluster*
    (:class:`~repro.cluster.coordinator.ClusterCoordinator`) attached,
    queries, ingest, registration and drops route through the worker pool
    instead of the in-process service — same answers, multi-core QPS.
    """

    def __init__(
        self,
        catalog: GraphCatalog,
        kind: str = "weak+strong",
        strategy: str = "hash",
        max_workers: int = 8,
        default_limit: Optional[int] = 1000,
        quiet: bool = True,
        max_body_bytes: int = _MAX_BODY_BYTES,
        cluster=None,
    ):
        self.catalog = catalog
        self.service = QueryService(catalog, kind=kind, strategy=strategy)
        self.executor = QueryExecutor(self.service, max_workers=max_workers)
        self.default_limit = default_limit
        self.quiet = quiet
        if max_body_bytes <= 0:
            raise ValueError("max_body_bytes must be positive")
        self.max_body_bytes = max_body_bytes
        self.cluster = cluster
        self.started_at = monotonic()
        # request-plane instruments, captured at construction so an app
        # built after telemetry.set_enabled(False) stays dark
        self._http_requests = telemetry.counter("http.requests")
        self._http_request_seconds = telemetry.histogram("http.request.seconds")
        #: In-flight request accounting behind :meth:`drain`: a graceful
        #: shutdown lets started requests finish before anything closes.
        self._inflight = 0
        self._inflight_cv = threading.Condition()

    # ------------------------------------------------------------------
    # in-flight tracking (graceful drain)
    # ------------------------------------------------------------------
    def begin_request(self) -> None:
        with self._inflight_cv:
            self._inflight += 1

    def end_request(self) -> None:
        with self._inflight_cv:
            self._inflight -= 1
            if self._inflight <= 0:
                self._inflight_cv.notify_all()

    def drain(self, timeout: Optional[float] = 30.0) -> bool:
        """Wait until no request is mid-dispatch; ``False`` on timeout.

        Called between ``server_close()`` (stop accepting) and
        :meth:`close` (stop executing) — the SIGTERM drain of ``repro
        serve``: every request already past the socket finishes and
        responds before the executor, cluster and catalog go away.
        """
        deadline = None if timeout is None else monotonic() + timeout
        with self._inflight_cv:
            while self._inflight > 0:
                remaining = None if deadline is None else deadline - monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._inflight_cv.wait(remaining)
        return True

    # ------------------------------------------------------------------
    # route handlers (return (status, payload) pairs)
    # ------------------------------------------------------------------
    def healthz(self) -> Tuple[int, Dict]:
        payload = {
            "status": "ok",
            "graphs": self.catalog.names(),
            "persistent": self.catalog.persistent,
            "uptime_seconds": monotonic() - self.started_at,
            "version": repro.__version__,
            "workers": self.executor.max_workers,
        }
        if self.cluster is not None:
            status = self.cluster.status()
            payload["cluster"] = {
                "worker_count": status["worker_count"],
                "workers_alive": sum(
                    1 for worker in status["workers"] if worker["alive"]
                ),
                "workers": [
                    {
                        "index": worker["index"],
                        "alive": worker["alive"],
                        "last_heartbeat_age_seconds": worker.get(
                            "last_heartbeat_age_seconds"
                        ),
                    }
                    for worker in status["workers"]
                ],
            }
        return 200, payload

    def metrics(self) -> Tuple[int, str]:
        """Prometheus text exposition of the process-wide registry."""
        return 200, telemetry.REGISTRY.render_prometheus()

    def debug_slow(self) -> Tuple[int, Dict]:
        """The slow-query ring buffer as structured JSON."""
        return 200, telemetry.SLOW_LOG.as_dict()

    def cluster_status(self) -> Tuple[int, Dict]:
        if self.cluster is None:
            raise _HTTPError(404, "this server runs in-process (no cluster)")
        return 200, self.cluster.status()

    def list_graphs(self) -> Tuple[int, Dict]:
        graphs = []
        for name in self.catalog.names():
            try:
                entry = self.catalog.entry(name)
            except UnknownGraphError:
                continue  # dropped between the listing and the lookup
            with entry.rwlock.read_locked():
                if entry.closed:
                    continue
                graphs.append(
                    {
                        "name": name,
                        "version": entry.version,
                        "store": entry.store.statistics().as_dict(),
                    }
                )
        return 200, {"graphs": graphs}

    def register_graph(self, body: Dict) -> Tuple[int, Dict]:
        name = body.get("name")
        if not isinstance(name, str) or not name:
            raise _HTTPError(400, "register needs a non-empty string 'name'")
        if "/" in name:
            raise _HTTPError(
                400, "graph names must not contain '/' (they form the URL path)"
            )
        triples_text = body.get("triples", "")
        if not isinstance(triples_text, str):
            raise _HTTPError(400, "'triples' must be an N-Triples string")

        def build():
            graph = (
                parse_ntriples(triples_text, name=name) if triples_text else RDFGraph(name=name)
            )
            if self.cluster is not None:
                # registers in the shared catalog AND ships shards to every
                # cluster worker before the 201 goes out
                return self.cluster.register(name, graph=graph), len(graph)
            return self.catalog.register(name, graph=graph), len(graph)

        # the pool bounds registration work like every other heavy path: N
        # concurrent uploads never become N simultaneous graph-sized builds
        entry, triple_count = self.executor.run(build)
        return 201, {"name": name, "version": entry.version, "triples": triple_count}

    def drop_graph(self, name: str) -> Tuple[int, Dict]:
        if self.cluster is not None:
            self.cluster.drop(name)
        else:
            self.catalog.drop(name)
        return 200, {"dropped": name}

    def graph_statistics(self, name: str) -> Tuple[int, Dict]:
        entry = self.catalog.entry(name)

        def build():
            with entry.rwlock.read_locked():
                if entry.closed:
                    raise UnknownGraphError(f"graph {name!r} was dropped")
                return {
                    "name": name,
                    "version": entry.version,
                    "store": entry.store.statistics().as_dict(),
                    "cardinality": entry.statistics_index().as_dict(),
                    "build_counters": dict(entry.build_counters),
                    # G∞ maintenance costs (null until a saturated query or
                    # a warm start brought the saturated store into being)
                    "saturation": entry.saturation_metrics(),
                    "service": (
                        self.cluster.statistics.as_dict()
                        if self.cluster is not None
                        else self.service.statistics.as_dict()
                    ),
                }

        # statistics_index() can cost a full scan on first use: pool-bounded
        return 200, self.executor.run(build)

    def graph_summary(self, name: str, kind: str, query_string: Dict) -> Tuple[int, Dict]:
        entry = self.catalog.entry(name)

        def build():
            with entry.rwlock.read_locked():
                if entry.closed:
                    raise UnknownGraphError(f"graph {name!r} was dropped")
                summary = entry.summary(kind)
                rendering = (query_string.get("format") or [""])[0]
                if rendering == "ntriples":
                    return serialize_ntriples(summary.graph)
                return {
                    "name": name,
                    "kind": summary.kind,
                    "version": entry.version,
                    "statistics": summary.statistics().as_dict(),
                }

        # summary() can run a graph-sized build for non-weak kinds: pool-bounded
        return 200, self.executor.run(build)

    def query_graph(self, name: str, body: Dict) -> Tuple[int, Dict]:
        text = body.get("query")
        if not isinstance(text, str) or not text.strip():
            raise _HTTPError(400, "query needs a non-empty string 'query'")
        query = parse_query(text, name=body.get("name", "http"))
        limit = body.get("limit", self.default_limit)
        # bool is an int subclass: "limit": true must be a 400, not limit=1
        if limit is not None and (
            isinstance(limit, bool) or not isinstance(limit, int) or limit <= 0
        ):
            raise _HTTPError(400, "'limit' must be a positive integer or null")
        saturated = bool(body.get("saturated", False))
        explain = bool(body.get("explain", False))
        trace = bool(body.get("trace", False))
        if query.is_boolean() and limit is None:
            limit = 1
        if self.cluster is not None:
            # still pool-bounded: the executor caps how many scatter-gathers
            # are in flight, whatever the number of open connections
            answer = self.executor.run(
                self.cluster.answer,
                name,
                query,
                limit=limit,
                saturated=saturated,
                explain=explain,
                trace=trace,
            )
        else:
            answer = self.executor.answer(
                name, query, limit=limit, saturated=saturated, explain=explain, trace=trace
            )
        return 200, self._render_answer(answer)

    def ingest_triples(self, name: str, body: Dict) -> Tuple[int, Dict]:
        text = body.get("triples")
        if not isinstance(text, str):
            raise _HTTPError(400, "ingest needs an N-Triples string 'triples'")

        def work():
            # the parse runs pool-bounded too: N concurrent uploads must
            # not become N simultaneous graph-sized parses on handler threads
            graph = parse_ntriples(text, name=name)
            if self.cluster is not None:
                return self.cluster.add_triples(name, graph)
            return self.catalog.add_triples(name, graph)

        inserted = self.executor.run(work)
        entry = self.catalog.entry(name)
        return 200, {"name": name, "inserted": inserted, "version": entry.version}

    # ------------------------------------------------------------------
    def _render_answer(self, answer: QueryAnswer) -> Dict:
        rows = sorted(
            answer.answers, key=lambda row: tuple(term_sort_key(term) for term in row)
        )
        payload = {
            "graph": answer.graph_name,
            "query": answer.query.name or None,
            "head": [variable.name for variable in answer.query.head],
            "answers": [[term.n3() for term in row] for row in rows],
            "answer_count": len(answer.answers),
            "boolean": answer.query.is_boolean(),
            "pruned": answer.pruned,
            "prunable": answer.prunable,
            "pruned_by": answer.pruned_by,
            "guard_order": list(answer.guard_order),
            "kind": answer.kind,
            "strategy": answer.strategy,
            "guard_seconds": answer.guard_seconds,
            "evaluation_seconds": answer.evaluation_seconds,
        }
        if answer.trace is not None:
            payload["trace"] = answer.trace.as_dict()
        if answer.query_trace is not None:
            payload["query_trace"] = answer.query_trace.as_dict()
        if answer.saturation is not None:
            payload["saturation"] = answer.saturation
        if answer.cluster is not None:
            payload["cluster"] = answer.cluster
        return payload

    # ------------------------------------------------------------------
    def dispatch(self, method: str, path: str, body: Optional[Dict]) -> Tuple[int, object]:
        """Route one request; returns ``(status, payload)``.

        *payload* is a JSON-serializable object, or a plain string for
        text responses (the N-Triples summary rendering).
        """
        parsed = urlparse(path)
        route = parsed.path.rstrip("/") or "/"
        query_string = parse_qs(parsed.query)

        if route == "/healthz" and method == "GET":
            return self.healthz()
        if route == "/metrics" and method == "GET":
            return self.metrics()
        if route == "/debug/slow" and method == "GET":
            return self.debug_slow()
        if route == "/cluster" and method == "GET":
            return self.cluster_status()
        if route == "/graphs" and method == "GET":
            return self.list_graphs()
        if route == "/graphs" and method == "POST":
            return self.register_graph(body or {})

        match = _GRAPH_ROUTE.match(route)
        if match is None:
            raise _HTTPError(404, f"no such route: {method} {route}")
        # graph names travel percent-encoded in the path (clients encode
        # spaces etc.); names containing '/' are rejected at registration
        name = unquote(match.group("name"))
        rest = match.group("rest") or ""

        if rest == "" and method == "DELETE":
            return self.drop_graph(name)
        if rest == "/statistics" and method == "GET":
            return self.graph_statistics(name)
        if rest.startswith("/summary/") and method == "GET":
            return self.graph_summary(name, unquote(rest[len("/summary/") :]), query_string)
        if rest == "/query" and method == "POST":
            return self.query_graph(name, body or {})
        if rest == "/triples" and method == "POST":
            return self.ingest_triples(name, body or {})
        raise _HTTPError(404, f"no such route: {method} {route}")

    def close(self) -> None:
        """Shut down the pool and an attached cluster (the app adopts the
        cluster it was handed; the catalog stays owned by the caller)."""
        self.executor.shutdown()
        if self.cluster is not None:
            self.cluster.close()


class _Handler(BaseHTTPRequestHandler):
    """Request handler bound to one :class:`ServerApp` (see make_server)."""

    app: ServerApp  # injected by make_server
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    # ------------------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if not self.app.quiet:
            super().log_message(format, *args)

    def _body_length(self) -> int:
        if self.headers.get("Transfer-Encoding"):
            # we only frame bodies by Content-Length; leaving chunked bytes
            # unread would desynchronize the connection (request smuggling
            # behind a proxy), so refuse and close
            self.close_connection = True
            raise _HTTPError(501, "chunked request bodies are not supported")
        try:
            return int(self.headers.get("Content-Length") or 0)
        except ValueError:
            # we cannot know how many body bytes follow — the connection
            # is unusable for further requests
            self.close_connection = True
            raise _HTTPError(400, "malformed Content-Length header")

    def _drain_body(self) -> None:
        """Read and discard a request body (methods that should not have one)."""
        length = self._body_length()
        while length > 0:
            chunk = self.rfile.read(min(length, 65536))
            if not chunk:
                break
            length -= len(chunk)

    def _read_body(self) -> Optional[Dict]:
        length = self._body_length()
        if length <= 0:
            return None
        if length > self.app.max_body_bytes:
            # refusing to read the body leaves it on the wire: close the
            # connection instead of parsing those bytes as the next request
            self.close_connection = True
            raise _HTTPError(
                413, f"request body exceeds {self.app.max_body_bytes} bytes"
            )
        raw = self.rfile.read(length)
        if not raw:
            return None
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _HTTPError(400, f"request body is not valid JSON: {error}")
        if not isinstance(body, dict):
            raise _HTTPError(400, "request body must be a JSON object")
        return body

    def _respond(self, status: int, payload: object) -> None:
        if isinstance(payload, str):
            data = payload.encode("utf-8")
            content_type = "text/plain; charset=utf-8"
        else:
            data = json.dumps(payload, sort_keys=True).encode("utf-8")
            content_type = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(data)

    def _handle(self, method: str) -> None:
        self.app.begin_request()
        start = perf_counter()
        try:
            self._handle_inner(method)
        finally:
            self.app._http_requests.inc()
            self.app._http_request_seconds.observe(perf_counter() - start)
            self.app.end_request()

    def _handle_inner(self, method: str) -> None:
        try:
            if method in ("POST", "PUT"):
                body = self._read_body()
            else:
                # drain any body a GET/DELETE smuggled in: unread bytes
                # would desynchronize the keep-alive connection (the next
                # request line would be parsed out of this body)
                self._drain_body()
                body = None
            status, payload = self.app.dispatch(method, self.path, body)
        except _HTTPError as error:
            self._respond(error.status, {"error": str(error)})
        except UnknownGraphError as error:
            self._respond(404, {"error": str(error)})
        except DuplicateGraphError as error:
            self._respond(409, {"error": str(error)})
        except (QueryError, UnknownSummaryKindError) as error:
            self._respond(400, {"error": str(error)})
        except PersistenceError as error:
            # a durability failure is the server's fault, never the client's
            self._respond(500, {"error": f"persistence failure: {error}"})
        except ClusterError as error:
            # the worker pool failed past its retry budget: the server is
            # degraded, not the request malformed — 503 invites a retry
            self._respond(503, {"error": f"cluster failure: {error}"})
        except ReproError as error:
            # parse errors on ingest bodies, malformed terms, store issues
            self._respond(400, {"error": str(error)})
        except Exception as error:  # noqa: BLE001 - last-resort 500
            self._respond(500, {"error": f"internal error: {error}"})
        else:
            self._respond(status, payload)

    def do_GET(self):  # noqa: N802 - stdlib naming
        self._handle("GET")

    def do_POST(self):  # noqa: N802
        self._handle("POST")

    def do_DELETE(self):  # noqa: N802
        self._handle("DELETE")


def make_server(app: ServerApp, host: str = "127.0.0.1", port: int = 0) -> ThreadingHTTPServer:
    """A :class:`ThreadingHTTPServer` serving *app* (``port=0`` → ephemeral).

    The caller owns the server: run ``serve_forever()`` (typically on a
    thread), and ``shutdown()`` + ``server_close()`` when done.
    """

    handler = type("BoundHandler", (_Handler,), {"app": app})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


def serve(
    app: ServerApp,
    host: str = "127.0.0.1",
    port: int = 8080,
    ready_callback=None,
) -> None:
    """Serve *app* until interrupted (the blocking CLI entry point)."""
    server = make_server(app, host, port)
    if ready_callback is not None:
        ready_callback(server)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        app.drain()
        app.close()


def start_background(app: ServerApp, host: str = "127.0.0.1", port: int = 0):
    """Start a server on a daemon thread; returns ``(server, thread)``.

    Convenience for tests and benchmarks: the actual bound port is
    ``server.server_address[1]``.
    """
    server = make_server(app, host, port)
    # a tight poll interval keeps shutdown() snappy (tests/benchmarks start
    # and stop many servers; the default 0.5s poll dominates otherwise)
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()
    return server, thread
