"""The concurrent query executor: a bounded thread pool over the service.

One :class:`QueryExecutor` fronts a :class:`~repro.service.service.QueryService`
with a :class:`~concurrent.futures.ThreadPoolExecutor`.  Concurrency
correctness does not live here — it lives in the per-entry
reader/writer locks (:class:`~repro.service.catalog.CatalogEntry.rwlock`,
taken on the read side by ``QueryService.answer`` and on the write side by
``CatalogEntry.add_triples``) and in the per-thread read connections of the
SQLite store.  What the executor adds is the *shape* of a server:

* a bounded worker pool, so a thousand HTTP connections do not become a
  thousand concurrent joins (the HTTP front end parks its handler threads
  on futures instead);
* named worker threads (``repro-query-N``) for debuggability;
* fan-out helpers (:meth:`map_answers`) that preserve input order while
  overlapping execution — the serial/concurrent QPS comparison of
  ``benchmarks/bench_server.py`` runs through exactly this path.

On CPython the GIL serializes the pure-Python join work; the parallel wins
come from the blocks that release it — above all SQLite's C evaluation on
the file-backed backend, which is why the throughput benchmark serves from
``SQLiteStore`` files rather than in-memory dicts.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor
from typing import Iterable, List, Optional, Sequence, Union

from repro import telemetry
from repro.model.triple import Triple
from repro.queries.bgp import BGPQuery
from repro.service.service import QueryAnswer, QueryService
from repro.telemetry import QueryTrace

__all__ = ["QueryExecutor"]


class QueryExecutor:
    """A bounded thread pool answering queries through one service.

    Parameters
    ----------
    service:
        The (thread-safe) query service to answer through.
    max_workers:
        Upper bound on concurrently executing queries/ingests.
    """

    def __init__(self, service: QueryService, max_workers: int = 8):
        if max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.service = service
        self.catalog = service.catalog
        self.max_workers = max_workers
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-query"
        )
        # the queue-depth gauge samples the pool's backlog at scrape time;
        # several executors (several apps in one test process) sum into the
        # same gauge, each removing its sampler on shutdown
        self._depth_gauge = telemetry.gauge("executor.queue.depth")
        self._depth_sampler = lambda: self._pool._work_queue.qsize()
        self._depth_gauge.add_callback(self._depth_sampler)

    # ------------------------------------------------------------------
    # queries (the entry's shared lock is taken inside QueryService.answer)
    # ------------------------------------------------------------------
    def submit(
        self,
        graph_name: str,
        query: BGPQuery,
        limit: Optional[int] = None,
        saturated: bool = False,
        explain: bool = False,
        trace: Union[bool, QueryTrace] = False,
    ) -> "Future[QueryAnswer]":
        """Schedule one query; returns its future."""
        return self._pool.submit(
            self.service.answer,
            graph_name,
            query,
            limit=limit,
            saturated=saturated,
            explain=explain,
            trace=trace,
        )

    def answer(
        self,
        graph_name: str,
        query: BGPQuery,
        limit: Optional[int] = None,
        saturated: bool = False,
        explain: bool = False,
        trace: Union[bool, QueryTrace] = False,
    ) -> QueryAnswer:
        """Answer one query on a pool worker and wait for it.

        This is what request handlers call: the pool bounds how many joins
        run at once, whatever the number of open connections.
        """
        return self.submit(
            graph_name, query, limit=limit, saturated=saturated, explain=explain, trace=trace
        ).result()

    def map_answers(
        self,
        graph_name: str,
        queries: Sequence[BGPQuery],
        limit: Optional[int] = None,
        saturated: bool = False,
    ) -> List[QueryAnswer]:
        """Answer *queries* concurrently, results in input order."""
        futures = [
            self.submit(graph_name, query, limit=limit, saturated=saturated)
            for query in queries
        ]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------
    # ingest (the entry's exclusive lock is taken inside add_triples)
    # ------------------------------------------------------------------
    def submit_ingest(self, graph_name: str, triples: Iterable[Triple]) -> "Future[int]":
        """Schedule an ingest batch; returns a future of the inserted count."""
        return self._pool.submit(self.catalog.add_triples, graph_name, triples)

    def ingest(self, graph_name: str, triples: Iterable[Triple]) -> int:
        """Ingest on a pool worker and wait for the inserted count."""
        return self.submit_ingest(graph_name, triples).result()

    # ------------------------------------------------------------------
    def run(self, function, *args, **kwargs):
        """Run an arbitrary callable on the pool and wait for it.

        The HTTP front end routes its other heavy operations (graph
        registration, summary builds, statistics scans) through this, so
        the ``max_workers`` bound covers *all* expensive work — not only
        queries and ingest.
        """
        return self._pool.submit(function, *args, **kwargs).result()

    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work and (optionally) wait for in-flight tasks."""
        self._depth_gauge.remove_callback(self._depth_sampler)
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "QueryExecutor":
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.shutdown()
        return False

    def __repr__(self):
        return f"<QueryExecutor workers={self.max_workers} service={self.service.kind!r}>"
