"""RDF terms: URIs (IRIs), literals and blank nodes.

The paper (Section 2.1) considers well-formed triples built from uniform
resource identifiers, typed or un-typed literals, and blank nodes.  This
module provides small immutable value objects for each of the three kinds of
term, plus helpers to classify and render them.

Terms are deliberately lightweight (``__slots__``-based, hashable, totally
ordered within their kind) because graphs routinely contain millions of them
and they are used as dictionary keys throughout the library.  Since terms
are immutable, every class memoizes its hash in a dedicated slot: during
dictionary-encoding a term is hashed several times (set membership, id
lookup, index maintenance), and recomputing a tuple hash over the lexical
value each time dominated the load phase of the encoded pipeline.
"""

from __future__ import annotations

from typing import Union

from repro.errors import MalformedTripleError

__all__ = [
    "URI",
    "Literal",
    "BlankNode",
    "Term",
    "is_uri",
    "is_literal",
    "is_blank",
    "term_sort_key",
]


class URI:
    """A URI reference (IRI) identifying a resource.

    Parameters
    ----------
    value:
        The URI string, e.g. ``"http://example.org/book/doi1"``.
    """

    __slots__ = ("value", "_hash")

    def __init__(self, value: str):
        if not isinstance(value, str) or not value:
            raise MalformedTripleError(f"URI value must be a non-empty string, got {value!r}")
        self.value = value
        self._hash = hash(("uri", value))

    def __eq__(self, other):
        return isinstance(other, URI) and self.value == other.value

    def __hash__(self):
        return self._hash

    def __lt__(self, other):
        if not isinstance(other, URI):
            return NotImplemented
        return self.value < other.value

    def __repr__(self):
        return f"URI({self.value!r})"

    def __str__(self):
        return self.value

    def n3(self) -> str:
        """Render in N-Triples syntax: ``<uri>``."""
        return f"<{self.value}>"

    @property
    def local_name(self) -> str:
        """Heuristic local name: the fragment after the last ``#`` or ``/``."""
        value = self.value
        for separator in ("#", "/"):
            if separator in value:
                candidate = value.rsplit(separator, 1)[1]
                if candidate:
                    return candidate
        return value


class Literal:
    """An RDF literal: a lexical value with an optional datatype or language tag.

    Parameters
    ----------
    lexical:
        The lexical form, e.g. ``"Le Port des Brumes"`` or ``"1932"``.
    datatype:
        Optional datatype :class:`URI`.
    language:
        Optional BCP-47 language tag, e.g. ``"en"``.  A literal cannot carry
        both a datatype and a language tag.
    """

    __slots__ = ("lexical", "datatype", "language", "_hash")

    def __init__(self, lexical: str, datatype: "URI | None" = None, language: "str | None" = None):
        if not isinstance(lexical, str):
            lexical = str(lexical)
        if datatype is not None and language is not None:
            raise MalformedTripleError("a literal cannot have both a datatype and a language tag")
        if datatype is not None and not isinstance(datatype, URI):
            datatype = URI(str(datatype))
        self.lexical = lexical
        self.datatype = datatype
        self.language = language
        self._hash = hash(("literal", lexical, datatype, language))

    def __eq__(self, other):
        return (
            isinstance(other, Literal)
            and self.lexical == other.lexical
            and self.datatype == other.datatype
            and self.language == other.language
        )

    def __hash__(self):
        return self._hash

    def __lt__(self, other):
        if not isinstance(other, Literal):
            return NotImplemented
        return self._sort_tuple() < other._sort_tuple()

    def _sort_tuple(self):
        datatype = self.datatype.value if self.datatype else ""
        return (self.lexical, datatype, self.language or "")

    def __repr__(self):
        extra = ""
        if self.datatype is not None:
            extra = f", datatype={self.datatype.value!r}"
        elif self.language is not None:
            extra = f", language={self.language!r}"
        return f"Literal({self.lexical!r}{extra})"

    def __str__(self):
        return self.lexical

    def n3(self) -> str:
        """Render in N-Triples syntax with escaping."""
        escaped = (
            self.lexical.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\r", "\\r")
            .replace("\t", "\\t")
        )
        rendered = f'"{escaped}"'
        if self.language is not None:
            return f"{rendered}@{self.language}"
        if self.datatype is not None:
            return f"{rendered}^^{self.datatype.n3()}"
        return rendered


class BlankNode:
    """A blank node: an unknown URI or literal token (labelled null).

    Blank nodes are identified by a local label; two blank nodes with the same
    label inside the same graph denote the same unknown resource.
    """

    __slots__ = ("label", "_hash")

    _counter = 0

    def __init__(self, label: "str | None" = None):
        if label is None:
            BlankNode._counter += 1
            label = f"b{BlankNode._counter}"
        if not isinstance(label, str) or not label:
            raise MalformedTripleError(f"blank node label must be a non-empty string, got {label!r}")
        self.label = label
        self._hash = hash(("blank", label))

    def __eq__(self, other):
        return isinstance(other, BlankNode) and self.label == other.label

    def __hash__(self):
        return self._hash

    def __lt__(self, other):
        if not isinstance(other, BlankNode):
            return NotImplemented
        return self.label < other.label

    def __repr__(self):
        return f"BlankNode({self.label!r})"

    def __str__(self):
        return f"_:{self.label}"

    def n3(self) -> str:
        """Render in N-Triples syntax: ``_:label``."""
        return f"_:{self.label}"


Term = Union[URI, Literal, BlankNode]


def is_uri(term) -> bool:
    """Return ``True`` when *term* is a :class:`URI`."""
    return isinstance(term, URI)


def is_literal(term) -> bool:
    """Return ``True`` when *term* is a :class:`Literal`."""
    return isinstance(term, Literal)


def is_blank(term) -> bool:
    """Return ``True`` when *term* is a :class:`BlankNode`."""
    return isinstance(term, BlankNode)


def term_sort_key(term: Term):
    """A total order over heterogeneous terms (URIs < blanks < literals).

    Useful to produce deterministic serializations and canonical forms.
    """
    if isinstance(term, URI):
        return (0, term.value, "", "")
    if isinstance(term, BlankNode):
        return (1, term.label, "", "")
    if isinstance(term, Literal):
        datatype = term.datatype.value if term.datatype else ""
        return (2, term.lexical, datatype, term.language or "")
    raise TypeError(f"not an RDF term: {term!r}")
