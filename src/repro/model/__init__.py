"""Data model: RDF terms, triples, graphs and dictionary encoding."""

from repro.model.dictionary import Dictionary, EncodedGraphView, EncodedTriple
from repro.model.graph import GraphStatistics, RDFGraph
from repro.model.namespaces import (
    EX,
    OWL,
    RDF,
    RDF_TYPE,
    RDFS,
    RDFS_DOMAIN,
    RDFS_RANGE,
    RDFS_SUBCLASSOF,
    RDFS_SUBPROPERTYOF,
    SCHEMA_PROPERTIES,
    XSD,
    Namespace,
    is_schema_property,
    is_type_property,
)
from repro.model.terms import (
    URI,
    BlankNode,
    Literal,
    Term,
    is_blank,
    is_literal,
    is_uri,
    term_sort_key,
)
from repro.model.triple import Triple, TripleKind, classify_triple

__all__ = [
    "Dictionary",
    "EncodedGraphView",
    "EncodedTriple",
    "GraphStatistics",
    "RDFGraph",
    "Namespace",
    "EX",
    "OWL",
    "RDF",
    "RDFS",
    "XSD",
    "RDF_TYPE",
    "RDFS_DOMAIN",
    "RDFS_RANGE",
    "RDFS_SUBCLASSOF",
    "RDFS_SUBPROPERTYOF",
    "SCHEMA_PROPERTIES",
    "is_schema_property",
    "is_type_property",
    "URI",
    "BlankNode",
    "Literal",
    "Term",
    "is_blank",
    "is_literal",
    "is_uri",
    "term_sort_key",
    "Triple",
    "TripleKind",
    "classify_triple",
]
