"""Well-known RDF namespaces and the RDFS vocabulary used by the paper.

The paper relies on four RDF Schema constraint properties (Figure 1, bottom):

* ``rdfs:subClassOf``     (written ``≺sc``)
* ``rdfs:subPropertyOf``  (written ``≺sp``)
* ``rdfs:domain``         (written ``←d``)
* ``rdfs:range``          (written ``→r``)

and the ``rdf:type`` property (written ``τ``) for class assertions.
"""

from __future__ import annotations

from repro.model.terms import URI

__all__ = [
    "Namespace",
    "RDF",
    "RDFS",
    "XSD",
    "OWL",
    "EX",
    "RDF_TYPE",
    "RDFS_SUBCLASSOF",
    "RDFS_SUBPROPERTYOF",
    "RDFS_DOMAIN",
    "RDFS_RANGE",
    "SCHEMA_PROPERTIES",
    "is_schema_property",
    "is_type_property",
]


class Namespace:
    """A URI prefix from which terms can be minted by attribute access.

    Example
    -------
    >>> ns = Namespace("http://example.org/")
    >>> ns.Book
    URI('http://example.org/Book')
    >>> ns["has title"]
    URI('http://example.org/has title')
    """

    def __init__(self, prefix: str):
        self._prefix = prefix

    @property
    def prefix(self) -> str:
        return self._prefix

    def term(self, local_name: str) -> URI:
        """Mint the URI ``prefix + local_name``."""
        return URI(self._prefix + local_name)

    def __getattr__(self, local_name: str) -> URI:
        if local_name.startswith("_"):
            raise AttributeError(local_name)
        return self.term(local_name)

    def __getitem__(self, local_name: str) -> URI:
        return self.term(local_name)

    def __contains__(self, uri) -> bool:
        value = uri.value if isinstance(uri, URI) else str(uri)
        return value.startswith(self._prefix)

    def __repr__(self):
        return f"Namespace({self._prefix!r})"


RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")
OWL = Namespace("http://www.w3.org/2002/07/owl#")

#: Default example namespace used by tests, examples and dataset generators.
EX = Namespace("http://example.org/")

#: ``rdf:type`` — written τ throughout the paper.
RDF_TYPE = RDF.term("type")

#: ``rdfs:subClassOf`` — written ≺sc.
RDFS_SUBCLASSOF = RDFS.term("subClassOf")

#: ``rdfs:subPropertyOf`` — written ≺sp.
RDFS_SUBPROPERTYOF = RDFS.term("subPropertyOf")

#: ``rdfs:domain`` — written ←d.
RDFS_DOMAIN = RDFS.term("domain")

#: ``rdfs:range`` — written →r.
RDFS_RANGE = RDFS.term("range")

#: The four RDFS constraint properties forming the schema component S_G.
SCHEMA_PROPERTIES = frozenset(
    {RDFS_SUBCLASSOF, RDFS_SUBPROPERTYOF, RDFS_DOMAIN, RDFS_RANGE}
)


def is_schema_property(uri) -> bool:
    """Return ``True`` when *uri* is one of the four RDFS constraint properties."""
    return uri in SCHEMA_PROPERTIES


def is_type_property(uri) -> bool:
    """Return ``True`` when *uri* is ``rdf:type``."""
    return uri == RDF_TYPE
