"""The central :class:`RDFGraph` container.

An :class:`RDFGraph` is a set of :class:`~repro.model.triple.Triple` objects
partitioned, as in Section 2.1 of the paper, into the data component ``D_G``,
the type component ``T_G`` and the schema component ``S_G``.  On top of plain
set semantics the class maintains the indexes needed by summarization and
query evaluation:

* triples by predicate, by subject and by object;
* the set of *data nodes*, *class nodes* and *property nodes* as defined by
  the graph-based representation of an RDF graph;
* the set of types of each resource;
* size and cardinality statistics (``|G|_n``, ``|G|_e``, ``|G|^0_x``).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, Optional, Set

from repro.model.namespaces import RDF_TYPE, RDFS_DOMAIN, RDFS_RANGE, RDFS_SUBPROPERTYOF
from repro.model.terms import BlankNode, Literal, Term, URI, is_literal
from repro.model.triple import Triple, TripleKind

__all__ = ["RDFGraph", "GraphStatistics"]


class GraphStatistics:
    """Size and cardinality metrics of a graph (Section 2.1 notations).

    Attributes
    ----------
    node_count:
        ``|G|_n`` — number of distinct nodes (subjects and objects).
    edge_count:
        ``|G|_e`` — number of triples.
    distinct_subjects / distinct_properties / distinct_objects:
        ``|G|^0_s``, ``|G|^0_p``, ``|G|^0_o``.
    data_edge_count / type_edge_count / schema_edge_count:
        Sizes of the three components.
    distinct_data_properties:
        ``|D_G|^0_p`` — the quantity that bounds the weak summary size
        (Proposition 4).
    distinct_classes:
        ``|T_G|^0_o`` — number of distinct class URIs used in type triples.
    """

    __slots__ = (
        "node_count",
        "edge_count",
        "distinct_subjects",
        "distinct_properties",
        "distinct_objects",
        "data_edge_count",
        "type_edge_count",
        "schema_edge_count",
        "distinct_data_properties",
        "distinct_classes",
    )

    def __init__(self, **values):
        for name in self.__slots__:
            setattr(self, name, values.get(name, 0))

    def as_dict(self) -> Dict[str, int]:
        """Return the statistics as a plain dictionary."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self):
        inner = ", ".join(f"{name}={getattr(self, name)}" for name in self.__slots__)
        return f"GraphStatistics({inner})"

    def __eq__(self, other):
        return isinstance(other, GraphStatistics) and self.as_dict() == other.as_dict()


class RDFGraph:
    """A mutable set of RDF triples with component and adjacency indexes.

    Parameters
    ----------
    triples:
        Optional iterable of triples to load initially.
    name:
        Optional human-readable name used in ``repr`` and reports.
    """

    def __init__(self, triples: Optional[Iterable[Triple]] = None, name: str = ""):
        self.name = name
        self._version = 0
        self._triples: Set[Triple] = set()
        self._data: Set[Triple] = set()
        self._types: Set[Triple] = set()
        self._schema: Set[Triple] = set()
        # adjacency indexes
        self._by_subject: Dict[Term, Set[Triple]] = defaultdict(set)
        self._by_predicate: Dict[URI, Set[Triple]] = defaultdict(set)
        self._by_object: Dict[Term, Set[Triple]] = defaultdict(set)
        # node type index: resource -> set of class URIs
        self._types_of: Dict[Term, Set[URI]] = defaultdict(set)
        if triples is not None:
            self.add_all(triples)

    # ------------------------------------------------------------------
    # basic set protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triples

    def __eq__(self, other):
        return isinstance(other, RDFGraph) and self._triples == other._triples

    def __repr__(self):
        label = f" {self.name!r}" if self.name else ""
        return f"<RDFGraph{label}: {len(self._triples)} triples>"

    def copy(self, name: Optional[str] = None) -> "RDFGraph":
        """Return a shallow copy of the graph (triples are immutable)."""
        return RDFGraph(self._triples, name=self.name if name is None else name)

    @property
    def version(self) -> int:
        """Mutation counter, bumped on every successful add or discard.

        Derived artifacts that are expensive to rebuild (the cached
        saturation of :func:`repro.schema.saturation.saturate_cached`, the
        summary caches of :class:`repro.service.catalog.GraphCatalog`) pair
        this counter with the graph's identity to detect staleness, which an
        edge count alone cannot (an add followed by a discard leaves the
        length unchanged).
        """
        return self._version

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, triple: Triple) -> bool:
        """Add *triple*; return ``True`` when it was not already present."""
        if triple in self._triples:
            return False
        self._version += 1
        self._triples.add(triple)
        kind = triple.kind
        if kind is TripleKind.DATA:
            self._data.add(triple)
        elif kind is TripleKind.TYPE:
            self._types.add(triple)
            if isinstance(triple.object, URI):
                self._types_of[triple.subject].add(triple.object)
        else:
            self._schema.add(triple)
        self._by_subject[triple.subject].add(triple)
        self._by_predicate[triple.predicate].add(triple)
        self._by_object[triple.object].add(triple)
        return True

    def add_triple(self, subject: Term, predicate: URI, obj: Term) -> bool:
        """Convenience: build and add a triple from its three terms."""
        return self.add(Triple(subject, predicate, obj))

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Add every triple in *triples*; return how many were new."""
        added = 0
        for triple in triples:
            if self.add(triple):
                added += 1
        return added

    def discard(self, triple: Triple) -> bool:
        """Remove *triple* if present; return ``True`` when it was removed."""
        if triple not in self._triples:
            return False
        self._version += 1
        self._triples.discard(triple)
        self._data.discard(triple)
        self._schema.discard(triple)
        if triple in self._types:
            self._types.discard(triple)
            if isinstance(triple.object, URI):
                remaining = any(
                    other != triple
                    and other.predicate == RDF_TYPE
                    and other.object == triple.object
                    for other in self._by_subject.get(triple.subject, ())
                )
                if not remaining:
                    self._types_of[triple.subject].discard(triple.object)
                    if not self._types_of[triple.subject]:
                        del self._types_of[triple.subject]
        for index, key in (
            (self._by_subject, triple.subject),
            (self._by_predicate, triple.predicate),
            (self._by_object, triple.object),
        ):
            bucket = index.get(key)
            if bucket is not None:
                bucket.discard(triple)
                if not bucket:
                    del index[key]
        return True

    # ------------------------------------------------------------------
    # components (triple-based representation)
    # ------------------------------------------------------------------
    @property
    def data_triples(self) -> Set[Triple]:
        """The data component ``D_G`` (as a read-only view by convention)."""
        return self._data

    @property
    def type_triples(self) -> Set[Triple]:
        """The type component ``T_G``."""
        return self._types

    @property
    def schema_triples(self) -> Set[Triple]:
        """The schema component ``S_G``."""
        return self._schema

    def data_graph(self) -> "RDFGraph":
        """Return ``D_G`` as a standalone graph."""
        return RDFGraph(self._data, name=f"{self.name}.data")

    def type_graph(self) -> "RDFGraph":
        """Return ``T_G`` as a standalone graph."""
        return RDFGraph(self._types, name=f"{self.name}.types")

    def schema_graph(self) -> "RDFGraph":
        """Return ``S_G`` as a standalone graph."""
        return RDFGraph(self._schema, name=f"{self.name}.schema")

    # ------------------------------------------------------------------
    # matching
    # ------------------------------------------------------------------
    def triples(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[URI] = None,
        obj: Optional[Term] = None,
    ) -> Iterator[Triple]:
        """Iterate over triples matching the given pattern.

        ``None`` acts as a wildcard.  The most selective available index is
        used to drive the scan.
        """
        candidates: Iterable[Triple]
        if subject is not None:
            candidates = self._by_subject.get(subject, ())
        elif obj is not None:
            candidates = self._by_object.get(obj, ())
        elif predicate is not None:
            candidates = self._by_predicate.get(predicate, ())
        else:
            candidates = self._triples
        for triple in candidates:
            if subject is not None and triple.subject != subject:
                continue
            if predicate is not None and triple.predicate != predicate:
                continue
            if obj is not None and triple.object != obj:
                continue
            yield triple

    def subjects(self, predicate: Optional[URI] = None, obj: Optional[Term] = None) -> Set[Term]:
        """Distinct subjects of triples matching ``(?, predicate, obj)``."""
        return {t.subject for t in self.triples(None, predicate, obj)}

    def objects(self, subject: Optional[Term] = None, predicate: Optional[URI] = None) -> Set[Term]:
        """Distinct objects of triples matching ``(subject, predicate, ?)``."""
        return {t.object for t in self.triples(subject, predicate, None)}

    def predicates(self) -> Set[URI]:
        """Distinct properties used in the graph."""
        return set(self._by_predicate.keys())

    def types_of(self, node: Term) -> Set[URI]:
        """The (explicit) set of classes *node* belongs to."""
        return set(self._types_of.get(node, set()))

    def has_type(self, node: Term) -> bool:
        """``True`` when *node* is the subject of at least one type triple."""
        return node in self._types_of

    # ------------------------------------------------------------------
    # graph-based representation: node kinds (Section 2.1)
    # ------------------------------------------------------------------
    def nodes(self) -> Set[Term]:
        """All nodes: subjects and objects of triples in the graph."""
        result: Set[Term] = set()
        for triple in self._triples:
            result.add(triple.subject)
            result.add(triple.object)
        return result

    def data_nodes(self) -> Set[Term]:
        """Data nodes: URIs or literals occurring as subject or object of a
        data triple, or as the subject of a type triple."""
        result: Set[Term] = set()
        for triple in self._data:
            result.add(triple.subject)
            result.add(triple.object)
        for triple in self._types:
            result.add(triple.subject)
        return result

    def class_nodes(self) -> Set[Term]:
        """Class nodes: URIs in the object position of type triples."""
        return {t.object for t in self._types if isinstance(t.object, URI)}

    def property_nodes(self) -> Set[Term]:
        """Property nodes: URIs appearing as subject or object of ``≺sp``
        triples, or as subject of ``←d`` / ``→r`` triples."""
        result: Set[Term] = set()
        for triple in self._schema:
            if triple.predicate == RDFS_SUBPROPERTYOF:
                result.add(triple.subject)
                result.add(triple.object)
            elif triple.predicate in (RDFS_DOMAIN, RDFS_RANGE):
                result.add(triple.subject)
        return result

    def data_properties(self) -> Set[URI]:
        """The distinct properties of the data component ``D_G``."""
        return {t.predicate for t in self._data}

    def typed_resources(self) -> Set[Term]:
        """``TR_G`` — subjects of type triples (Section 4.2)."""
        return {t.subject for t in self._types}

    def untyped_resources(self) -> Set[Term]:
        """``UN_G`` — subjects/objects of data triples that have no type."""
        typed = self.typed_resources()
        result: Set[Term] = set()
        for triple in self._data:
            if triple.subject not in typed:
                result.add(triple.subject)
            if triple.object not in typed:
                result.add(triple.object)
        return result

    def untyped_data_graph(self) -> "RDFGraph":
        """``UD_G`` — data triples whose subject and object are both untyped."""
        typed = self.typed_resources()
        triples = [
            t for t in self._data if t.subject not in typed and t.object not in typed
        ]
        return RDFGraph(triples, name=f"{self.name}.untyped_data")

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def statistics(self) -> GraphStatistics:
        """Compute the size/cardinality statistics of the graph."""
        subjects = {t.subject for t in self._triples}
        objects = {t.object for t in self._triples}
        return GraphStatistics(
            node_count=len(subjects | objects),
            edge_count=len(self._triples),
            distinct_subjects=len(subjects),
            distinct_properties=len(self._by_predicate),
            distinct_objects=len(objects),
            data_edge_count=len(self._data),
            type_edge_count=len(self._types),
            schema_edge_count=len(self._schema),
            distinct_data_properties=len(self.data_properties()),
            distinct_classes=len(self.class_nodes()),
        )

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def literals(self) -> Set[Literal]:
        """All literals occurring in the graph."""
        return {t.object for t in self._triples if is_literal(t.object)}

    def union(self, other: "RDFGraph", name: str = "") -> "RDFGraph":
        """Return a new graph holding the triples of both graphs."""
        result = RDFGraph(self._triples, name=name)
        result.add_all(other)
        return result

    def is_well_behaved(self) -> bool:
        """Check the paper's well-behavedness assumption.

        A graph is *well-behaved* when (i) no class URI appears in a property
        position and (ii) class nodes only appear in type or schema triples.
        """
        classes = self.class_nodes()
        for triple in self._triples:
            if triple.predicate in classes:
                return False
        for triple in self._data:
            if triple.subject in classes or triple.object in classes:
                return False
        return True
