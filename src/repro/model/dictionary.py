"""Dictionary encoding of RDF terms into dense integer identifiers.

The paper's prototype (Section 6) encodes every resource of the input graph
into an integer through a PostgreSQL ``dictionary`` table and performs all
summarization on integers, decoding only at the end.  This module provides
the equivalent component: a bidirectional mapping between
:class:`~repro.model.terms.Term` objects and dense non-negative integers.

Encoded graphs are represented by :class:`EncodedTriple` tuples, and
:class:`EncodedGraphView` offers the split of encoded triples into data /
type / schema tables used by the algorithms of Section 6.2.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, NamedTuple, Optional, Tuple

from repro.errors import UnknownTermError
from repro.model.graph import RDFGraph
from repro.model.namespaces import RDF_TYPE, SCHEMA_PROPERTIES
from repro.model.terms import Term
from repro.model.triple import Triple

__all__ = ["Dictionary", "EncodedTriple", "EncodedGraphView"]


class EncodedTriple(NamedTuple):
    """An integer-encoded triple ``(subject_id, predicate_id, object_id)``."""

    subject: int
    predicate: int
    object: int


class Dictionary:
    """A bidirectional term ↔ integer-id dictionary.

    Identifiers are assigned densely, starting at 0, in first-seen order,
    which keeps encoded structures compact and reproducible.
    """

    def __init__(self):
        self._term_to_id: Dict[Term, int] = {}
        self._id_to_term: List[Term] = []

    def __len__(self) -> int:
        return len(self._id_to_term)

    def __contains__(self, term: Term) -> bool:
        return term in self._term_to_id

    def encode(self, term: Term) -> int:
        """Return the id of *term*, assigning a fresh one when unseen."""
        existing = self._term_to_id.get(term)
        if existing is not None:
            return existing
        new_id = len(self._id_to_term)
        self._term_to_id[term] = new_id
        self._id_to_term.append(term)
        return new_id

    def encode_existing(self, term: Term) -> int:
        """Return the id of *term*; raise :class:`UnknownTermError` if unseen."""
        existing = self._term_to_id.get(term)
        if existing is None:
            raise UnknownTermError(f"term not in dictionary: {term!r}")
        return existing

    def decode(self, identifier: int) -> Term:
        """Return the term with id *identifier*."""
        if not 0 <= identifier < len(self._id_to_term):
            raise UnknownTermError(f"unknown term id: {identifier}")
        return self._id_to_term[identifier]

    @property
    def decode_table(self) -> List[Term]:
        """The id-indexed term list, for bulk decoding of known-valid ids.

        Treat as read-only: indexing it directly skips the per-call bounds
        check and method dispatch of :meth:`decode`, which matters when a
        query projection decodes hundreds of thousands of ids.  Ids not
        produced by this dictionary raise a plain :class:`IndexError`
        instead of :class:`UnknownTermError` (negative ids would silently
        alias — callers hold store-produced ids, which are non-negative).
        """
        return self._id_to_term

    def try_decode(self, identifier: int) -> Optional[Term]:
        """Return the term with id *identifier*, or ``None`` when unknown."""
        if 0 <= identifier < len(self._id_to_term):
            return self._id_to_term[identifier]
        return None

    def encode_triple(self, triple: Triple) -> EncodedTriple:
        """Encode the three terms of *triple*."""
        return EncodedTriple(
            self.encode(triple.subject),
            self.encode(triple.predicate),
            self.encode(triple.object),
        )

    def encode_triples(self, triples: Iterable[Triple]) -> List[EncodedTriple]:
        """Encode an iterable of triples in one batched pass.

        This is the bulk-load path of the stores: the per-call overhead of
        :meth:`encode_triple` (three bound-method dispatches per triple) is
        replaced by direct dict probes on locals, which measurably cuts the
        dictionary-encoding share of store loading.
        """
        term_to_id = self._term_to_id
        id_to_term = self._id_to_term
        append = id_to_term.append
        rows: List[EncodedTriple] = []
        for triple in triples:
            subject = triple.subject
            subject_id = term_to_id.get(subject)
            if subject_id is None:
                subject_id = len(id_to_term)
                term_to_id[subject] = subject_id
                append(subject)
            predicate = triple.predicate
            predicate_id = term_to_id.get(predicate)
            if predicate_id is None:
                predicate_id = len(id_to_term)
                term_to_id[predicate] = predicate_id
                append(predicate)
            obj = triple.object
            object_id = term_to_id.get(obj)
            if object_id is None:
                object_id = len(id_to_term)
                term_to_id[obj] = object_id
                append(obj)
            rows.append(EncodedTriple(subject_id, predicate_id, object_id))
        return rows

    def decode_triple(self, encoded: EncodedTriple) -> Triple:
        """Decode an :class:`EncodedTriple` back into a :class:`Triple`."""
        return Triple(
            self.decode(encoded.subject),
            self.decode(encoded.predicate),
            self.decode(encoded.object),
        )

    def items(self) -> Iterator[Tuple[Term, int]]:
        """Iterate over ``(term, id)`` pairs in id order."""
        for identifier, term in enumerate(self._id_to_term):
            yield term, identifier


class EncodedGraphView:
    """Integer-encoded view of a graph, split into the three triple tables.

    This mirrors the storage layout of the paper's prototype: one encoded
    *data* table, one encoded *type* table and one encoded *schema* table,
    plus the dictionary.

    Parameters
    ----------
    graph:
        The graph to encode.
    dictionary:
        Optional pre-populated dictionary to reuse (ids are shared).
    """

    def __init__(self, graph: RDFGraph, dictionary: Optional[Dictionary] = None):
        self.dictionary = dictionary if dictionary is not None else Dictionary()
        self.data_rows: List[EncodedTriple] = []
        self.type_rows: List[EncodedTriple] = []
        self.schema_rows: List[EncodedTriple] = []
        self.type_property_id = self.dictionary.encode(RDF_TYPE)
        self.schema_property_ids = frozenset(
            self.dictionary.encode(p) for p in sorted(SCHEMA_PROPERTIES)
        )
        for triple in graph:
            encoded = self.dictionary.encode_triple(triple)
            if triple.is_schema():
                self.schema_rows.append(encoded)
            elif triple.is_type():
                self.type_rows.append(encoded)
            else:
                self.data_rows.append(encoded)
        # deterministic order for reproducible summarization traces
        self.data_rows.sort()
        self.type_rows.sort()
        self.schema_rows.sort()

    def __len__(self) -> int:
        return len(self.data_rows) + len(self.type_rows) + len(self.schema_rows)

    def all_rows(self) -> Iterator[EncodedTriple]:
        """Iterate over every encoded triple (data, then type, then schema)."""
        yield from self.data_rows
        yield from self.type_rows
        yield from self.schema_rows

    def decode_rows(self, rows: Iterable[EncodedTriple]) -> Iterator[Triple]:
        """Decode an iterable of encoded triples back to :class:`Triple`."""
        for row in rows:
            yield self.dictionary.decode_triple(row)
