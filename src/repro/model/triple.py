"""RDF triples and their classification into data / type / schema triples.

The paper's triple-based representation (Section 2.1) partitions a graph
``G`` into three components:

* ``S_G`` — *schema* triples, whose property is one of ``rdfs:subClassOf``,
  ``rdfs:subPropertyOf``, ``rdfs:domain`` or ``rdfs:range``;
* ``T_G`` — *type* triples, whose property is ``rdf:type``;
* ``D_G`` — *data* triples, everything else.

:class:`Triple` is the single triple value object; :class:`TripleKind` names
the component a triple belongs to; :func:`classify_triple` computes it.
"""

from __future__ import annotations

import enum
from typing import Tuple

from repro.errors import MalformedTripleError
from repro.model.namespaces import is_schema_property, is_type_property
from repro.model.terms import BlankNode, Literal, Term, URI, term_sort_key

__all__ = ["Triple", "TripleKind", "classify_triple"]


class TripleKind(enum.Enum):
    """The component of a graph a triple belongs to (Section 2.1)."""

    DATA = "data"
    TYPE = "type"
    SCHEMA = "schema"


class Triple:
    """A single RDF triple ``s p o``.

    The subject may be a :class:`URI` or :class:`BlankNode`; the property must
    be a :class:`URI`; the object may be any term.  These are the
    well-formedness constraints of the RDF specification that the paper
    assumes, with one deliberate relaxation: a literal subject is accepted
    for ``rdf:type`` triples only.  The paper's saturation semantics types
    every value of a property carrying a range constraint, including literal
    values (this is what makes the completeness Propositions 5 and 8 hold),
    so such *generalized* type triples can appear in ``G∞``.
    """

    __slots__ = ("subject", "predicate", "object")

    def __init__(self, subject: Term, predicate: URI, obj: Term):
        if not isinstance(predicate, URI):
            raise MalformedTripleError(f"property must be a URI, got {predicate!r}")
        if isinstance(subject, Literal) and not is_type_property(predicate):
            raise MalformedTripleError(f"literal {subject!r} cannot be a triple subject")
        if not isinstance(subject, (URI, BlankNode, Literal)):
            raise MalformedTripleError(f"invalid subject: {subject!r}")
        if not isinstance(obj, (URI, BlankNode, Literal)):
            raise MalformedTripleError(f"invalid object: {obj!r}")
        self.subject = subject
        self.predicate = predicate
        self.object = obj

    def __eq__(self, other):
        return (
            isinstance(other, Triple)
            and self.subject == other.subject
            and self.predicate == other.predicate
            and self.object == other.object
        )

    def __hash__(self):
        return hash((self.subject, self.predicate, self.object))

    def __lt__(self, other):
        if not isinstance(other, Triple):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def __iter__(self):
        return iter((self.subject, self.predicate, self.object))

    def __repr__(self):
        return f"Triple({self.subject!r}, {self.predicate!r}, {self.object!r})"

    def sort_key(self) -> Tuple:
        """A deterministic sort key over heterogeneous triples."""
        return (
            term_sort_key(self.subject),
            term_sort_key(self.predicate),
            term_sort_key(self.object),
        )

    @property
    def kind(self) -> TripleKind:
        """The component (data / type / schema) this triple belongs to."""
        return classify_triple(self)

    def is_data(self) -> bool:
        """``True`` when the triple belongs to the data component ``D_G``."""
        return self.kind is TripleKind.DATA

    def is_type(self) -> bool:
        """``True`` when the triple is an ``rdf:type`` assertion (``T_G``)."""
        return self.kind is TripleKind.TYPE

    def is_schema(self) -> bool:
        """``True`` when the triple is an RDFS constraint (``S_G``)."""
        return self.kind is TripleKind.SCHEMA

    def n3(self) -> str:
        """Render as a single N-Triples line (without the trailing newline)."""
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."

    def as_tuple(self) -> Tuple[Term, URI, Term]:
        """Return the plain ``(subject, predicate, object)`` tuple."""
        return (self.subject, self.predicate, self.object)


def classify_triple(triple: Triple) -> TripleKind:
    """Classify *triple* into data / type / schema (Section 2.1)."""
    if is_schema_property(triple.predicate):
        return TripleKind.SCHEMA
    if is_type_property(triple.predicate):
        return TripleKind.TYPE
    return TripleKind.DATA
