"""Encoded triple stores: the relational substrate of the summarizer."""

from repro.store.base import StoreStatistics, TripleStore
from repro.store.memory import MemoryStore
from repro.store.sqlite import SQLiteStore

__all__ = ["StoreStatistics", "TripleStore", "MemoryStore", "SQLiteStore"]
