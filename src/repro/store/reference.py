"""The pre-columnar dict-of-tuples memory store, kept as a test oracle.

This module preserves the PR 1–5 :class:`MemoryStore` implementation —
three Python lists of :class:`EncodedTriple` rows with dict posting lists
per column and per ``(p, s)`` / ``(p, o)`` composite key — exactly as it
behaved before the columnar refactor.  It exists **only** so the test
suite (and the ``--store-microbench`` mode of
``benchmarks/bench_encoded_pipeline.py``) can check the columnar
:class:`repro.store.memory.MemoryStore` for observational equivalence and
measure the layout change: do not use it in production paths.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import StoreClosedError
from repro.model.dictionary import EncodedTriple
from repro.model.triple import TripleKind
from repro.store.base import TripleStore

__all__ = ["DictReferenceStore"]

_EMPTY: Tuple[int, ...] = ()


class _DictTable:
    """One encoded triple table with per-column and composite dict indexes.

    All index posting lists hold row positions in insertion order, so every
    selection shape iterates rows in the deterministic order they were
    inserted — whichever index serves it.
    """

    __slots__ = ("rows", "by_subject", "by_predicate", "by_object", "by_ps", "by_po")

    def __init__(self):
        self.rows: List[EncodedTriple] = []
        self.by_subject: Dict[int, List[int]] = defaultdict(list)
        self.by_predicate: Dict[int, List[int]] = defaultdict(list)
        self.by_object: Dict[int, List[int]] = defaultdict(list)
        self.by_ps: Dict[Tuple[int, int], List[int]] = defaultdict(list)
        self.by_po: Dict[Tuple[int, int], List[int]] = defaultdict(list)

    def insert(self, row: EncodedTriple) -> None:
        position = len(self.rows)
        self.rows.append(row)
        self.by_subject[row.subject].append(position)
        self.by_predicate[row.predicate].append(position)
        self.by_object[row.object].append(position)
        self.by_ps[(row.predicate, row.subject)].append(position)
        self.by_po[(row.predicate, row.object)].append(position)

    def _candidate_positions(
        self,
        subject: Optional[int],
        predicate: Optional[int],
        obj: Optional[int],
    ) -> Optional[Iterable[int]]:
        if predicate is not None:
            if subject is not None:
                return self.by_ps.get((predicate, subject), _EMPTY)
            if obj is not None:
                return self.by_po.get((predicate, obj), _EMPTY)
            return self.by_predicate.get(predicate, _EMPTY)
        if subject is not None:
            if obj is not None:
                subject_positions = self.by_subject.get(subject, _EMPTY)
                object_positions = self.by_object.get(obj, _EMPTY)
                return (
                    subject_positions
                    if len(subject_positions) <= len(object_positions)
                    else object_positions
                )
            return self.by_subject.get(subject, _EMPTY)
        if obj is not None:
            return self.by_object.get(obj, _EMPTY)
        return None

    def select(
        self,
        subject: Optional[int],
        predicate: Optional[int],
        obj: Optional[int],
    ) -> Iterator[EncodedTriple]:
        candidate_positions = self._candidate_positions(subject, predicate, obj)
        rows = self.rows
        if candidate_positions is None:
            candidates: Iterable[EncodedTriple] = rows
        else:
            candidates = (rows[position] for position in candidate_positions)
        for row in candidates:
            if subject is not None and row.subject != subject:
                continue
            if predicate is not None and row.predicate != predicate:
                continue
            if obj is not None and row.object != obj:
                continue
            yield row

    def select_many(
        self,
        subjects: Optional[Iterable[int]],
        predicate: Optional[int],
        objects: Optional[Iterable[int]],
    ) -> List[EncodedTriple]:
        rows = self.rows
        out: List[EncodedTriple] = []
        if subjects is not None:
            object_set = None if objects is None else set(objects)
            if predicate is not None:
                by_ps = self.by_ps
                for subject in dict.fromkeys(subjects):
                    for position in by_ps.get((predicate, subject), _EMPTY):
                        row = rows[position]
                        if object_set is None or row.object in object_set:
                            out.append(row)
            else:
                by_subject = self.by_subject
                for subject in dict.fromkeys(subjects):
                    for position in by_subject.get(subject, _EMPTY):
                        row = rows[position]
                        if object_set is None or row.object in object_set:
                            out.append(row)
            return out
        if objects is not None:
            if predicate is not None:
                by_po = self.by_po
                for obj in dict.fromkeys(objects):
                    out.extend(rows[position] for position in by_po.get((predicate, obj), _EMPTY))
            else:
                by_object = self.by_object
                for obj in dict.fromkeys(objects):
                    out.extend(rows[position] for position in by_object.get(obj, _EMPTY))
            return out
        if predicate is not None:
            return [rows[position] for position in self.by_predicate.get(predicate, _EMPTY)]
        return list(rows)

    def distinct_properties(self) -> List[int]:
        return sorted(self.by_predicate.keys())


class DictReferenceStore(TripleStore):
    """The pre-refactor dict-backed :class:`TripleStore` (test oracle only)."""

    def __init__(self):
        super().__init__()
        self._tables: Dict[TripleKind, _DictTable] = {
            TripleKind.DATA: _DictTable(),
            TripleKind.TYPE: _DictTable(),
            TripleKind.SCHEMA: _DictTable(),
        }
        self._seen: Set[Tuple[TripleKind, EncodedTriple]] = set()
        self._closed = False

    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosedError("the store has been closed")

    def _insert_rows(self, rows: Iterable[Tuple[TripleKind, EncodedTriple]]) -> None:
        self._check_open()
        for kind, row in rows:
            if not isinstance(row, EncodedTriple):
                row = EncodedTriple(row[0], row[1], row[2])
            key = (kind, row)
            if key in self._seen:
                continue
            self._seen.add(key)
            self._tables[kind].insert(row)

    def insert_encoded_rows(
        self,
        rows: Iterable[Tuple[TripleKind, EncodedTriple]],
        skip_existing: bool = True,
    ) -> List[Tuple[TripleKind, EncodedTriple]]:
        """Deduplicated encoded insert returning only the fresh rows."""
        self._check_open()
        seen = self._seen
        tables = self._tables
        fresh: List[Tuple[TripleKind, EncodedTriple]] = []
        for kind, row in rows:
            if not isinstance(row, EncodedTriple):
                row = EncodedTriple(row[0], row[1], row[2])
            key = (kind, row)
            if key in seen:
                continue
            seen.add(key)
            tables[kind].insert(row)
            fresh.append((kind, row))
        return fresh

    def scan_data(self) -> Iterator[EncodedTriple]:
        self._check_open()
        return iter(list(self._tables[TripleKind.DATA].rows))

    def scan_types(self) -> Iterator[EncodedTriple]:
        self._check_open()
        return iter(list(self._tables[TripleKind.TYPE].rows))

    def scan_schema(self) -> Iterator[EncodedTriple]:
        self._check_open()
        return iter(list(self._tables[TripleKind.SCHEMA].rows))

    def scan_batches(
        self, kind: TripleKind, batch_size: int = 50_000
    ) -> Iterator[List[EncodedTriple]]:
        self._check_open()
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        rows = self._tables[kind].rows
        for start in range(0, len(rows), batch_size):
            yield rows[start : start + batch_size]

    def select(
        self,
        kind: TripleKind,
        subject: Optional[int] = None,
        predicate: Optional[int] = None,
        obj: Optional[int] = None,
    ) -> Iterator[EncodedTriple]:
        self._check_open()
        return self._tables[kind].select(subject, predicate, obj)

    def select_many(
        self,
        kind: TripleKind,
        subjects: Optional[Iterable[int]] = None,
        predicate: Optional[int] = None,
        objects: Optional[Iterable[int]] = None,
    ) -> List[EncodedTriple]:
        self._check_open()
        return self._tables[kind].select_many(subjects, predicate, objects)

    def count(self, kind: TripleKind) -> int:
        self._check_open()
        return len(self._tables[kind].rows)

    def distinct_properties(self, kind: TripleKind) -> List[int]:
        self._check_open()
        return self._tables[kind].distinct_properties()

    def close(self) -> None:
        self._closed = True
