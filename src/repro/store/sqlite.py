"""SQLite-backed encoded triple store.

The paper's prototype stores the encoded graph in PostgreSQL tables and
drives summarization through SQL queries.  PostgreSQL is not available in
this environment; the standard-library ``sqlite3`` module provides the same
relational substrate (tables + indexes + SQL selection), which is what the
algorithms actually rely on.  The schema mirrors the paper's layout:

* ``data_triples(s, p, o)``   — the encoded data component ``D_G``;
* ``type_triples(s, p, o)``   — the encoded type component ``T_G``;
* ``schema_triples(s, p, o)`` — the encoded schema component ``S_G``;
* ``dictionary(id, value)``   — integer ↔ lexical form mapping (persisted on
  :meth:`persist_dictionary`, primarily for debugging and decoding outside
  the process).

Thread-safety and the write-lock discipline
-------------------------------------------
The store is safe to read from many threads at once and to write from any
thread, under the following discipline (what the serving layer's per-entry
read/write locks enforce):

* **Writes are serialized.**  Every mutating path (``_insert_rows``,
  ``persist_dictionary``, ``ensure_summarization_indexes``) and the
  existence probes of the insert path run on the single *write connection*
  under the store's internal write lock.  Callers must additionally ensure
  no reads overlap an in-flight logical batch (an insert plus its derived
  bookkeeping) if they need batch atomicity — SQLite guarantees statement
  atomicity, not catalog-level invariants; the catalog entry's exclusive
  lock is what provides that.
* **File-backed stores read in parallel.**  Each reader thread lazily opens
  its own connection to the database file (WAL journal mode, so readers
  never block the writer), and the C library releases the GIL while a
  statement runs — concurrent ``select``/``select_many`` calls genuinely
  overlap.  Read connections only observe committed data; every write path
  commits before returning.
* **In-memory stores are serialized.**  A ``":memory:"`` database is
  private to its connection (a second connection would see an empty
  database), so all access funnels through the write connection under the
  internal lock, and result sets are materialized before the lock is
  released — correct from any number of threads, just without read
  parallelism.  Use a file path when concurrent throughput matters.
"""

from __future__ import annotations

import sqlite3
import threading
import weakref
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.errors import StoreClosedError, StoreError
from repro.model.dictionary import EncodedTriple
from repro.model.triple import TripleKind
from repro.store.base import TripleStore

__all__ = ["SQLiteStore"]

_TABLE_FOR_KIND = {
    TripleKind.DATA: "data_triples",
    TripleKind.TYPE: "type_triples",
    TripleKind.SCHEMA: "schema_triples",
}

_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS data_triples   (s INTEGER NOT NULL, p INTEGER NOT NULL, o INTEGER NOT NULL);
CREATE TABLE IF NOT EXISTS type_triples   (s INTEGER NOT NULL, p INTEGER NOT NULL, o INTEGER NOT NULL);
CREATE TABLE IF NOT EXISTS schema_triples (s INTEGER NOT NULL, p INTEGER NOT NULL, o INTEGER NOT NULL);
CREATE TABLE IF NOT EXISTS dictionary     (id INTEGER PRIMARY KEY, value TEXT NOT NULL);
CREATE INDEX IF NOT EXISTS idx_data_spo ON data_triples(s, p, o);
CREATE INDEX IF NOT EXISTS idx_data_ps  ON data_triples(p, s);
CREATE INDEX IF NOT EXISTS idx_data_po  ON data_triples(p, o);
CREATE INDEX IF NOT EXISTS idx_data_o   ON data_triples(o);
CREATE INDEX IF NOT EXISTS idx_type_s   ON type_triples(s);
CREATE INDEX IF NOT EXISTS idx_type_o   ON type_triples(o);
CREATE INDEX IF NOT EXISTS idx_schema_p ON schema_triples(p);
"""

#: SQLite's default variable limit is 999; keep chunks comfortably under it.
_IN_CHUNK = 500

#: How long (ms) any connection waits on a competing lock before erroring.
_BUSY_TIMEOUT_MS = 10_000


def _discard_reader(readers: List, lock: threading.Lock, connection) -> None:
    """Finalizer for a per-thread read connection: close it when its owning
    thread is collected (module-level so the finalizer does not keep the
    store itself alive)."""
    with lock:
        try:
            readers.remove(connection)
        except ValueError:
            pass  # close() already took it
    try:
        connection.close()
    except sqlite3.Error:  # pragma: no cover - best-effort cleanup
        pass


class SQLiteStore(TripleStore):
    """A :class:`TripleStore` persisting encoded triples in SQLite.

    Parameters
    ----------
    path:
        Database file path, or ``":memory:"`` (default) for an in-process
        transient database.  File-backed stores serve concurrent readers
        from per-thread connections; in-memory stores serialize all access
        (see the module docstring for the locking discipline).
    batch_size:
        Number of rows per ``executemany`` batch when loading; plays the role
        of the JDBC fetch size tuned in the paper's experiments.
    """

    def __init__(self, path: str = ":memory:", batch_size: int = 100_000):
        super().__init__()
        if batch_size <= 0:
            raise StoreError("batch_size must be positive")
        path = str(path) if not isinstance(path, str) else path
        self.path = path
        self.batch_size = batch_size
        # a private in-memory database cannot be shared across connections,
        # so everything funnels through the write connection under the lock
        self._serialized = path == ":memory:" or path.startswith("file:")
        self._lock = threading.RLock()
        self._local = threading.local()
        self._readers: List[sqlite3.Connection] = []
        self._readers_lock = threading.Lock()
        # check_same_thread=False: the connection is used from whichever
        # thread holds the write lock (and, serialized, by readers too)
        self._connection: Optional[sqlite3.Connection] = sqlite3.connect(
            path, check_same_thread=False
        )
        self._connection.execute(f"PRAGMA busy_timeout = {_BUSY_TIMEOUT_MS}")
        if not self._serialized:
            # WAL lets per-thread readers proceed while the writer commits
            self._connection.execute("PRAGMA journal_mode = WAL")
        self._connection.executescript(_SCHEMA_SQL)
        self._connection.commit()

    # ------------------------------------------------------------------
    # connection management
    # ------------------------------------------------------------------
    def _conn(self) -> sqlite3.Connection:
        connection = self._connection
        if connection is None:
            raise StoreClosedError("the SQLite store has been closed")
        return connection

    def _reader(self) -> sqlite3.Connection:
        """This thread's read connection (file-backed stores only).

        Each connection is registered for :meth:`close` **and** tied to its
        owning thread's lifetime with a finalizer: a server that reads from
        short-lived handler threads (one per HTTP connection) must not
        accumulate one descriptor per thread that ever existed.
        """
        if self._connection is None:
            raise StoreClosedError("the SQLite store has been closed")
        connection = getattr(self._local, "connection", None)
        if connection is None:
            # check_same_thread=False only so close()/the finalizer can shut
            # it down from another thread; each reader is otherwise
            # thread-private
            connection = sqlite3.connect(self.path, check_same_thread=False)
            connection.execute(f"PRAGMA busy_timeout = {_BUSY_TIMEOUT_MS}")
            with self._readers_lock:
                if self._connection is None:
                    connection.close()
                    raise StoreClosedError("the SQLite store has been closed")
                self._readers.append(connection)
            self._local.connection = connection
            weakref.finalize(
                threading.current_thread(),
                _discard_reader,
                self._readers,
                self._readers_lock,
                connection,
            )
        return connection

    def _execute_read(self, sql: str, parameters: Iterable = ()) -> List[Tuple[int, int, int]]:
        """Run a read statement and materialize its rows.

        Serialized stores run on the write connection under the lock (the
        materialization keeps cursor iteration out of the critical
        section); file-backed stores run on this thread's own connection,
        fully in parallel with other readers.
        """
        if self._serialized:
            with self._lock:
                return self._conn().execute(sql, parameters).fetchall()
        return self._reader().execute(sql, parameters).fetchall()

    def _insert_rows(self, rows: Iterable[Tuple[TripleKind, EncodedTriple]]) -> None:
        with self._lock:
            connection = self._conn()
            buffers = {kind: [] for kind in _TABLE_FOR_KIND}
            flushed = 0

            def flush() -> None:
                nonlocal flushed
                for kind, buffer in buffers.items():
                    if buffer:
                        connection.executemany(
                            f"INSERT INTO {_TABLE_FOR_KIND[kind]} (s, p, o) VALUES (?, ?, ?)",
                            buffer,
                        )
                        flushed += len(buffer)
                        buffer.clear()

            pending = 0
            for kind, row in rows:
                buffers[kind].append((row[0], row[1], row[2]))
                pending += 1
                if pending >= self.batch_size:
                    flush()
                    pending = 0
            flush()
            connection.commit()

    # ------------------------------------------------------------------
    def _scan(self, kind: TripleKind) -> Iterator[EncodedTriple]:
        """Row-wise table scan.

        File-backed stores stream from this thread's own reader cursor (a
        multi-million-row scan never materializes the whole table);
        serialized (in-memory) stores materialize under the lock, the same
        trade :meth:`scan_batches` makes.
        """
        sql = f"SELECT s, p, o FROM {_TABLE_FOR_KIND[kind]} ORDER BY rowid"
        if self._serialized:
            with self._lock:
                rows = self._conn().execute(sql).fetchall()
            for subject, predicate, obj in rows:
                yield EncodedTriple(subject, predicate, obj)
            return
        for subject, predicate, obj in self._reader().execute(sql):
            yield EncodedTriple(subject, predicate, obj)

    def scan_data(self) -> Iterator[EncodedTriple]:
        return self._scan(TripleKind.DATA)

    def scan_types(self) -> Iterator[EncodedTriple]:
        return self._scan(TripleKind.TYPE)

    def scan_schema(self) -> Iterator[EncodedTriple]:
        return self._scan(TripleKind.SCHEMA)

    def scan_batches(
        self, kind: TripleKind, batch_size: int = 50_000
    ) -> Iterator[List[EncodedTriple]]:
        """Scan the *kind* table with ``fetchmany`` chunks.

        Fetching *batch_size* rows per cursor round-trip (instead of one row
        per ``__next__``) is what keeps the table scan itself from being the
        bottleneck of the encoded summarization passes.  The raw SQLite rows
        are yielded as-is: they are plain ``(s, p, o)`` tuples, which is all
        the integer pipeline needs.  On a serialized (in-memory) store the
        whole result is materialized under the lock first, so a slow
        consumer never holds other threads up.
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        sql = f"SELECT s, p, o FROM {_TABLE_FOR_KIND[kind]} ORDER BY rowid"
        if self._serialized:
            with self._lock:
                rows = self._conn().execute(sql).fetchall()
            for start in range(0, len(rows), batch_size):
                yield rows[start : start + batch_size]
            return
        cursor = self._reader().execute(sql)
        cursor.arraysize = batch_size
        while True:
            rows = cursor.fetchmany(batch_size)
            if not rows:
                break
            yield rows

    def select(
        self,
        kind: TripleKind,
        subject: Optional[int] = None,
        predicate: Optional[int] = None,
        obj: Optional[int] = None,
    ) -> Iterator[EncodedTriple]:
        clauses: List[str] = []
        parameters: List[int] = []
        for column, value in (("s", subject), ("p", predicate), ("o", obj)):
            if value is not None:
                clauses.append(f"{column} = ?")
                parameters.append(value)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        rows = self._execute_read(
            f"SELECT s, p, o FROM {_TABLE_FOR_KIND[kind]}{where}", parameters
        )
        for row_subject, row_predicate, row_object in rows:
            yield EncodedTriple(row_subject, row_predicate, row_object)

    def select_many(
        self,
        kind: TripleKind,
        subjects: Optional[Iterable[int]] = None,
        predicate: Optional[int] = None,
        objects: Optional[Iterable[int]] = None,
    ) -> List[Tuple[int, int, int]]:
        """Batched selection: chunked ``IN (...)`` statements on one column.

        The id collection is pushed into SQL in chunks under the parameter
        limit; when both *subjects* and *objects* are given, the smaller
        collection goes into the ``IN`` clause and the other is applied as a
        Python-side set filter — either way the call costs
        ``ceil(n / chunk)`` statements, never one probe per id.  Rows come
        back as plain ``(s, p, o)`` tuples (the integer pipeline's format).
        """
        table = _TABLE_FOR_KIND[kind]
        base_clauses: List[str] = []
        base_parameters: List[int] = []
        if predicate is not None:
            base_clauses.append("p = ?")
            base_parameters.append(predicate)

        subject_list = None if subjects is None else list(subjects)
        object_list = None if objects is None else list(objects)
        if subject_list is None and object_list is None:
            where = f" WHERE {' AND '.join(base_clauses)}" if base_clauses else ""
            return self._execute_read(f"SELECT s, p, o FROM {table}{where}", base_parameters)

        if subject_list is not None and (
            object_list is None or len(subject_list) <= len(object_list)
        ):
            in_column, in_values = "s", subject_list
            filter_column, filter_set = 2, None if object_list is None else set(object_list)
        else:
            in_column, in_values = "o", object_list  # type: ignore[assignment]
            filter_column, filter_set = 0, None if subject_list is None else set(subject_list)

        out: List[Tuple[int, int, int]] = []
        for start in range(0, len(in_values), _IN_CHUNK):
            chunk = in_values[start : start + _IN_CHUNK]
            placeholders = ", ".join("?" for _ in chunk)
            clauses = base_clauses + [f"{in_column} IN ({placeholders})"]
            fetched = self._execute_read(
                f"SELECT s, p, o FROM {table} WHERE {' AND '.join(clauses)}",
                base_parameters + chunk,
            )
            if filter_set is None:
                out.extend(fetched)
            else:
                out.extend(row for row in fetched if row[filter_column] in filter_set)
        return out

    def _existing_rows(self, kind: TripleKind, rows):
        """Batched existence check: one row-value ``IN`` query per chunk.

        Chunks stay under SQLite's default 999-parameter limit (3 parameters
        per triple), so a 10k-triple dedup costs ~31 statements instead of
        10k single-row probes.  Row-value syntax needs SQLite >= 3.15; older
        linked libraries fall back to the base per-row probes.  Runs on the
        write connection under the lock — it is part of the insert path and
        must see the store exactly as the insert will leave it.
        """
        if sqlite3.sqlite_version_info < (3, 15, 0):
            return super()._existing_rows(kind, rows)
        table = _TABLE_FOR_KIND[kind]
        present = set()
        chunk_size = 300
        with self._lock:
            connection = self._conn()
            for start in range(0, len(rows), chunk_size):
                chunk = rows[start : start + chunk_size]
                placeholders = ", ".join("(?, ?, ?)" for _ in chunk)
                parameters: List[int] = []
                for row in chunk:
                    parameters.extend((row[0], row[1], row[2]))
                cursor = connection.execute(
                    f"SELECT s, p, o FROM {table} WHERE (s, p, o) IN (VALUES {placeholders})",
                    parameters,
                )
                present.update((s, p, o) for s, p, o in cursor)
        return present

    def count(self, kind: TripleKind) -> int:
        rows = self._execute_read(f"SELECT COUNT(*) FROM {_TABLE_FOR_KIND[kind]}")
        return int(rows[0][0])

    def distinct_properties(self, kind: TripleKind) -> List[int]:
        rows = self._execute_read(
            f"SELECT DISTINCT p FROM {_TABLE_FOR_KIND[kind]} ORDER BY p"
        )
        return [row[0] for row in rows]

    # ------------------------------------------------------------------
    # SQL join pushdown (the paper's run-it-in-the-RDBMS architecture)
    # ------------------------------------------------------------------
    #: Advertises :meth:`execute_join` to the encoded evaluator's
    #: ``strategy="sql"`` — the whole BGP join compiled into one SELECT.
    supports_sql_join = True

    #: Table names by :class:`TripleKind`, for SQL generation by callers.
    SQL_TABLE_FOR_KIND = dict(_TABLE_FOR_KIND)

    def execute_join(self, sql: str, parameters: Iterable = ()) -> List[Tuple]:
        """Run one (read-only) join statement and materialize its rows.

        This is the GIL-friendly evaluation path: the entire join runs
        inside SQLite's C engine — on a file-backed store from this
        thread's own read connection — so concurrent queries genuinely
        overlap on multi-core hosts instead of interleaving Python
        bytecode.
        """
        return self._execute_read(sql, parameters)

    # ------------------------------------------------------------------
    def load_graph(self, graph) -> int:
        """Bulk-load *graph*, then refresh the summarization index pass."""
        count = super().load_graph(graph)
        self.ensure_summarization_indexes()
        return count

    def ensure_summarization_indexes(self) -> None:
        """Composite-index pass for the summarization workload.

        Guarantees the two composite indexes the selection patterns rely on
        and re-``ANALYZE``s so the query planner sees post-load table shapes
        (:meth:`load_graph` runs this after every bulk load):

        * ``data_triples(s, p, o)`` — a covering index for subject-anchored
          lookups, so ``select(subject=...)`` never touches the base table;
        * ``data_triples(p, s)`` — property-anchored access, the pattern of
          per-property passes (``dpSrc`` / ``dpTarg`` maintenance);
        * ``data_triples(p, o)`` — the object-anchored dual, which the
          hash-join executor's batched object-side fetches rely on (also
          covers databases persisted before the index joined the schema).

        Idempotent; cheap when the indexes already exist.
        """
        with self._lock:
            connection = self._conn()
            connection.executescript(
                """
                CREATE INDEX IF NOT EXISTS idx_data_spo ON data_triples(s, p, o);
                CREATE INDEX IF NOT EXISTS idx_data_ps  ON data_triples(p, s);
                CREATE INDEX IF NOT EXISTS idx_data_po  ON data_triples(p, o);
                ANALYZE;
                """
            )
            connection.commit()

    # ------------------------------------------------------------------
    def persist_dictionary(self) -> int:
        """Write the in-memory dictionary to the ``dictionary`` table.

        Returns the number of persisted entries.  Existing rows are replaced,
        so the call is idempotent.
        """
        with self._lock:
            connection = self._conn()
            connection.execute("DELETE FROM dictionary")
            rows = [(identifier, term.n3()) for term, identifier in self.dictionary.items()]
            connection.executemany("INSERT INTO dictionary (id, value) VALUES (?, ?)", rows)
            connection.commit()
            return len(rows)

    def close(self) -> None:
        with self._lock:
            if self._connection is not None:
                self._connection.close()
                self._connection = None
        with self._readers_lock:
            readers, self._readers = self._readers, []
        for connection in readers:
            try:
                connection.close()
            except sqlite3.Error:  # pragma: no cover - best-effort cleanup
                pass
