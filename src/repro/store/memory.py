"""In-memory encoded triple store.

This is the default backend: three lists of encoded rows (data, type,
schema) with hash indexes on subject, property and object, playing the role
of the PostgreSQL tables plus B-tree indexes of the paper's prototype.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import StoreClosedError
from repro.model.dictionary import EncodedTriple
from repro.model.triple import TripleKind
from repro.store.base import TripleStore

__all__ = ["MemoryStore"]


class _Table:
    """One encoded triple table with per-column indexes."""

    __slots__ = ("rows", "by_subject", "by_predicate", "by_object")

    def __init__(self):
        self.rows: List[EncodedTriple] = []
        self.by_subject: Dict[int, List[int]] = defaultdict(list)
        self.by_predicate: Dict[int, List[int]] = defaultdict(list)
        self.by_object: Dict[int, List[int]] = defaultdict(list)

    def insert(self, row: EncodedTriple) -> None:
        position = len(self.rows)
        self.rows.append(row)
        self.by_subject[row.subject].append(position)
        self.by_predicate[row.predicate].append(position)
        self.by_object[row.object].append(position)

    def select(
        self,
        subject: Optional[int],
        predicate: Optional[int],
        obj: Optional[int],
    ) -> Iterator[EncodedTriple]:
        candidate_positions: Optional[Iterable[int]] = None
        if subject is not None:
            candidate_positions = self.by_subject.get(subject, ())
        elif obj is not None:
            candidate_positions = self.by_object.get(obj, ())
        elif predicate is not None:
            candidate_positions = self.by_predicate.get(predicate, ())

        rows = self.rows
        if candidate_positions is None:
            candidates: Iterable[EncodedTriple] = rows
        else:
            candidates = (rows[position] for position in candidate_positions)
        for row in candidates:
            if subject is not None and row.subject != subject:
                continue
            if predicate is not None and row.predicate != predicate:
                continue
            if obj is not None and row.object != obj:
                continue
            yield row

    def distinct_properties(self) -> List[int]:
        return sorted(self.by_predicate.keys())


class MemoryStore(TripleStore):
    """Pure in-memory :class:`TripleStore` backend."""

    def __init__(self):
        super().__init__()
        self._tables: Dict[TripleKind, _Table] = {
            TripleKind.DATA: _Table(),
            TripleKind.TYPE: _Table(),
            TripleKind.SCHEMA: _Table(),
        }
        self._seen: Set[Tuple[TripleKind, EncodedTriple]] = set()
        self._closed = False

    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosedError("the store has been closed")

    def _insert_rows(self, rows: Iterable[Tuple[TripleKind, EncodedTriple]]) -> None:
        self._check_open()
        for kind, row in rows:
            key = (kind, row)
            if key in self._seen:
                continue
            self._seen.add(key)
            self._tables[kind].insert(row)

    def scan_data(self) -> Iterator[EncodedTriple]:
        self._check_open()
        return iter(list(self._tables[TripleKind.DATA].rows))

    def scan_types(self) -> Iterator[EncodedTriple]:
        self._check_open()
        return iter(list(self._tables[TripleKind.TYPE].rows))

    def scan_schema(self) -> Iterator[EncodedTriple]:
        self._check_open()
        return iter(list(self._tables[TripleKind.SCHEMA].rows))

    def scan_batches(
        self, kind: TripleKind, batch_size: int = 50_000
    ) -> Iterator[List[EncodedTriple]]:
        """Yield slices of the in-memory row list directly (no per-row work)."""
        self._check_open()
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        rows = self._tables[kind].rows
        for start in range(0, len(rows), batch_size):
            yield rows[start : start + batch_size]

    def select(
        self,
        kind: TripleKind,
        subject: Optional[int] = None,
        predicate: Optional[int] = None,
        obj: Optional[int] = None,
    ) -> Iterator[EncodedTriple]:
        self._check_open()
        return self._tables[kind].select(subject, predicate, obj)

    def count(self, kind: TripleKind) -> int:
        self._check_open()
        return len(self._tables[kind].rows)

    def distinct_properties(self, kind: TripleKind) -> List[int]:
        self._check_open()
        return self._tables[kind].distinct_properties()

    def close(self) -> None:
        self._closed = True
