"""In-memory encoded triple store over contiguous columnar arrays.

This is the default backend, refactored from dicts-of-tuples to a columnar
core: each table (data, type, schema) holds three ``array('q')`` columns —
subjects, predicates, objects — plus *sorted posting runs* per ``(p, s)``
and ``(p, o)`` composite key and per bare subject / object column.  A run
is a pair of parallel arrays ``(keys, positions)`` sorted by
``(key, position)`` with an unsorted *pending tail* that absorbs
incremental inserts; the tail is folded back into the sorted run whenever
it outgrows :data:`TAIL_MERGE_LIMIT` (one timsort merge of two sorted
sequences).  Selection shapes become binary-search range scans over the
runs, ``scan_columns`` yields the column arrays in slices, and bulk loads
defer all index building to the first indexed read — a warm start from a
column-blob snapshot is three ``frombytes`` per table and nothing else.

Because row positions grow monotonically and every pending position is
larger than every merged one, a run sorted by ``(key, position)`` yields
positions in ascending — i.e. insertion — order for any single key, which
preserves the deterministic iteration order the evaluator and the
order-robustness tests rely on.
"""

from __future__ import annotations

import sys
from array import array
from bisect import bisect_left, bisect_right
from itertools import groupby
from operator import itemgetter
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import StoreClosedError
from repro.model.dictionary import EncodedTriple
from repro.model.triple import TripleKind
from repro.store.base import ColumnView, SortedRun, TripleStore, shard_of

__all__ = ["MemoryStore", "TAIL_MERGE_LIMIT", "BULK_REBUILD_THRESHOLD"]

_EMPTY = array("q")

#: Pending-tail length beyond which a posting run folds the tail back into
#: its sorted part on the next lookup.  Below it, lookups scan the tail
#: linearly — bounded work that keeps single-row ingest O(1) amortized.
TAIL_MERGE_LIMIT = 128

#: An insert batch larger than this (and than half the resident rows)
#: drops the table's indexes and rebuilds them lazily in one grouped pass
#: instead of appending row by row — the deferred-index bulk-load path.
BULK_REBUILD_THRESHOLD = 4096


class _Run:
    """One posting index as a (sorted-run, pending-tail) pair.

    ``keys``/``positions`` are parallel arrays sorted by ``(key, position)``;
    ``tail_keys``/``tail_positions`` hold unmerged appends in arrival order.
    All tail positions exceed all merged positions (positions only grow),
    so a merge is a stable two-run timsort and per-key position order stays
    ascending.
    """

    __slots__ = ("keys", "positions", "tail_keys", "tail_positions", "value_cache")

    def __init__(self):
        self.keys = array("q")
        self.positions = array("q")
        self.tail_keys = array("q")
        self.tail_positions = array("q")
        #: Run-derived structures memoized by :class:`SortedRun` (run-order
        #: column values, key group directory); dropped whenever the run's
        #: (keys, positions) change.
        self.value_cache: Dict[int, object] = {}

    def append(self, key: int, position: int) -> None:
        self.tail_keys.append(key)
        self.tail_positions.append(position)
        if self.value_cache:
            self.value_cache = {}

    def merge(self) -> None:
        """Fold the pending tail into the sorted run."""
        if not self.tail_keys:
            return
        pairs = sorted(zip(self.tail_keys, self.tail_positions))
        if self.keys:
            combined = list(zip(self.keys, self.positions))
            combined.extend(pairs)
            # two concatenated sorted runs: timsort merges them in ~n comparisons
            combined.sort()
        else:
            combined = pairs
        self.keys = array("q", map(itemgetter(0), combined))
        self.positions = array("q", map(itemgetter(1), combined))
        del self.tail_keys[:]
        del self.tail_positions[:]
        # a fresh dict, not .clear(): SortedRun views of the pre-merge
        # arrays keep their own (still aligned) cached values
        if self.value_cache:
            self.value_cache = {}

    def positions_for(self, key: int) -> Sequence[int]:
        """Row positions holding *key*, in ascending (insertion) order."""
        if len(self.tail_keys) > TAIL_MERGE_LIMIT:
            self.merge()
        keys = self.keys
        lo = bisect_left(keys, key)
        hi = bisect_right(keys, key, lo)
        matched = self.positions[lo:hi]
        if self.tail_keys:
            tail_positions = self.tail_positions
            extra = [
                tail_positions[index]
                for index, tail_key in enumerate(self.tail_keys)
                if tail_key == key
            ]
            if extra:
                matched = array("q", matched) if not isinstance(matched, array) else matched
                matched.extend(extra)
        return matched

    def __len__(self) -> int:
        return len(self.keys) + len(self.tail_keys)


class _Table:
    """One encoded triple table: three columns plus posting runs.

    Index structures (built lazily after bulk loads):

    * ``ps_runs[p]`` — run keyed by subject over the rows of property *p*;
    * ``po_runs[p]`` — the object-keyed dual;
    * ``s_run`` / ``o_run`` — whole-table runs keyed by subject / object
      (serve the predicate-unbound shapes without per-node dicts);
    * ``by_predicate[p]`` — row positions of property *p* in insertion
      order (the full-property fetch of the hash join).
    """

    __slots__ = (
        "s_col",
        "p_col",
        "o_col",
        "ps_runs",
        "po_runs",
        "s_run",
        "o_run",
        "by_predicate",
        "_indexed",
        "index_builds",
    )

    def __init__(self):
        self.s_col = array("q")
        self.p_col = array("q")
        self.o_col = array("q")
        self.ps_runs: Dict[int, _Run] = {}
        self.po_runs: Dict[int, _Run] = {}
        self.s_run = _Run()
        self.o_run = _Run()
        self.by_predicate: Dict[int, array] = {}
        self._indexed = True  # an empty table is trivially indexed
        #: Number of full (deferred) index builds — observability for the
        #: zero-rebuild warm-start guarantee.
        self.index_builds = 0

    def __len__(self) -> int:
        return len(self.s_col)

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------
    def append_batch(self, rows: Sequence[Tuple[int, int, int]]) -> None:
        start = len(self.s_col)
        if len(rows) == 1:
            subject, predicate, obj = rows[0]
            self.s_col.append(subject)
            self.p_col.append(predicate)
            self.o_col.append(obj)
        else:
            subjects, predicates, objects = zip(*rows)
            self.s_col.extend(subjects)
            self.p_col.extend(predicates)
            self.o_col.extend(objects)
        if not self._indexed:
            return
        if len(rows) > BULK_REBUILD_THRESHOLD and len(rows) * 2 >= start:
            # bulk load: cheaper to regroup everything once, lazily
            self._drop_indexes()
            return
        s_col, p_col, o_col = self.s_col, self.p_col, self.o_col
        ps_runs, po_runs = self.ps_runs, self.po_runs
        s_run, o_run = self.s_run, self.o_run
        by_predicate = self.by_predicate
        for position in range(start, len(s_col)):
            subject = s_col[position]
            predicate = p_col[position]
            obj = o_col[position]
            run = ps_runs.get(predicate)
            if run is None:
                run = ps_runs[predicate] = _Run()
                po_runs[predicate] = _Run()
                by_predicate[predicate] = array("q")
            run.append(subject, position)
            po_runs[predicate].append(obj, position)
            by_predicate[predicate].append(position)
            s_run.append(subject, position)
            o_run.append(obj, position)

    def _drop_indexes(self) -> None:
        self.ps_runs = {}
        self.po_runs = {}
        self.s_run = _Run()
        self.o_run = _Run()
        self.by_predicate = {}
        self._indexed = False

    def mark_unindexed(self) -> None:
        """Defer index building (the column-blob warm-load path)."""
        self._drop_indexes()

    def subject_run(self) -> "_Run":
        """The merged whole-table subject run, built *alone* when the full
        index is still deferred.

        Shard partitioning only consumes the subject run; paying the whole
        deferred build (four column sorts plus two predicate groupings)
        inside a pack would triple the coordinator's ship latency for
        structures the pack never reads.  The single sort done here is kept
        on the table, and :meth:`_ensure_indexed` adopts it instead of
        re-sorting when the remaining structures are eventually needed.
        """
        if self._indexed:
            self.s_run.merge()
            return self.s_run
        if len(self.s_run) != len(self.s_col):
            pairs = sorted(zip(self.s_col, range(len(self.s_col))))
            run = _Run()
            run.keys = array("q", map(itemgetter(0), pairs))
            run.positions = array("q", map(itemgetter(1), pairs))
            self.s_run = run
        return self.s_run

    def _ensure_indexed(self) -> None:
        if self._indexed:
            return
        n = len(self.s_col)
        s_col, p_col, o_col = self.s_col, self.p_col, self.o_col
        positions = range(n)

        if len(self.s_run) == n:
            s_run = self.s_run  # prebuilt by subject_run()
        else:
            pairs = sorted(zip(s_col, positions))
            self.s_run = s_run = _Run()
            s_run.keys = array("q", map(itemgetter(0), pairs))
            s_run.positions = array("q", map(itemgetter(1), pairs))

        pairs = sorted(zip(o_col, positions))
        self.o_run = o_run = _Run()
        o_run.keys = array("q", map(itemgetter(0), pairs))
        o_run.positions = array("q", map(itemgetter(1), pairs))

        first = itemgetter(0)
        ps_runs: Dict[int, _Run] = {}
        by_predicate: Dict[int, array] = {}
        for predicate, group in groupby(sorted(zip(p_col, s_col, positions)), key=first):
            members = list(group)
            run = _Run()
            run.keys = array("q", map(itemgetter(1), members))
            run.positions = array("q", map(itemgetter(2), members))
            ps_runs[predicate] = run
            by_predicate[predicate] = array("q", sorted(run.positions))
        po_runs: Dict[int, _Run] = {}
        for predicate, group in groupby(sorted(zip(p_col, o_col, positions)), key=first):
            members = list(group)
            run = _Run()
            run.keys = array("q", map(itemgetter(1), members))
            run.positions = array("q", map(itemgetter(2), members))
            po_runs[predicate] = run
        self.ps_runs = ps_runs
        self.po_runs = po_runs
        self.by_predicate = by_predicate
        self._indexed = True
        self.index_builds += 1

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    @property
    def rows(self) -> List[Tuple[int, int, int]]:
        """The table rows as ``(s, p, o)`` tuples (materialized; test aid)."""
        return list(zip(self.s_col, self.p_col, self.o_col))

    def _candidate_positions(
        self,
        subject: Optional[int],
        predicate: Optional[int],
        obj: Optional[int],
    ) -> Optional[Sequence[int]]:
        """The most selective posting run's positions for the given shape.

        Returns ``None`` only for the fully unbound shape (a genuine table
        scan).  Composite shapes hit the per-predicate runs directly; the
        ``(s, o)`` shape picks the shorter of the two whole-table ranges.
        """
        self._ensure_indexed()
        if predicate is not None:
            if subject is not None:
                run = self.ps_runs.get(predicate)
                return _EMPTY if run is None else run.positions_for(subject)
            if obj is not None:
                run = self.po_runs.get(predicate)
                return _EMPTY if run is None else run.positions_for(obj)
            return self.by_predicate.get(predicate, _EMPTY)
        if subject is not None:
            if obj is not None:
                subject_positions = self.s_run.positions_for(subject)
                object_positions = self.o_run.positions_for(obj)
                return (
                    subject_positions
                    if len(subject_positions) <= len(object_positions)
                    else object_positions
                )
            return self.s_run.positions_for(subject)
        if obj is not None:
            return self.o_run.positions_for(obj)
        return None

    def select(
        self,
        subject: Optional[int],
        predicate: Optional[int],
        obj: Optional[int],
    ) -> Iterator[EncodedTriple]:
        candidate_positions = self._candidate_positions(subject, predicate, obj)
        s_col, p_col, o_col = self.s_col, self.p_col, self.o_col
        if candidate_positions is None:
            candidate_positions = range(len(s_col))
        for position in candidate_positions:
            row_subject = s_col[position]
            if subject is not None and row_subject != subject:
                continue
            row_predicate = p_col[position]
            if predicate is not None and row_predicate != predicate:
                continue
            row_object = o_col[position]
            if obj is not None and row_object != obj:
                continue
            yield EncodedTriple(row_subject, row_predicate, row_object)

    def select_many(
        self,
        subjects: Optional[Iterable[int]],
        predicate: Optional[int],
        objects: Optional[Iterable[int]],
    ) -> List[Tuple[int, int, int]]:
        """Batched selection over the posting runs (see the store method).

        Repeated ids in *subjects* / *objects* are deduplicated (insertion
        order preserved) so multiset key lists cannot yield duplicate rows.
        """
        self._ensure_indexed()
        s_col, p_col, o_col = self.s_col, self.p_col, self.o_col
        out: List[Tuple[int, int, int]] = []
        if subjects is not None:
            object_set = None if objects is None else set(objects)
            if predicate is not None:
                run = self.ps_runs.get(predicate)
                if run is None:
                    return out
                for subject in dict.fromkeys(subjects):
                    for position in run.positions_for(subject):
                        obj = o_col[position]
                        if object_set is None or obj in object_set:
                            out.append((subject, predicate, obj))
            else:
                s_run = self.s_run
                for subject in dict.fromkeys(subjects):
                    for position in s_run.positions_for(subject):
                        obj = o_col[position]
                        if object_set is None or obj in object_set:
                            out.append((subject, p_col[position], obj))
            return out
        if objects is not None:
            if predicate is not None:
                run = self.po_runs.get(predicate)
                if run is None:
                    return out
                for obj in dict.fromkeys(objects):
                    out.extend(
                        (s_col[position], predicate, obj)
                        for position in run.positions_for(obj)
                    )
            else:
                o_run = self.o_run
                for obj in dict.fromkeys(objects):
                    out.extend(
                        (s_col[position], p_col[position], obj)
                        for position in o_run.positions_for(obj)
                    )
            return out
        if predicate is not None:
            positions = self.by_predicate.get(predicate)
            if positions is None:
                return out
            return [(s_col[position], predicate, o_col[position]) for position in positions]
        return list(zip(s_col, p_col, o_col))

    def sorted_run(self, predicate: int, by_object: bool) -> Optional[SortedRun]:
        """The fully merged posting run of *predicate*, or ``None``."""
        self._ensure_indexed()
        runs = self.po_runs if by_object else self.ps_runs
        run = runs.get(predicate)
        if run is None:
            return None
        run.merge()
        return SortedRun(
            run.keys, run.positions, (self.s_col, self.p_col, self.o_col), run.value_cache
        )

    def distinct_properties(self) -> List[int]:
        # derived from the raw column: no index build forced by a scan-only
        # consumer (the statistics pass runs before any select)
        return sorted(set(self.p_col))


class MemoryStore(TripleStore):
    """Pure in-memory :class:`TripleStore` backend (columnar)."""

    #: Advertises :meth:`column_bytes` / :meth:`load_column_bytes` to the
    #: persistence layer's packed-blob snapshot path.
    supports_column_snapshot = True

    def __init__(self):
        super().__init__()
        self._tables: Dict[TripleKind, _Table] = {
            TripleKind.DATA: _Table(),
            TripleKind.TYPE: _Table(),
            TripleKind.SCHEMA: _Table(),
        }
        #: Physical dedup set keyed ``(kind, (s, p, o))``; ``None`` after a
        #: column-blob load — rebuilt lazily on the first insert so pure
        #: readers never pay for it.
        self._seen: Optional[Set[Tuple[TripleKind, Tuple[int, int, int]]]] = set()
        self._closed = False

    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosedError("the store has been closed")

    def _seen_set(self) -> Set[Tuple[TripleKind, Tuple[int, int, int]]]:
        seen = self._seen
        if seen is None:
            seen = set()
            for kind, table in self._tables.items():
                for row in zip(table.s_col, table.p_col, table.o_col):
                    seen.add((kind, row))
            self._seen = seen
        return seen

    def _insert_rows(self, rows: Iterable[Tuple[TripleKind, EncodedTriple]]) -> None:
        self._check_open()
        self._insert_fresh(rows)

    def _insert_fresh(
        self, rows: Iterable[Tuple[TripleKind, EncodedTriple]]
    ) -> List[Tuple[TripleKind, EncodedTriple]]:
        """Insert rows not already present; return the fresh subset."""
        seen = self._seen_set()
        buffers: Dict[TripleKind, List[Tuple[int, int, int]]] = {
            kind: [] for kind in self._tables
        }
        fresh: List[Tuple[TripleKind, EncodedTriple]] = []
        for kind, row in rows:
            key = (kind, (row[0], row[1], row[2]))
            if key in seen:
                continue
            seen.add(key)
            buffers[kind].append(key[1])
            fresh.append((kind, row))
        for kind, buffer in buffers.items():
            if buffer:
                self._tables[kind].append_batch(buffer)
        return fresh

    def insert_encoded_rows(
        self,
        rows: Iterable[Tuple[TripleKind, EncodedTriple]],
        skip_existing: bool = True,
    ) -> List[Tuple[TripleKind, EncodedTriple]]:
        """Deduplicated encoded insert via the ``_seen`` set (no select probes).

        Whatever *skip_existing* says, the store deduplicates physically and
        the return value is the rows **actually inserted** — consistent with
        the SQLite store, which physically inserts (and therefore returns)
        every row it was handed under the no-duplicates bulk contract.
        Membership here is a single hash probe per row, which is what makes
        this the hot path of incremental saturation.
        """
        self._check_open()
        return self._insert_fresh(rows)

    # ------------------------------------------------------------------
    # scans
    # ------------------------------------------------------------------
    def _scan(self, kind: TripleKind) -> Iterator[EncodedTriple]:
        self._check_open()
        table = self._tables[kind]
        return iter(list(map(EncodedTriple, table.s_col, table.p_col, table.o_col)))

    def scan_data(self) -> Iterator[EncodedTriple]:
        return self._scan(TripleKind.DATA)

    def scan_types(self) -> Iterator[EncodedTriple]:
        return self._scan(TripleKind.TYPE)

    def scan_schema(self) -> Iterator[EncodedTriple]:
        return self._scan(TripleKind.SCHEMA)

    def scan_batches(
        self, kind: TripleKind, batch_size: int = 50_000
    ) -> Iterator[List[Tuple[int, int, int]]]:
        """Yield row-tuple batches zipped straight off the column slices."""
        self._check_open()
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        table = self._tables[kind]
        s_col, p_col, o_col = table.s_col, table.p_col, table.o_col
        for start in range(0, len(s_col), batch_size):
            end = start + batch_size
            yield list(zip(s_col[start:end], p_col[start:end], o_col[start:end]))

    def scan_columns(
        self, kind: TripleKind, batch_size: int = 65_536
    ) -> Iterator[Tuple[array, array, array]]:
        """Yield ``(s, p, o)`` column slices directly — the zero-copy-ish
        scan of the summarization and statistics passes (an ``array`` slice
        is one C-level copy; no per-row tuple is ever built)."""
        self._check_open()
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        table = self._tables[kind]
        s_col, p_col, o_col = table.s_col, table.p_col, table.o_col
        for start in range(0, len(s_col), batch_size):
            end = start + batch_size
            yield s_col[start:end], p_col[start:end], o_col[start:end]

    def columns(self, kind: TripleKind) -> Tuple[array, array, array]:
        """The live ``(s, p, o)`` arrays of the *kind* table (read-only)."""
        self._check_open()
        table = self._tables[kind]
        return table.s_col, table.p_col, table.o_col

    # ------------------------------------------------------------------
    # selection
    # ------------------------------------------------------------------
    def select(
        self,
        kind: TripleKind,
        subject: Optional[int] = None,
        predicate: Optional[int] = None,
        obj: Optional[int] = None,
    ) -> Iterator[EncodedTriple]:
        self._check_open()
        return self._tables[kind].select(subject, predicate, obj)

    def select_many(
        self,
        kind: TripleKind,
        subjects: Optional[Iterable[int]] = None,
        predicate: Optional[int] = None,
        objects: Optional[Iterable[int]] = None,
    ) -> List[Tuple[int, int, int]]:
        self._check_open()
        return self._tables[kind].select_many(subjects, predicate, objects)

    def sorted_run(
        self, kind: TripleKind, predicate: int, by_object: bool = False
    ) -> Optional[SortedRun]:
        self._check_open()
        return self._tables[kind].sorted_run(predicate, by_object)

    def count(self, kind: TripleKind) -> int:
        self._check_open()
        return len(self._tables[kind])

    def distinct_properties(self, kind: TripleKind) -> List[int]:
        self._check_open()
        return self._tables[kind].distinct_properties()

    # ------------------------------------------------------------------
    # column-blob snapshots (the persistence layer's zero-copy path)
    # ------------------------------------------------------------------
    def column_bytes(self, kind: TripleKind) -> Tuple[int, bytes, bytes, bytes]:
        """``(row_count, s_bytes, p_bytes, o_bytes)`` — the packed columns."""
        self._check_open()
        table = self._tables[kind]
        return (
            len(table.s_col),
            table.s_col.tobytes(),
            table.p_col.tobytes(),
            table.o_col.tobytes(),
        )

    def load_column_bytes(
        self,
        kind: TripleKind,
        s_bytes: bytes,
        p_bytes: bytes,
        o_bytes: bytes,
        byteorder: str = sys.byteorder,
    ) -> int:
        """Adopt packed columns for an (empty) *kind* table; return the rows.

        The warm-start path: three ``frombytes`` calls, **no** index build,
        no dedup-set build — both are deferred to the first read / insert
        that needs them.  Returns the number of rows loaded.
        """
        self._check_open()
        table = self._tables[kind]
        if len(table):
            raise ValueError(f"{kind.name} table is not empty")
        for column, blob in (
            (table.s_col, s_bytes),
            (table.p_col, p_bytes),
            (table.o_col, o_bytes),
        ):
            column.frombytes(blob)
            if byteorder != sys.byteorder:
                column.byteswap()
        if not (len(table.s_col) == len(table.p_col) == len(table.o_col)):
            raise ValueError("column blobs disagree on row count")
        table.mark_unindexed()
        self._seen = None
        return len(table)

    def adopt_column_buffers(
        self,
        kind: TripleKind,
        s_buffer,
        p_buffer,
        o_buffer,
        byteorder: str = sys.byteorder,
    ) -> int:
        """Adopt externally owned int64 column buffers for an empty table.

        The zero-copy twin of :meth:`load_column_bytes`: instead of copying
        the blobs into private ``array('q')`` columns, the table's base
        columns become :class:`~repro.store.base.ColumnView` objects —
        ``memoryview.cast('q')`` windows over buffers someone else owns
        (a shared-memory segment), with private tails absorbing every later
        insert.  Zero bytes copied, zero index built (deferred exactly like
        the blob path); posting runs, sorted runs and scans behave
        identically.  A foreign *byteorder* cannot alias the buffer (the
        rows need a byteswap), so it degrades to the copying
        :meth:`load_column_bytes` path — correctness first, sharing when
        the bytes allow it.

        The buffers must outlive the store; :meth:`close` releases the
        adopted views so the owner can unmap the backing segment.
        """
        self._check_open()
        if byteorder != sys.byteorder:
            return self.load_column_bytes(
                kind,
                bytes(s_buffer),
                bytes(p_buffer),
                bytes(o_buffer),
                byteorder=byteorder,
            )
        table = self._tables[kind]
        if len(table):
            raise ValueError(f"{kind.name} table is not empty")
        views = []
        try:
            for buffer in (s_buffer, p_buffer, o_buffer):
                view = memoryview(buffer)
                if view.nbytes % 8:
                    raise ValueError("column buffer is not a whole number of int64s")
                views.append(ColumnView(view))
        except BaseException:
            for view in views:
                view.release()
            raise
        if not (len(views[0]) == len(views[1]) == len(views[2])):
            for view in views:
                view.release()
            raise ValueError("column buffers disagree on row count")
        table.s_col, table.p_col, table.o_col = views
        table.mark_unindexed()
        self._seen = None
        return len(table)

    def column_memory(self) -> Dict[str, int]:
        """Deterministic column-byte accounting: private vs adopted.

        ``private_bytes`` counts process-owned column storage (plain
        ``array('q')`` columns plus the tails of adopted views);
        ``adopted_bytes`` counts borrowed base buffers (shared segments —
        one physical copy per host however many stores adopt them).  This
        is what the cluster bench gates sub-linear replica memory on: raw
        RSS attributes every touched shared page to every process and
        would hide exactly the sharing being measured.
        """
        self._check_open()
        private = 0
        adopted = 0
        for table in self._tables.values():
            for column in (table.s_col, table.p_col, table.o_col):
                if isinstance(column, ColumnView):
                    adopted += column.base_nbytes
                    private += column.tail_nbytes
                else:
                    private += len(column) * column.itemsize
        return {"private_bytes": private, "adopted_bytes": adopted}

    def partition_column_bytes(
        self, kind: TripleKind, shard_count: int
    ) -> List[Tuple[int, bytes, bytes, bytes]]:
        """Shard extraction off the merged subject run (subject-clustered).

        Instead of re-routing row by row in table order (the base-class
        fallback), this walks the table's whole-table subject run after a
        full merge: each group of equal subjects is appended to its shard
        :func:`~repro.store.base.shard_of` in one sweep, so every shard's
        columns come out **sorted by subject** with per-subject rows in
        insertion order.  A worker adopting such a blob therefore starts
        from subject-clustered columns — its own deferred index build
        sorts near-sorted input, and merge-join strategies see long
        subject runs from the first query.
        """
        self._check_open()
        if shard_count <= 0:
            raise ValueError("shard_count must be positive")
        table = self._tables[kind]
        # only the subject run is consumed — don't force the full deferred
        # index build (predicate runs, object run) inside a pack
        run = table.subject_run()
        keys, positions = run.keys, run.positions
        p_col, o_col = table.p_col, table.o_col
        # two passes, both dominated by C-level copies: group the merged run
        # into per-shard subject/position arrays (array.extend of an array
        # slice is a memcpy — one Python step per *distinct subject*, not
        # per row), then gather the p/o columns through each shard's
        # position array in one map() sweep per column
        shard_subjects = [array("q") for _ in range(shard_count)]
        shard_positions = [array("q") for _ in range(shard_count)]
        total = len(keys)
        index = 0
        while index < total:
            subject = keys[index]
            stop = bisect_right(keys, subject, index)
            shard = shard_of(subject, shard_count)
            shard_subjects[shard].extend(keys[index:stop])
            shard_positions[shard].extend(positions[index:stop])
            index = stop
        parts: List[Tuple[int, bytes, bytes, bytes]] = []
        for subjects, gather in zip(shard_subjects, shard_positions):
            p_out = array("q", map(p_col.__getitem__, gather))
            o_out = array("q", map(o_col.__getitem__, gather))
            parts.append(
                (len(subjects), subjects.tobytes(), p_out.tobytes(), o_out.tobytes())
            )
        return parts

    def index_build_count(self) -> int:
        """Total full index builds across the three tables (observability)."""
        self._check_open()
        return sum(table.index_builds for table in self._tables.values())

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        # drop adopted views: the segment owner cannot close its mapping
        # while exported memoryviews are alive (BufferError)
        for table in self._tables.values():
            for column in (table.s_col, table.p_col, table.o_col):
                if isinstance(column, ColumnView):
                    column.release()
