"""In-memory encoded triple store.

This is the default backend: three lists of encoded rows (data, type,
schema) with hash indexes playing the role of the PostgreSQL tables plus
B-tree indexes of the paper's prototype.  Beyond the per-column indexes,
each table keeps two composite posting lists — ``(p, s) → rows`` and
``(p, o) → rows`` — which are what both the nested-loop evaluator's probes
(``select(subject=…, predicate=…)``) and the hash-join executor's batched
fetches (``select_many(subjects=…, predicate=…)``) actually hit; every
select shape routes through the most selective applicable index, and no
shape with at least one bound position ever scans the table.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import StoreClosedError
from repro.model.dictionary import EncodedTriple
from repro.model.triple import TripleKind
from repro.store.base import TripleStore

__all__ = ["MemoryStore"]

_EMPTY: Tuple[int, ...] = ()


class _Table:
    """One encoded triple table with per-column and composite indexes.

    All index posting lists hold row positions in insertion order, so every
    selection shape iterates rows in the deterministic order they were
    inserted — whichever index serves it.
    """

    __slots__ = ("rows", "by_subject", "by_predicate", "by_object", "by_ps", "by_po")

    def __init__(self):
        self.rows: List[EncodedTriple] = []
        self.by_subject: Dict[int, List[int]] = defaultdict(list)
        self.by_predicate: Dict[int, List[int]] = defaultdict(list)
        self.by_object: Dict[int, List[int]] = defaultdict(list)
        #: ``(predicate, subject) → row positions`` — the probe shape of the
        #: nested-loop join and the batch shape of the hash join.
        self.by_ps: Dict[Tuple[int, int], List[int]] = defaultdict(list)
        #: ``(predicate, object) → row positions`` — the object-anchored dual.
        self.by_po: Dict[Tuple[int, int], List[int]] = defaultdict(list)

    def insert(self, row: EncodedTriple) -> None:
        position = len(self.rows)
        self.rows.append(row)
        self.by_subject[row.subject].append(position)
        self.by_predicate[row.predicate].append(position)
        self.by_object[row.object].append(position)
        self.by_ps[(row.predicate, row.subject)].append(position)
        self.by_po[(row.predicate, row.object)].append(position)

    def _candidate_positions(
        self,
        subject: Optional[int],
        predicate: Optional[int],
        obj: Optional[int],
    ) -> Optional[Iterable[int]]:
        """The most selective index posting list for the given shape.

        Returns ``None`` only for the fully unbound shape (a genuine table
        scan).  Composite shapes hit the composite posting lists directly;
        the ``(s, o)`` shape picks the shorter of the two per-column lists.
        """
        if predicate is not None:
            if subject is not None:
                return self.by_ps.get((predicate, subject), _EMPTY)
            if obj is not None:
                return self.by_po.get((predicate, obj), _EMPTY)
            return self.by_predicate.get(predicate, _EMPTY)
        if subject is not None:
            if obj is not None:
                subject_positions = self.by_subject.get(subject, _EMPTY)
                object_positions = self.by_object.get(obj, _EMPTY)
                return (
                    subject_positions
                    if len(subject_positions) <= len(object_positions)
                    else object_positions
                )
            return self.by_subject.get(subject, _EMPTY)
        if obj is not None:
            return self.by_object.get(obj, _EMPTY)
        return None

    def select(
        self,
        subject: Optional[int],
        predicate: Optional[int],
        obj: Optional[int],
    ) -> Iterator[EncodedTriple]:
        candidate_positions = self._candidate_positions(subject, predicate, obj)
        rows = self.rows
        if candidate_positions is None:
            candidates: Iterable[EncodedTriple] = rows
        else:
            candidates = (rows[position] for position in candidate_positions)
        for row in candidates:
            if subject is not None and row.subject != subject:
                continue
            if predicate is not None and row.predicate != predicate:
                continue
            if obj is not None and row.object != obj:
                continue
            yield row

    def select_many(
        self,
        subjects: Optional[Iterable[int]],
        predicate: Optional[int],
        objects: Optional[Iterable[int]],
    ) -> List[EncodedTriple]:
        """Batched selection over the posting lists (see the store method)."""
        rows = self.rows
        out: List[EncodedTriple] = []
        if subjects is not None:
            object_set = None if objects is None else set(objects)
            if predicate is not None:
                by_ps = self.by_ps
                for subject in subjects:
                    for position in by_ps.get((predicate, subject), _EMPTY):
                        row = rows[position]
                        if object_set is None or row.object in object_set:
                            out.append(row)
            else:
                by_subject = self.by_subject
                for subject in subjects:
                    for position in by_subject.get(subject, _EMPTY):
                        row = rows[position]
                        if object_set is None or row.object in object_set:
                            out.append(row)
            return out
        if objects is not None:
            if predicate is not None:
                by_po = self.by_po
                for obj in objects:
                    out.extend(rows[position] for position in by_po.get((predicate, obj), _EMPTY))
            else:
                by_object = self.by_object
                for obj in objects:
                    out.extend(rows[position] for position in by_object.get(obj, _EMPTY))
            return out
        if predicate is not None:
            return [rows[position] for position in self.by_predicate.get(predicate, _EMPTY)]
        return list(rows)

    def distinct_properties(self) -> List[int]:
        return sorted(self.by_predicate.keys())


class MemoryStore(TripleStore):
    """Pure in-memory :class:`TripleStore` backend."""

    def __init__(self):
        super().__init__()
        self._tables: Dict[TripleKind, _Table] = {
            TripleKind.DATA: _Table(),
            TripleKind.TYPE: _Table(),
            TripleKind.SCHEMA: _Table(),
        }
        self._seen: Set[Tuple[TripleKind, EncodedTriple]] = set()
        self._closed = False

    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosedError("the store has been closed")

    def _insert_rows(self, rows: Iterable[Tuple[TripleKind, EncodedTriple]]) -> None:
        self._check_open()
        for kind, row in rows:
            key = (kind, row)
            if key in self._seen:
                continue
            self._seen.add(key)
            self._tables[kind].insert(row)

    def insert_encoded_rows(
        self,
        rows: Iterable[Tuple[TripleKind, EncodedTriple]],
        skip_existing: bool = True,
    ) -> List[Tuple[TripleKind, EncodedTriple]]:
        """Deduplicated encoded insert via the ``_seen`` set (no select probes).

        This is the hot path of incremental saturation — one call per
        derivation group — so it skips the generic per-kind
        ``_existing_rows`` machinery: membership here is a single hash
        probe per row (the store deduplicates unconditionally anyway).
        """
        self._check_open()
        if not skip_existing:
            # bulk-load contract: insert (dedup is this store's invariant
            # either way) and echo the batch back unfiltered
            rows = rows if isinstance(rows, list) else list(rows)
            self._insert_rows(rows)
            return rows
        seen = self._seen
        tables = self._tables
        fresh: List[Tuple[TripleKind, EncodedTriple]] = []
        for kind, row in rows:
            key = (kind, row)
            if key in seen:
                continue
            seen.add(key)
            tables[kind].insert(row)
            fresh.append((kind, row))
        return fresh

    def scan_data(self) -> Iterator[EncodedTriple]:
        self._check_open()
        return iter(list(self._tables[TripleKind.DATA].rows))

    def scan_types(self) -> Iterator[EncodedTriple]:
        self._check_open()
        return iter(list(self._tables[TripleKind.TYPE].rows))

    def scan_schema(self) -> Iterator[EncodedTriple]:
        self._check_open()
        return iter(list(self._tables[TripleKind.SCHEMA].rows))

    def scan_batches(
        self, kind: TripleKind, batch_size: int = 50_000
    ) -> Iterator[List[EncodedTriple]]:
        """Yield slices of the in-memory row list directly (no per-row work)."""
        self._check_open()
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        rows = self._tables[kind].rows
        for start in range(0, len(rows), batch_size):
            yield rows[start : start + batch_size]

    def select(
        self,
        kind: TripleKind,
        subject: Optional[int] = None,
        predicate: Optional[int] = None,
        obj: Optional[int] = None,
    ) -> Iterator[EncodedTriple]:
        self._check_open()
        return self._tables[kind].select(subject, predicate, obj)

    def select_many(
        self,
        kind: TripleKind,
        subjects: Optional[Iterable[int]] = None,
        predicate: Optional[int] = None,
        objects: Optional[Iterable[int]] = None,
    ) -> List[EncodedTriple]:
        self._check_open()
        return self._tables[kind].select_many(subjects, predicate, objects)

    def count(self, kind: TripleKind) -> int:
        self._check_open()
        return len(self._tables[kind].rows)

    def distinct_properties(self, kind: TripleKind) -> List[int]:
        self._check_open()
        return self._tables[kind].distinct_properties()

    def close(self) -> None:
        self._closed = True
