"""The :class:`TripleStore` interface.

The paper's prototype (Section 6) stores the encoded input graph in three
relational tables — data triples, type triples and schema triples — plus a
dictionary table, and drives summarization by scanning / selecting over
those tables.  :class:`TripleStore` captures exactly that contract so the
summarization algorithms can run against any backend:

* :class:`repro.store.memory.MemoryStore` — default, pure in-memory;
* :class:`repro.store.sqlite.SQLiteStore` — SQL-backed, mirroring the
  PostgreSQL architecture of the original system.
"""

from __future__ import annotations

import abc
from array import array
from bisect import bisect_left, bisect_right
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.model.dictionary import Dictionary, EncodedTriple
from repro.model.graph import RDFGraph
from repro.model.terms import Term
from repro.model.triple import Triple, TripleKind

__all__ = ["TripleStore", "StoreStatistics", "SortedRun", "ColumnView", "shard_of"]


def shard_of(subject_id: int, shard_count: int) -> int:
    """The shard owning *subject_id* under subject-hash partitioning.

    Dictionary ids are dense and assigned in first-seen order, so a plain
    modulo spreads subjects uniformly without a mixing step.  This is THE
    placement function of the cluster tier: :meth:`TripleStore.partition_column_bytes`
    routes rows with it, and the scatter-gather coordinator relies on every
    store having used exactly this function when it routes a
    constant-subject query to a single shard.
    """
    return subject_id % shard_count


class ColumnView:
    """One int64 column backed by a borrowed buffer plus a private tail.

    The zero-copy half of the shared-memory data plane: ``base`` is a
    ``memoryview`` cast to ``'q'`` over an *externally owned* buffer (a
    :mod:`multiprocessing.shared_memory` segment slice) and is never
    copied, while ``tail`` is an ordinary ``array('q')`` absorbing every
    append — exactly the sorted-run/pending-tail split the columnar store
    already uses, lifted to the storage level.  The view quacks like the
    ``array('q')`` column it replaces for every read path of
    :class:`repro.store.memory.MemoryStore` (integer indexing, slicing,
    iteration, ``tobytes``) and funnels all growth into the tail, so
    deltas stay process-private while the bulk of the graph stays one
    mapping shared by every worker on the host.

    The buffer's owner outlives the view; :meth:`release` drops the
    exported ``memoryview`` so the owner's segment can be closed without
    :class:`BufferError` (the store calls it from ``close()``).
    """

    __slots__ = ("base", "base_length", "tail")

    def __init__(self, base: memoryview):
        if base.itemsize != 8:
            base = base.cast("q")
        self.base = base
        self.base_length = len(base)
        self.tail = array("q")

    def __len__(self) -> int:
        return self.base_length + len(self.tail)

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(len(self))
            if step == 1:
                out = array("q")
                base_stop = min(stop, self.base_length)
                if start < base_stop:
                    out.frombytes(self.base[start:base_stop].tobytes())
                tail_start = max(start - self.base_length, 0)
                tail_stop = stop - self.base_length
                if tail_stop > tail_start:
                    out.extend(self.tail[tail_start:tail_stop])
                return out
            return array("q", (self[i] for i in range(start, stop, step)))
        if index < 0:
            index += len(self)
        if 0 <= index < self.base_length:
            return self.base[index]
        tail_index = index - self.base_length
        if 0 <= tail_index < len(self.tail):
            return self.tail[tail_index]
        raise IndexError("column index out of range")

    def __iter__(self) -> Iterator[int]:
        yield from self.base
        yield from self.tail

    def append(self, value: int) -> None:
        self.tail.append(value)

    def extend(self, values: Iterable[int]) -> None:
        self.tail.extend(values)

    def tobytes(self) -> bytes:
        return self.base.tobytes() + self.tail.tobytes()

    @property
    def base_nbytes(self) -> int:
        """Bytes of the borrowed (shared) buffer region."""
        return self.base_length * 8

    @property
    def tail_nbytes(self) -> int:
        """Bytes of the process-private tail."""
        return len(self.tail) * 8

    def release(self) -> None:
        """Drop the borrowed buffer (the view keeps only its tail).

        After release the base region reads as empty — the owner is about
        to unmap the segment, and a half-closed store must fail shut
        rather than fault on a dead mapping.
        """
        self.base.release()
        self.base = memoryview(b"").cast("q")
        self.base_length = 0


class SortedRun:
    """A read-only view of one fully merged posting run.

    ``keys`` and ``positions`` are parallel integer sequences sorted by
    ``(key, position)``: ``keys`` holds the indexed column's values (the
    subject for a ``(p, s)`` run, the object for a ``(p, o)`` run) and
    ``positions`` the corresponding row positions.  ``columns`` is the
    owning table's ``(s, p, o)`` column triple, so a consumer can resolve
    a matched position to the row's other endpoints without materializing
    row tuples.  :meth:`range` binary-searches the contiguous slice of one
    key — the probe primitive of the merge-join executor.

    ``value_cache``, when the owning store provides one, holds derived
    run-order structures — column values permuted into run order (keyed by
    column index) and the key group directory of :meth:`group_bounds` — so
    they are paid for once per run, not once per query.  The cache dict
    belongs to the store, which invalidates it (by replacement, keeping
    old :class:`SortedRun` snapshots self-consistent) whenever the run
    changes.
    """

    __slots__ = ("keys", "positions", "columns", "value_cache")

    #: value_cache key of the :meth:`group_bounds` directory (column values
    #: use their non-negative column index).
    _BOUNDS_KEY = -1

    def __init__(
        self,
        keys: Sequence[int],
        positions: Sequence[int],
        columns: Tuple[Sequence[int], Sequence[int], Sequence[int]],
        value_cache: Optional[Dict[int, object]] = None,
    ):
        self.keys = keys
        self.positions = positions
        self.columns = columns
        self.value_cache = value_cache

    def __len__(self) -> int:
        return len(self.keys)

    def column_values(self, column: int) -> Sequence[int]:
        """The *column* values aligned with ``keys`` (run order).

        Materialized through ``positions`` on first use and cached in the
        store-owned ``value_cache`` when one is attached, so repeated
        merge joins over the same run slice values without per-row
        indirection.
        """
        cache = self.value_cache
        if cache is not None:
            values = cache.get(column)
            if values is not None:
                return values
        source = self.columns[column]
        values = array("q", (source[position] for position in self.positions))
        if cache is not None:
            cache[column] = values
        return values

    def group_bounds(self) -> Dict[int, Tuple[int, int]]:
        """Key ``->`` half-open ``(start, stop)`` slice of the run.

        The directory of the run's key groups: one dict probe replaces the
        two binary searches of :meth:`range`, which is what makes the
        merge-join executor's probe loop competitive when the binding
        table carries thousands of distinct keys.  Built in one pass over
        the sorted keys and cached in the store-owned ``value_cache``, so
        every later query over the run joins against it for free.
        """
        cache = self.value_cache
        if cache is not None:
            bounds = cache.get(self._BOUNDS_KEY)
            if bounds is not None:
                return bounds
        bounds = {}
        previous = None
        start = 0
        for index, key in enumerate(self.keys):
            if key != previous:
                if previous is not None:
                    bounds[previous] = (start, index)
                previous = key
                start = index
        if previous is not None:
            bounds[previous] = (start, len(self.keys))
        if cache is not None:
            cache[self._BOUNDS_KEY] = bounds
        return bounds

    def range(self, key: int, lo: int = 0) -> Tuple[int, int]:
        """The half-open ``[start, stop)`` slice of *key*, searching from *lo*."""
        start = bisect_left(self.keys, key, lo)
        stop = bisect_right(self.keys, key, start)
        return start, stop


class StoreStatistics:
    """Row counts of the three encoded triple tables plus the dictionary."""

    __slots__ = ("data_rows", "type_rows", "schema_rows", "dictionary_size")

    def __init__(self, data_rows: int, type_rows: int, schema_rows: int, dictionary_size: int):
        self.data_rows = data_rows
        self.type_rows = type_rows
        self.schema_rows = schema_rows
        self.dictionary_size = dictionary_size

    @property
    def total_rows(self) -> int:
        return self.data_rows + self.type_rows + self.schema_rows

    def as_dict(self) -> dict:
        return {
            "data_rows": self.data_rows,
            "type_rows": self.type_rows,
            "schema_rows": self.schema_rows,
            "dictionary_size": self.dictionary_size,
            "total_rows": self.total_rows,
        }

    def __repr__(self):
        return (
            f"StoreStatistics(data={self.data_rows}, type={self.type_rows}, "
            f"schema={self.schema_rows}, dict={self.dictionary_size})"
        )


class TripleStore(abc.ABC):
    """Abstract encoded triple store with data / type / schema tables."""

    def __init__(self):
        self.dictionary = Dictionary()

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def load_graph(self, graph: RDFGraph) -> int:
        """Encode and load every triple of *graph*; return the row count."""
        return len(self.insert_triples(graph))

    def load_triples(self, triples: Iterable[Triple]) -> int:
        """Encode and load an arbitrary iterable of triples."""
        return self.load_graph(RDFGraph(triples))

    def insert_triples(
        self, triples: Iterable[Triple], skip_existing: bool = False
    ) -> List[Tuple[TripleKind, EncodedTriple]]:
        """Encode *triples* in one batched pass, insert them, return the rows.

        The returned ``(kind, encoded_row)`` list (input order) lets callers
        that maintain derived state — e.g. the incremental weak-summary
        maintenance of :class:`repro.service.catalog.GraphCatalog` — consume
        the freshly assigned ids without re-encoding.

        With ``skip_existing=False`` (the bulk-load default) callers are
        expected not to hand in triples already present: backends may or may
        not deduplicate (:class:`~repro.store.memory.MemoryStore` does, the
        SQLite backend inserts plain rows).  ``skip_existing=True`` filters
        both within the batch and against the stored rows (one indexed
        ``select`` probe per triple) and returns only the rows actually
        inserted — the contract incremental updaters need.
        """
        triple_list = triples if isinstance(triples, (list, tuple)) else list(triples)
        encoded = self.dictionary.encode_triples(triple_list)
        rows: List[Tuple[TripleKind, EncodedTriple]] = [
            (triple.kind, row) for triple, row in zip(triple_list, encoded)
        ]
        return self.insert_encoded_rows(rows, skip_existing=skip_existing)

    def insert_encoded_rows(
        self,
        rows: Iterable[Tuple[TripleKind, EncodedTriple]],
        skip_existing: bool = True,
    ) -> List[Tuple[TripleKind, EncodedTriple]]:
        """Insert already-encoded ``(kind, row)`` pairs; return the fresh ones.

        The encoded twin of :meth:`insert_triples` for callers that mint
        rows directly at the integer level — the incremental saturator
        derives ``G∞`` rows this way and needs the freshly-inserted subset
        back to know which derivations actually extended the store.  With
        ``skip_existing=True`` (the default here — derived rows routinely
        repeat) rows already present, and in-batch duplicates, are
        filtered; the ids must come from this store's dictionary.
        """
        rows = rows if isinstance(rows, list) else list(rows)
        if skip_existing:
            by_kind: Dict[TripleKind, List[EncodedTriple]] = {}
            for kind, row in rows:
                by_kind.setdefault(kind, []).append(row)
            existing = {
                kind: self._existing_rows(kind, kind_rows)
                for kind, kind_rows in by_kind.items()
            }
            fresh: List[Tuple[TripleKind, EncodedTriple]] = []
            batch_seen = set()
            for kind, row in rows:
                key = (kind, row[0], row[1], row[2])
                if key in batch_seen:
                    continue
                if (row[0], row[1], row[2]) in existing[kind]:
                    continue
                batch_seen.add(key)
                fresh.append((kind, row))
            rows = fresh
        self._insert_rows(rows)
        return rows

    def _existing_rows(
        self, kind: TripleKind, rows: List[EncodedTriple]
    ) -> "set[Tuple[int, int, int]]":
        """Which of *rows* the *kind* table already holds.

        The default probes the per-row ``select`` path; backends with a real
        query engine override this with one batched statement (the SQLite
        store does), so :meth:`insert_triples` deduplication stays O(1)
        round-trips per batch instead of per triple.
        """
        present = set()
        for row in rows:
            if next(iter(self.select(kind, row[0], row[1], row[2])), None) is not None:
                present.add((row[0], row[1], row[2]))
        return present

    @abc.abstractmethod
    def _insert_rows(self, rows: Iterable[Tuple[TripleKind, EncodedTriple]]) -> None:
        """Insert encoded rows tagged with the table they belong to."""

    # ------------------------------------------------------------------
    # scans (the SELECTs issued by the summarization algorithms)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def scan_data(self) -> Iterator[EncodedTriple]:
        """Scan the data-triples table (``SELECT s, p, o FROM D_G``)."""

    @abc.abstractmethod
    def scan_types(self) -> Iterator[EncodedTriple]:
        """Scan the type-triples table (``SELECT s, c FROM T_G`` with the
        type property id in the middle position)."""

    @abc.abstractmethod
    def scan_schema(self) -> Iterator[EncodedTriple]:
        """Scan the schema-triples table."""

    def scan_batches(
        self, kind: TripleKind, batch_size: int = 50_000
    ) -> Iterator[List[EncodedTriple]]:
        """Scan the *kind* table in chunks of up to *batch_size* rows.

        The encoded summarization engine iterates these batches instead of
        single rows so per-row iterator overhead stays off the hot path
        (the ``fetchmany`` discipline of the paper's JDBC experiments).
        Backends override this with a genuinely batched implementation; the
        default chunks the row-wise scan.  Rows are ``(s, p, o)`` integer
        tuples (:class:`EncodedTriple` or any 3-tuple).
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        scans = {
            TripleKind.DATA: self.scan_data,
            TripleKind.TYPE: self.scan_types,
            TripleKind.SCHEMA: self.scan_schema,
        }
        batch: List[EncodedTriple] = []
        for row in scans[kind]():
            batch.append(row)
            if len(batch) >= batch_size:
                yield batch
                batch = []
        if batch:
            yield batch

    def scan_columns(
        self, kind: TripleKind, batch_size: int = 65_536
    ) -> Iterator[Tuple[Sequence[int], Sequence[int], Sequence[int]]]:
        """Scan the *kind* table as ``(s, p, o)`` column batches.

        The columnar twin of :meth:`scan_batches`: each yielded item is a
        triple of parallel integer sequences (one value per row), which
        lets consumers bulk-update sets and dicts at C speed
        (``seen.update(s_column)``) instead of looping per row.  The
        memory backend yields its array slices directly; this default
        transposes :meth:`scan_batches` rows once per batch, so every
        backend supports the columnar consumers unmodified.
        """
        for batch in self.scan_batches(kind, batch_size):
            if not batch:
                continue
            columns = tuple(zip(*batch))
            yield (
                array("q", columns[0]),
                array("q", columns[1]),
                array("q", columns[2]),
            )

    def sorted_run(
        self, kind: TripleKind, predicate: int, by_object: bool = False
    ) -> Optional["SortedRun"]:
        """The merged ``(p, s)`` (or ``(p, o)``) posting run of *predicate*.

        Returns ``None`` when the backend keeps no sorted runs (the SQLite
        store) or the *kind* table never saw the predicate — callers such
        as the merge-join executor fall back to hash joining.  The memory
        backend returns a :class:`SortedRun` over its posting arrays.
        """
        return None

    def partition_column_bytes(
        self, kind: TripleKind, shard_count: int
    ) -> List[Tuple[int, bytes, bytes, bytes]]:
        """Subject-hash shard extraction: the *kind* table split into
        *shard_count* packed column blobs.

        Returns one ``(row_count, s_bytes, p_bytes, o_bytes)`` tuple per
        shard — the same blob format as the columnar snapshot path
        (``array('q')`` int64 columns in native byte order) — with every
        row routed to shard :func:`shard_of` ``(subject, shard_count)``.
        The shards are an exact partition of the table: disjoint, and
        their union is the full row multiset.  Callers must not rely on
        row order within a shard (backends differ; the memory store emits
        subject-clustered rows).

        This default walks :meth:`scan_columns`, so every backend —
        including SQLite — can feed the cluster tier; columnar backends
        override it with an index-driven extraction.
        """
        if shard_count <= 0:
            raise ValueError("shard_count must be positive")
        shards = [(array("q"), array("q"), array("q")) for _ in range(shard_count)]
        for s_batch, p_batch, o_batch in self.scan_columns(kind):
            for subject, predicate, obj in zip(s_batch, p_batch, o_batch):
                columns = shards[shard_of(subject, shard_count)]
                columns[0].append(subject)
                columns[1].append(predicate)
                columns[2].append(obj)
        return [
            (len(s_col), s_col.tobytes(), p_col.tobytes(), o_col.tobytes())
            for s_col, p_col, o_col in shards
        ]

    def __len__(self) -> int:
        """Total rows across the three tables."""
        return (
            self.count(TripleKind.DATA)
            + self.count(TripleKind.TYPE)
            + self.count(TripleKind.SCHEMA)
        )

    def __bool__(self) -> bool:
        # an empty store is still a store: never let ``__len__`` leak into
        # truthiness checks on store references
        return True

    @abc.abstractmethod
    def select(
        self,
        kind: TripleKind,
        subject: Optional[int] = None,
        predicate: Optional[int] = None,
        obj: Optional[int] = None,
    ) -> Iterator[EncodedTriple]:
        """Select rows of the *kind* table matching the given id pattern."""

    def select_many(
        self,
        kind: TripleKind,
        subjects: Optional[Iterable[int]] = None,
        predicate: Optional[int] = None,
        objects: Optional[Iterable[int]] = None,
    ) -> Iterable[EncodedTriple]:
        """Batched selection: rows matching *predicate* (scalar, optional)
        whose subject is in *subjects* and object is in *objects* (each an
        optional id collection).

        This is the vectorized probe of the hash-join executor: one call per
        (pattern, table) replaces one :meth:`select` per intermediate
        binding.  Backends override it with genuinely batched access
        (posting lists in the memory store, chunked ``IN (...)`` statements
        in SQLite); the default composes per-value :meth:`select` calls and
        exists so third-party backends keep working unmodified.  Rows are
        ``(s, p, o)`` integer triples; callers must not rely on their order.
        """
        if subjects is None and objects is None:
            return self.select(kind, None, predicate, None)
        return self._select_many_fallback(kind, subjects, predicate, objects)

    def _select_many_fallback(
        self,
        kind: TripleKind,
        subjects: Optional[Iterable[int]],
        predicate: Optional[int],
        objects: Optional[Iterable[int]],
    ) -> Iterator[EncodedTriple]:
        # ids are deduplicated up front (``dict.fromkeys`` keeps first-seen
        # order): a caller passing a multiset key list must not receive the
        # same stored row once per repetition
        if subjects is not None and objects is not None:
            subject_list = list(dict.fromkeys(subjects))
            object_set = set(objects)
            if len(subject_list) <= len(object_set):
                for subject in subject_list:
                    for row in self.select(kind, subject, predicate, None):
                        if row[2] in object_set:
                            yield row
            else:
                subject_set = set(subject_list)
                for obj in object_set:
                    for row in self.select(kind, None, predicate, obj):
                        if row[0] in subject_set:
                            yield row
        elif subjects is not None:
            for subject in dict.fromkeys(subjects):
                yield from self.select(kind, subject, predicate, None)
        else:
            for obj in dict.fromkeys(objects):  # type: ignore[arg-type]
                yield from self.select(kind, None, predicate, obj)

    @abc.abstractmethod
    def count(self, kind: TripleKind) -> int:
        """Number of rows in the *kind* table."""

    @abc.abstractmethod
    def distinct_properties(self, kind: TripleKind) -> List[int]:
        """Distinct property ids occurring in the *kind* table."""

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release backend resources.  Idempotent."""

    def __enter__(self) -> "TripleStore":
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.close()
        return False

    # ------------------------------------------------------------------
    # decoding helpers
    # ------------------------------------------------------------------
    def decode_term(self, identifier: int) -> Term:
        """Decode an integer id back to an RDF term."""
        return self.dictionary.decode(identifier)

    def decode_triple(self, row: EncodedTriple) -> Triple:
        """Decode an encoded row back to a :class:`Triple`."""
        return self.dictionary.decode_triple(row)

    def to_graph(self, name: str = "") -> RDFGraph:
        """Decode the whole store back into an :class:`RDFGraph`."""
        graph = RDFGraph(name=name)
        for row in self.scan_data():
            graph.add(self.decode_triple(row))
        for row in self.scan_types():
            graph.add(self.decode_triple(row))
        for row in self.scan_schema():
            graph.add(self.decode_triple(row))
        return graph

    def statistics(self) -> StoreStatistics:
        """Return row counts per table and dictionary size."""
        return StoreStatistics(
            data_rows=self.count(TripleKind.DATA),
            type_rows=self.count(TripleKind.TYPE),
            schema_rows=self.count(TripleKind.SCHEMA),
            dictionary_size=len(self.dictionary),
        )
