"""Bisimulation-based quotient summaries — the related-work baseline.

Section 8 of the paper discusses bisimulation-based structural indexes
([14], [19] in its bibliography) as the main alternative family of graph
summaries, and argues against them for the query-oriented use case: "as the
size of the neighborhood increases, the size of bisimulation grows
exponentially and can be as large as the input graph".  To make that
comparison concrete, this module implements the baseline:

* **forward bisimulation** — two data nodes are equivalent when they have
  the same type set and, for every property, the same set of equivalence
  classes of successors;
* **backward bisimulation** — symmetric, on predecessors;
* **full bisimulation** — both directions at once;

each optionally bounded to ``k`` refinement rounds (the "height" of the
neighbourhood considered, as in [19]).  The quotient is built with the same
machinery as the paper's summaries, so sizes, compression ratios and
representativeness can be compared head-to-head (see
``benchmarks/bench_bisimulation_baseline.py``).

The partition is computed by standard partition refinement: start from the
type-set partition and iteratively split blocks whose members disagree on
the multiset of (property, neighbour block) pairs, until a fixpoint (or the
bound ``k``) is reached — O(k·|E|) with hashing.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from repro.core.equivalence import NodePartition
from repro.core.quotient import build_quotient_summary
from repro.core.summary import Summary
from repro.model.graph import RDFGraph
from repro.model.terms import Term

__all__ = [
    "forward_bisimulation_partition",
    "backward_bisimulation_partition",
    "full_bisimulation_partition",
    "bisimulation_summary",
]


def _refine(
    graph: RDFGraph,
    forward: bool,
    backward: bool,
    max_rounds: Optional[int],
) -> NodePartition:
    """Partition refinement over the data nodes of *graph*."""
    nodes = graph.data_nodes()
    # round 0: group by type set
    block_of: Dict[Term, Hashable] = {
        node: ("types", frozenset(graph.types_of(node))) for node in nodes
    }

    rounds = 0
    while max_rounds is None or rounds < max_rounds:
        rounds += 1
        updated: Dict[Term, Hashable] = {}
        for node in nodes:
            signature = [block_of[node]]
            if forward:
                successors = frozenset(
                    (triple.predicate, block_of[triple.object])
                    for triple in graph.triples(subject=node)
                    if triple.is_data()
                )
                signature.append(("out", successors))
            if backward:
                predecessors = frozenset(
                    (triple.predicate, block_of[triple.subject])
                    for triple in graph.triples(obj=node)
                    if triple.is_data()
                )
                signature.append(("in", predecessors))
            updated[node] = tuple(signature)

        # canonicalize the (deeply nested) signatures into small block ids so
        # keys stay hashable and comparisons stay cheap across rounds
        canonical: Dict[Hashable, int] = {}
        next_blocks: Dict[Term, Hashable] = {}
        for node in nodes:
            identifier = canonical.setdefault(updated[node], len(canonical))
            next_blocks[node] = ("bisim", identifier)

        if len(set(next_blocks.values())) == len(set(block_of.values())):
            # no block was split: fixpoint reached
            block_of = next_blocks
            break
        block_of = next_blocks

    return NodePartition(block_of)


def forward_bisimulation_partition(graph: RDFGraph, max_rounds: Optional[int] = None) -> NodePartition:
    """Partition of the data nodes by (bounded) forward bisimulation."""
    return _refine(graph, forward=True, backward=False, max_rounds=max_rounds)


def backward_bisimulation_partition(graph: RDFGraph, max_rounds: Optional[int] = None) -> NodePartition:
    """Partition of the data nodes by (bounded) backward bisimulation."""
    return _refine(graph, forward=False, backward=True, max_rounds=max_rounds)


def full_bisimulation_partition(graph: RDFGraph, max_rounds: Optional[int] = None) -> NodePartition:
    """Partition of the data nodes by (bounded) forward-and-backward bisimulation."""
    return _refine(graph, forward=True, backward=True, max_rounds=max_rounds)


def bisimulation_summary(
    graph: RDFGraph, direction: str = "forward", max_rounds: Optional[int] = None
) -> Summary:
    """Build the bisimulation quotient summary of *graph*.

    Parameters
    ----------
    graph:
        The input RDF graph.
    direction:
        ``"forward"``, ``"backward"`` or ``"full"``.
    max_rounds:
        Optional bound on the refinement depth (the neighbourhood height);
        ``None`` refines to the full bisimulation fixpoint.

    Returns
    -------
    Summary
        A :class:`~repro.core.summary.Summary` whose ``kind`` is
        ``"bisim_<direction>"``, comparable with the paper's summaries.
    """
    builders = {
        "forward": forward_bisimulation_partition,
        "backward": backward_bisimulation_partition,
        "full": full_bisimulation_partition,
    }
    if direction not in builders:
        raise ValueError(f"unknown bisimulation direction {direction!r}; use forward/backward/full")
    partition = builders[direction](graph, max_rounds=max_rounds)
    return build_quotient_summary(graph, partition, kind=f"bisim_{direction}")
