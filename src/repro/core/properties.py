"""Checkers for the formal properties of summaries (Propositions 1-10).

These functions turn the paper's propositions into executable checks used by
the test suite, the property-based tests and the E7/E8 benchmarks:

* :func:`has_unique_data_properties` — Proposition 4: every data property of
  ``G`` appears exactly once in the weak summary;
* :func:`check_fixpoint` — Propositions 2/6/9: ``H(H_G) ≅ H_G``;
* :func:`check_representativeness` — Proposition 1 / Definition 1: every
  RBGP query with answers on ``G∞`` has answers on ``(H_G)∞``;
* :func:`check_accuracy_witness` — Definition 2, witnessed form: every RBGP
  query with answers on ``(H_G)∞`` has answers on the saturation of some
  graph whose summary is ``H_G`` (the summary itself is such a witness,
  which is how Proposition 3 is proved);
* :func:`summary_homomorphism_holds` — the invariant underlying all of the
  above: mapping every node of ``G`` to its representative is a homomorphism
  from ``G``'s data+type triples into ``H_G``.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Tuple

from repro.core.builders import summarize
from repro.core.isomorphism import graphs_isomorphic
from repro.core.summary import Summary
from repro.model.graph import RDFGraph
from repro.model.namespaces import RDF_TYPE
from repro.model.triple import Triple
from repro.queries.bgp import BGPQuery
from repro.queries.evaluation import has_answers
from repro.schema.saturation import saturate_cached

__all__ = [
    "has_unique_data_properties",
    "check_fixpoint",
    "check_representativeness",
    "check_accuracy_witness",
    "summary_homomorphism_holds",
    "RepresentativenessReport",
]


class RepresentativenessReport:
    """Outcome of a representativeness / accuracy check over a query workload."""

    def __init__(self, total: int, preserved: int, failures: List[BGPQuery]):
        self.total = total
        self.preserved = preserved
        self.failures = failures

    @property
    def holds(self) -> bool:
        """``True`` when every applicable query was preserved."""
        return not self.failures

    @property
    def ratio(self) -> float:
        """Fraction of queries preserved (1.0 when the property holds)."""
        return self.preserved / self.total if self.total else 1.0

    def __repr__(self):
        return (
            f"RepresentativenessReport(total={self.total}, preserved={self.preserved}, "
            f"holds={self.holds})"
        )


def has_unique_data_properties(summary: Summary) -> bool:
    """Proposition 4: each data property labels exactly one edge of ``W_G``."""
    seen = set()
    for triple in summary.graph.data_triples:
        if triple.predicate in seen:
            return False
        seen.add(triple.predicate)
    return True


def check_fixpoint(summary: Summary) -> bool:
    """Propositions 2 / 6 / 9: summarizing the summary yields the summary.

    The summary of ``H_G`` (with the same kind) must be isomorphic to ``H_G``
    up to renaming of the minted summary nodes.
    """
    resummarized = summarize(summary.graph, summary.kind)
    return graphs_isomorphic(summary.graph, resummarized.graph)


def summary_homomorphism_holds(graph: RDFGraph, summary: Summary) -> bool:
    """Check that node representation is a homomorphism from ``G`` to ``H_G``.

    For every data triple ``s p o`` of ``G`` the triple
    ``rep(s) p rep(o)`` must be in ``H_G``; for every type triple ``s τ C``,
    ``rep(s) τ C`` must be in ``H_G``; schema triples must be copied.
    """
    for triple in graph.data_triples:
        source = summary.representative(triple.subject)
        target = summary.representative(triple.object)
        if source is None or target is None:
            return False
        if Triple(source, triple.predicate, target) not in summary.graph:
            return False
    for triple in graph.type_triples:
        source = summary.representative(triple.subject)
        if source is None:
            return False
        if Triple(source, RDF_TYPE, triple.object) not in summary.graph:
            return False
    for triple in graph.schema_triples:
        if triple not in summary.graph:
            return False
    return True


def check_representativeness(
    graph: RDFGraph,
    summary: Summary,
    queries: Iterable[BGPQuery],
    require_answers_on_graph: bool = True,
    saturated_graph: Optional[RDFGraph] = None,
    saturated_summary: Optional[RDFGraph] = None,
) -> RepresentativenessReport:
    """Definition 1 instantiated on a concrete RBGP workload.

    For every query ``q`` with ``q(G∞) ≠ ∅``, checks ``q((H_G)∞) ≠ ∅``.
    Queries with no answer on ``G∞`` are skipped (they do not constrain
    representativeness) unless ``require_answers_on_graph`` is ``False``, in
    which case all queries are evaluated on the summary regardless.

    ``G∞`` and ``(H_G)∞`` are saturated at most once per call — through the
    per-graph cache of :func:`saturate_cached`, so repeated checks against an
    unchanged graph/summary pay nothing — and callers that already hold the
    saturations can pass them in directly.
    """
    if saturated_graph is None:
        saturated_graph = saturate_cached(graph)
    if saturated_summary is None:
        saturated_summary = saturate_cached(summary.graph)
    total = 0
    preserved = 0
    failures: List[BGPQuery] = []
    for query in queries:
        if require_answers_on_graph and not has_answers(saturated_graph, query):
            continue
        total += 1
        if has_answers(saturated_summary, query):
            preserved += 1
        else:
            failures.append(query)
    return RepresentativenessReport(total, preserved, failures)


def check_accuracy_witness(
    summary: Summary, queries: Iterable[BGPQuery]
) -> RepresentativenessReport:
    """Definition 2, using the summary itself as the witness graph.

    A summary is accurate when every query matching ``(H_G)∞`` matches the
    saturation of *some* graph whose summary is ``H_G``.  Since a summary is
    a summary of itself (fixpoint, Proposition 2), ``H_G`` is always such a
    graph, so the check evaluates each query against ``(H_G)∞`` twice — the
    point of exposing it is to exercise the reasoning chain and to report
    which queries are supported by the summary at all.
    """
    saturated_summary = saturate_cached(summary.graph)
    total = 0
    preserved = 0
    failures: List[BGPQuery] = []
    for query in queries:
        if not has_answers(saturated_summary, query):
            continue
        total += 1
        # witness: the summary itself, whose saturation we just matched.
        preserved += 1
    return RepresentativenessReport(total, preserved, failures)
