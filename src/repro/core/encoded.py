"""Integer-encoded summarization engine (the paper's Section 6 fast path).

The paper's prototype never manipulates URIs or literals while summarizing:
the input graph is dictionary-encoded into integer triples stored in
relational tables, every map of Section 6.1 is keyed by integers, and the
summary is decoded back to RDF terms only once, at the very end.  This module
brings the quotient path (``cliques → equivalence → quotient → summary``) to
that same substrate: all five summary kinds run directly over the encoded
rows of a :class:`~repro.store.base.TripleStore` (memory or SQLite backend),
using an array-backed union-find over dense term ids and dict-of-int block
maps instead of ``Term``-keyed structures.

The engine is the default execution path of
:func:`repro.core.builders.summarize`; the original ``Term``-object pipeline
is kept as the ``engine="term"`` legacy path and the two are guaranteed to
produce isomorphic summaries (same structure, same minted-name scheme, same
``representative_of`` provenance) — the test suite asserts this for every
kind on every backend.

Algorithms, per kind
--------------------
* one batched pass over the data table builds the source/target property
  cliques (two union-finds over property ids, Definitions 5-6);
* one pass over the type table collects the class sets (Definition 8);
* the partition of Definitions 7/13/16 is derived purely from integer clique
  roots (``weak`` unions clique *tokens*, ``strong`` pairs the two roots,
  the typed variants exclude typed resources from the clique pass; only the
  ``type`` summary needs an extra endpoint-collection scan);
* a final batched pass quotients the data and type rows into integer summary
  edges, which are decoded into a :class:`~repro.core.summary.Summary`.

Every pass is linear in the number of rows, and the constant factor is a few
int-keyed dict operations per row — no ``Term`` hashing anywhere on the hot
path.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.naming import SummaryNamer
from repro.core.summary import Summary
from repro.errors import UnknownSummaryKindError
from repro.model.graph import GraphStatistics, RDFGraph
from repro.model.namespaces import RDF_TYPE
from repro.model.terms import Term, URI
from repro.model.triple import Triple, TripleKind
from repro.store.base import TripleStore

__all__ = [
    "EncodedSummaryEngine",
    "encoded_summarize",
    "summarize_graph_encoded",
    "ENCODED_KINDS",
]

#: The five summary kinds the engine supports (canonical names).
ENCODED_KINDS = ("weak", "strong", "type", "typed_weak", "typed_strong")

#: Sentinel clique root for "no clique" (node has no outgoing/incoming data property).
_NO_CLIQUE = -1


class _IntUnionFind:
    """Union-find over integer ids, storing only the ids actually touched.

    The canonical representative of a set is its *smallest* element, which
    makes clique and block roots deterministic regardless of the order the
    rows were scanned in — a property the reproducibility tests rely on.
    Path compression keeps the amortized cost near-constant.  A dict parent
    map (not a dense array) bounds memory by the number of *distinct*
    elements seen — term ids are global across URIs and literals, so a
    late-interned property can carry an id in the millions while the graph
    only has a handful of properties.
    """

    __slots__ = ("_parent",)

    def __init__(self) -> None:
        self._parent: Dict[int, int] = {}

    def find(self, element: int) -> int:
        parent = self._parent
        root = parent.get(element)
        if root is None:
            parent[element] = element
            return element
        while parent[root] != root:
            root = parent[root]
        while parent[element] != root:
            parent[element], element = root, parent[element]
        return root

    def union(self, first: int, second: int) -> int:
        root_a = self.find(first)
        root_b = self.find(second)
        if root_a == root_b:
            return root_a
        if root_b < root_a:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        return root_a


class EncodedSummaryEngine:
    """Summarizes the encoded graph held in a :class:`TripleStore`.

    Parameters
    ----------
    store:
        The loaded triple store; its dictionary is used for final decoding.
    batch_size:
        Rows per scan batch (forwarded to :meth:`TripleStore.scan_batches`).
    prepare_store:
        When ``True``, ask the backend to build its summarization indexes
        first (a no-op on backends without ``ensure_summarization_indexes``).
        Off by default: the engine itself only issues full scans, so the
        index pass helps ``select()``-driven consumers sharing the store,
        not these passes.
    """

    def __init__(
        self,
        store: TripleStore,
        batch_size: int = 50_000,
        prepare_store: bool = False,
    ):
        self.store = store
        self.batch_size = batch_size
        if prepare_store:
            prepare = getattr(store, "ensure_summarization_indexes", None)
            if prepare is not None:
                prepare()

    # ------------------------------------------------------------------
    # scan passes
    # ------------------------------------------------------------------
    def _data_columns(self):
        return self.store.scan_columns(TripleKind.DATA, self.batch_size)

    def _type_columns(self):
        return self.store.scan_columns(TripleKind.TYPE, self.batch_size)

    def _typed_subject_ids(self) -> Set[int]:
        """Every type-triple subject id — one bulk set update per batch."""
        typed: Set[int] = set()
        for subjects, _predicates, _objects in self._type_columns():
            typed.update(subjects)
        return typed

    def _compute_cliques(
        self, exclude: Optional[Set[int]] = None
    ) -> Tuple[_IntUnionFind, _IntUnionFind, Dict[int, int], Dict[int, int], Set[int]]:
        """One pass over the data table: source/target property cliques.

        Returns the two union-finds over property ids, the per-node *first*
        outgoing/incoming property (whose root is the node's clique), and the
        set of distinct data-property ids.  Endpoints in *exclude* do not
        contribute to clique relatedness — the typed summaries exclude the
        typed resources, restricting both sides to untyped nodes
        (Section 6.1) without needing the untyped set materialized first.
        """
        source_union = _IntUnionFind()
        target_union = _IntUnionFind()
        first_out: Dict[int, int] = {}
        first_in: Dict[int, int] = {}
        properties: Set[int] = set()

        for subjects, predicates, objects in self._data_columns():
            # the distinct-property set is a bulk C-level update per column
            # slice; only the union-find maintenance still walks rows
            properties.update(predicates)
            for subject, prop, obj in zip(subjects, predicates, objects):
                if exclude is None or subject not in exclude:
                    known = first_out.get(subject)
                    if known is None:
                        first_out[subject] = prop
                    elif known != prop:
                        source_union.union(known, prop)
                if exclude is None or obj not in exclude:
                    known = first_in.get(obj)
                    if known is None:
                        first_in[obj] = prop
                    elif known != prop:
                        target_union.union(known, prop)
        return source_union, target_union, first_out, first_in, properties

    def _scan_type_info(self) -> Tuple[Set[int], Dict[int, Set[int]]]:
        """One pass over the type table.

        Returns ``(typed_subjects, uri_types_of)``: every type-triple subject
        id, and the subject → {class id} map restricted to URI classes (the
        only ones that count for type equivalence, mirroring
        :meth:`RDFGraph.types_of`).
        """
        typed_subjects: Set[int] = set()
        uri_types_of: Dict[int, Set[int]] = {}
        class_is_uri: Dict[int, bool] = {}
        decode = self.store.dictionary.decode
        for subjects, _predicates, objects in self._type_columns():
            typed_subjects.update(subjects)
            for subject, class_id in zip(subjects, objects):
                is_uri = class_is_uri.get(class_id)
                if is_uri is None:
                    is_uri = isinstance(decode(class_id), URI)
                    class_is_uri[class_id] = is_uri
                if is_uri:
                    uri_types_of.setdefault(subject, set()).add(class_id)
        return typed_subjects, uri_types_of

    # ------------------------------------------------------------------
    # naming helpers (decode clique/class ids into the legacy namer keys)
    # ------------------------------------------------------------------
    def _decoded_property_set(self, property_ids: Iterable[int]) -> FrozenSet[URI]:
        decode = self.store.dictionary.decode
        return frozenset(decode(identifier) for identifier in property_ids)

    @staticmethod
    def _clique_members(
        union: _IntUnionFind, properties: Iterable[int]
    ) -> Dict[int, List[int]]:
        """Group property ids by clique root."""
        members: Dict[int, List[int]] = {}
        for prop in properties:
            members.setdefault(union.find(prop), []).append(prop)
        return members

    # ------------------------------------------------------------------
    # block assignment, one method per equivalence relation
    # ------------------------------------------------------------------
    def _weak_blocks(
        self,
        namer: SummaryNamer,
        exclude: Optional[Set[int]] = None,
        extra_nodes: Iterable[int] = (),
    ) -> Tuple[Dict[int, int], List[URI]]:
        """Blocks of weak equivalence ``≡W`` (or ``≡UW`` when restricted).

        Nodes transitively sharing a non-empty source or target clique land
        in one block; clique-less nodes (including the *extra_nodes*, used
        for typed-only resources) share the single ``Nτ`` block.
        """
        source_union, target_union, first_out, first_in, properties = self._compute_cliques(
            exclude
        )

        # Union the clique *tokens* through every node carrying both a source
        # and a target clique: token 2r = source clique rooted at r, token
        # 2r+1 = target clique rooted at r.
        token_union = _IntUnionFind()
        for node, prop in first_out.items():
            incoming = first_in.get(node)
            if incoming is not None:
                token_union.union(
                    2 * source_union.find(prop), 2 * target_union.find(incoming) + 1
                )

        # Attach each clique's properties to the weak block its token is in.
        block_source_props: Dict[int, List[int]] = {}
        block_target_props: Dict[int, List[int]] = {}
        source_roots_with_members = {source_union.find(p) for p in first_out.values()}
        target_roots_with_members = {target_union.find(p) for p in first_in.values()}
        for root, props in self._clique_members(source_union, properties).items():
            if root in source_roots_with_members:
                block_source_props.setdefault(token_union.find(2 * root), []).extend(props)
        for root, props in self._clique_members(target_union, properties).items():
            if root in target_roots_with_members:
                block_target_props.setdefault(token_union.find(2 * root + 1), []).extend(props)

        block_of: Dict[int, int] = {}
        block_uris: List[URI] = []
        block_of_token: Dict[int, int] = {}
        ntau_block = -1

        def block_for_token(token_root: int) -> int:
            existing = block_of_token.get(token_root)
            if existing is not None:
                return existing
            uri = namer.representation(
                self._decoded_property_set(block_target_props.get(token_root, ())),
                self._decoded_property_set(block_source_props.get(token_root, ())),
            )
            block = len(block_uris)
            block_uris.append(uri)
            block_of_token[token_root] = block
            return block

        for node, prop in first_out.items():
            block_of[node] = block_for_token(token_union.find(2 * source_union.find(prop)))
        for node, prop in first_in.items():
            if node not in block_of:
                block_of[node] = block_for_token(
                    token_union.find(2 * target_union.find(prop) + 1)
                )
        for node in extra_nodes:
            if node not in block_of:
                if ntau_block < 0:
                    ntau_block = len(block_uris)
                    block_uris.append(namer.representation(frozenset(), frozenset()))
                block_of[node] = ntau_block
        return block_of, block_uris

    def _strong_blocks(
        self,
        namer: SummaryNamer,
        exclude: Optional[Set[int]] = None,
        extra_nodes: Iterable[int] = (),
    ) -> Tuple[Dict[int, int], List[URI]]:
        """Blocks of strong equivalence ``≡S`` (or ``≡US`` when restricted).

        The block key is the node's ``(TC(r), SC(r))`` pair of clique roots.
        """
        source_union, target_union, first_out, first_in, properties = self._compute_cliques(
            exclude
        )
        source_members = self._clique_members(source_union, properties)
        target_members = self._clique_members(target_union, properties)

        block_of: Dict[int, int] = {}
        block_uris: List[URI] = []
        block_of_pair: Dict[Tuple[int, int], int] = {}

        def block_for_pair(target_root: int, source_root: int) -> int:
            pair = (target_root, source_root)
            existing = block_of_pair.get(pair)
            if existing is not None:
                return existing
            target_props = target_members.get(target_root, ()) if target_root >= 0 else ()
            source_props = source_members.get(source_root, ()) if source_root >= 0 else ()
            uri = namer.representation(
                self._decoded_property_set(target_props),
                self._decoded_property_set(source_props),
            )
            block = len(block_uris)
            block_uris.append(uri)
            block_of_pair[pair] = block
            return block

        for node in set(first_out) | set(first_in) | set(extra_nodes):
            out_prop = first_out.get(node)
            in_prop = first_in.get(node)
            source_root = source_union.find(out_prop) if out_prop is not None else _NO_CLIQUE
            target_root = target_union.find(in_prop) if in_prop is not None else _NO_CLIQUE
            block_of[node] = block_for_pair(target_root, source_root)
        return block_of, block_uris

    def _type_blocks(self, namer: SummaryNamer) -> Tuple[Dict[int, int], List[URI]]:
        """Blocks of type equivalence ``≡T`` (Definition 8).

        Nodes with identical (non-empty) URI class sets share a block; every
        other data node is a singleton.
        """
        typed_subjects, uri_types_of = self._scan_type_info()

        block_of: Dict[int, int] = {}
        block_uris: List[URI] = []
        block_of_classes: Dict[FrozenSet[int], int] = {}
        mint_untyped = namer.fresh_minter("N_untyped")

        def typed_block(class_ids: FrozenSet[int]) -> int:
            existing = block_of_classes.get(class_ids)
            if existing is not None:
                return existing
            uri = namer.class_set(self._decoded_property_set(class_ids))
            block = len(block_uris)
            block_uris.append(uri)
            block_of_classes[class_ids] = block
            return block

        def singleton_block() -> int:
            # ``C(∅)`` behaviour: untyped nodes are copied.  The arena minter
            # skips the per-call namer dispatch — one string build and one
            # set probe per node, same injectivity guarantee.
            uri = mint_untyped()
            block = len(block_uris)
            block_uris.append(uri)
            return block

        for node in self._data_node_ids(typed_subjects):
            classes = uri_types_of.get(node)
            if classes:
                block_of[node] = typed_block(frozenset(classes))
            else:
                block_of[node] = singleton_block()
        return block_of, block_uris

    def _typed_blocks(
        self, namer: SummaryNamer, strong: bool
    ) -> Tuple[Dict[int, int], List[URI]]:
        """Blocks of the typed summaries ``TW_G`` / ``TS_G`` (Defs. 13-17).

        Typed resources (subjects of type triples) are grouped by exact URI
        class set; the untyped-weak / untyped-strong relation — with cliques
        restricted to untyped endpoints — partitions the rest.
        """
        typed_subjects, uri_types_of = self._scan_type_info()
        # Excluding the typed resources from the clique pass restricts it to
        # untyped endpoints without a dedicated scan to materialize the
        # untyped-node set (untyped = data endpoints minus typed subjects).
        if strong:
            block_of, block_uris = self._strong_blocks(namer, exclude=typed_subjects)
        else:
            block_of, block_uris = self._weak_blocks(namer, exclude=typed_subjects)

        block_of_classes: Dict[FrozenSet[int], int] = {}
        for node in typed_subjects:
            classes = frozenset(uri_types_of.get(node, ()))
            block = block_of_classes.get(classes)
            if block is None:
                uri = namer.class_set(self._decoded_property_set(classes))
                block = len(block_uris)
                block_uris.append(uri)
                block_of_classes[classes] = block
            block_of[node] = block
        return block_of, block_uris

    def _data_node_ids(self, typed_subjects: Optional[Set[int]] = None) -> Set[int]:
        """Every data-node id: data-triple endpoints plus type-triple subjects."""
        nodes: Set[int] = set()
        for subjects, _predicates, objects in self._data_columns():
            nodes.update(subjects)
            nodes.update(objects)
        if typed_subjects is None:
            typed_subjects = self._typed_subject_ids()
        nodes |= typed_subjects
        return nodes

    # ------------------------------------------------------------------
    # the facade
    # ------------------------------------------------------------------
    def summarize(
        self,
        kind: str,
        source_statistics: Optional[GraphStatistics] = None,
        source_name: str = "store",
    ) -> Summary:
        """Build the *kind* summary of the store's graph, decoding at the end."""
        namer = SummaryNamer()
        if kind == "weak":
            typed_subjects = self._typed_subject_ids()
            block_of, block_uris = self._weak_blocks(namer, extra_nodes=typed_subjects)
        elif kind == "strong":
            typed_subjects = self._typed_subject_ids()
            block_of, block_uris = self._strong_blocks(namer, extra_nodes=typed_subjects)
        elif kind == "type":
            block_of, block_uris = self._type_blocks(namer)
        elif kind == "typed_weak":
            block_of, block_uris = self._typed_blocks(namer, strong=False)
        elif kind == "typed_strong":
            block_of, block_uris = self._typed_blocks(namer, strong=True)
        else:
            supported = ", ".join(ENCODED_KINDS)
            raise UnknownSummaryKindError(
                f"unknown summary kind {kind!r}; supported: {supported}"
            )
        return self._quotient(kind, block_of, block_uris, source_statistics, source_name)

    def _quotient(
        self,
        kind: str,
        block_of: Dict[int, int],
        block_uris: List[URI],
        source_statistics: Optional[GraphStatistics],
        source_name: str,
    ) -> Summary:
        """Quotient the encoded rows through *block_of* and decode the result."""
        data_edges: Set[Tuple[int, int, int]] = set()
        for subjects, predicates, objects in self._data_columns():
            for subject, prop, obj in zip(subjects, predicates, objects):
                data_edges.add((block_of[subject], prop, block_of[obj]))
        type_edges: Set[Tuple[int, int]] = set()
        for subjects, _predicates, objects in self._type_columns():
            for subject, class_id in zip(subjects, objects):
                type_edges.add((block_of[subject], class_id))

        decode = self.store.dictionary.decode
        name = f"{source_name}.{kind}" if source_name else kind
        summary_graph = RDFGraph(name=name)
        for row in self.store.scan_schema():
            summary_graph.add(self.store.decode_triple(row))
        for block_subject, prop, block_object in data_edges:
            summary_graph.add(
                Triple(block_uris[block_subject], decode(prop), block_uris[block_object])
            )
        for block_subject, class_id in type_edges:
            summary_graph.add(Triple(block_uris[block_subject], RDF_TYPE, decode(class_id)))

        representative_of: Dict[Term, Term] = {
            decode(node): block_uris[block] for node, block in block_of.items()
        }
        return Summary(
            kind=kind,
            graph=summary_graph,
            representative_of=representative_of,
            source_statistics=source_statistics,
            source_name=source_name,
        )


def encoded_summarize(
    store: TripleStore,
    kind: str = "weak",
    source_statistics: Optional[GraphStatistics] = None,
    source_name: str = "store",
    batch_size: int = 50_000,
) -> Summary:
    """Summarize the graph loaded in *store* with the encoded engine."""
    engine = EncodedSummaryEngine(store, batch_size=batch_size)
    return engine.summarize(kind, source_statistics=source_statistics, source_name=source_name)


def summarize_graph_encoded(graph: RDFGraph, kind: str = "weak") -> Summary:
    """Encode *graph* into a transient memory store and summarize it.

    This is what :func:`repro.core.builders.summarize` runs by default: the
    dictionary-encoding cost is paid once, and every subsequent pass works on
    integers only.
    """
    from repro.store.memory import MemoryStore

    with MemoryStore() as store:
        store.load_graph(graph)
        return encoded_summarize(
            store,
            kind,
            source_statistics=graph.statistics(),
            source_name=graph.name,
        )
