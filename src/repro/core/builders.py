"""The five summary constructions and the :func:`summarize` facade.

* :func:`weak_summary`          — ``W_G``  (Definition 11)
* :func:`strong_summary`        — ``S_G``  (Definition 15)
* :func:`type_summary`          — ``T_G``  (Definition 12, helper)
* :func:`typed_weak_summary`    — ``TW_G`` (Definition 14)
* :func:`typed_strong_summary`  — ``TS_G`` (Definition 17)

All constructions run in time linear in the number of edges of the input
graph (plus near-constant union-find overhead), matching the complexity
claims of Sections 3–6.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.equivalence import (
    NodePartition,
    strong_partition,
    type_partition,
    untyped_strong_partition,
    untyped_weak_partition,
    weak_partition,
)
from repro.core.quotient import build_quotient_summary
from repro.core.summary import Summary
from repro.errors import UnknownSummaryKindError
from repro.model.graph import RDFGraph

__all__ = [
    "weak_summary",
    "strong_summary",
    "type_summary",
    "typed_weak_summary",
    "typed_strong_summary",
    "summarize",
    "SUMMARY_KINDS",
]


def weak_summary(graph: RDFGraph) -> Summary:
    """Build the weak summary ``W_G`` (quotient by ``≡W``)."""
    return build_quotient_summary(graph, weak_partition(graph), kind="weak")


def strong_summary(graph: RDFGraph) -> Summary:
    """Build the strong summary ``S_G`` (quotient by ``≡S``)."""
    return build_quotient_summary(graph, strong_partition(graph), kind="strong")


def type_summary(graph: RDFGraph) -> Summary:
    """Build the type-based summary ``T_G`` (quotient by ``≡T``)."""
    return build_quotient_summary(graph, type_partition(graph), kind="type")


def typed_weak_summary(graph: RDFGraph) -> Summary:
    """Build the typed weak summary ``TW_G = UW(T_G)``."""
    return build_quotient_summary(graph, untyped_weak_partition(graph), kind="typed_weak")


def typed_strong_summary(graph: RDFGraph) -> Summary:
    """Build the typed strong summary ``TS_G = US(T_G)``."""
    return build_quotient_summary(graph, untyped_strong_partition(graph), kind="typed_strong")


#: Mapping from kind name to builder, used by :func:`summarize` and the CLI.
SUMMARY_KINDS: Dict[str, Callable[[RDFGraph], Summary]] = {
    "weak": weak_summary,
    "strong": strong_summary,
    "type": type_summary,
    "typed_weak": typed_weak_summary,
    "typed_strong": typed_strong_summary,
}

#: Short aliases accepted by :func:`summarize` (the paper's W / S / TW / TS).
_ALIASES = {
    "w": "weak",
    "s": "strong",
    "t": "type",
    "tw": "typed_weak",
    "ts": "typed_strong",
    "typed-weak": "typed_weak",
    "typed-strong": "typed_strong",
}


def summarize(graph: RDFGraph, kind: str = "weak") -> Summary:
    """Summarize *graph* with the requested summary *kind*.

    Parameters
    ----------
    graph:
        The input RDF graph.
    kind:
        One of ``"weak"``, ``"strong"``, ``"type"``, ``"typed_weak"``,
        ``"typed_strong"`` (or the aliases ``w`` / ``s`` / ``t`` / ``tw`` /
        ``ts``).

    Raises
    ------
    UnknownSummaryKindError
        When *kind* does not name a supported summary.
    """
    normalized = kind.strip().lower()
    normalized = _ALIASES.get(normalized, normalized)
    builder = SUMMARY_KINDS.get(normalized)
    if builder is None:
        supported = ", ".join(sorted(SUMMARY_KINDS))
        raise UnknownSummaryKindError(f"unknown summary kind {kind!r}; supported: {supported}")
    return builder(graph)
