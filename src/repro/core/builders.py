"""The five summary constructions and the :func:`summarize` facade.

* :func:`weak_summary`          — ``W_G``  (Definition 11)
* :func:`strong_summary`        — ``S_G``  (Definition 15)
* :func:`type_summary`          — ``T_G``  (Definition 12, helper)
* :func:`typed_weak_summary`    — ``TW_G`` (Definition 14)
* :func:`typed_strong_summary`  — ``TS_G`` (Definition 17)

All constructions run in time linear in the number of edges of the input
graph (plus near-constant union-find overhead), matching the complexity
claims of Sections 3–6.

Two execution engines are available, selected by the ``engine`` parameter:

* ``"encoded"`` (default) — dictionary-encode the graph and run the
  integer-only pipeline of :mod:`repro.core.encoded`, mirroring the paper's
  relational prototype: no ``Term`` is hashed on the hot path and the
  summary is decoded only at the end;
* ``"term"`` (alias ``"legacy"``) — the original object pipeline over
  :mod:`repro.core.cliques` / :mod:`repro.core.equivalence` /
  :mod:`repro.core.quotient`, kept as the executable specification.

Both engines produce isomorphic summaries with complete (isomorphic, not
byte-identical — minted node URIs may differ) provenance maps; the test
suite asserts this for every kind.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.encoded import summarize_graph_encoded
from repro.core.equivalence import (
    NodePartition,
    strong_partition,
    type_partition,
    untyped_strong_partition,
    untyped_weak_partition,
    weak_partition,
)
from repro.core.quotient import build_quotient_summary
from repro.core.summary import Summary
from repro.errors import UnknownSummaryKindError
from repro.model.graph import RDFGraph

__all__ = [
    "weak_summary",
    "strong_summary",
    "type_summary",
    "typed_weak_summary",
    "typed_strong_summary",
    "summarize",
    "SUMMARY_KINDS",
    "SUMMARY_ENGINES",
    "ENGINE_CHOICES",
    "DEFAULT_ENGINE",
    "normalize_engine",
    "normalize_kind",
]

#: Partition function behind each summary kind (the legacy ``Term`` path).
_PARTITIONS: Dict[str, Callable[[RDFGraph], NodePartition]] = {
    "weak": weak_partition,
    "strong": strong_partition,
    "type": type_partition,
    "typed_weak": untyped_weak_partition,
    "typed_strong": untyped_strong_partition,
}

#: Supported execution engines (``"legacy"`` is accepted as an alias of ``"term"``).
SUMMARY_ENGINES = ("encoded", "term")

#: Engine used when callers do not pick one explicitly.
DEFAULT_ENGINE = "encoded"


def _term_summary(graph: RDFGraph, kind: str) -> Summary:
    """The legacy object pipeline: partition ``Term`` nodes, then quotient."""
    return build_quotient_summary(graph, _PARTITIONS[kind](graph), kind=kind)


def weak_summary(graph: RDFGraph, engine: Optional[str] = None) -> Summary:
    """Build the weak summary ``W_G`` (quotient by ``≡W``)."""
    return summarize(graph, "weak", engine=engine)


def strong_summary(graph: RDFGraph, engine: Optional[str] = None) -> Summary:
    """Build the strong summary ``S_G`` (quotient by ``≡S``)."""
    return summarize(graph, "strong", engine=engine)


def type_summary(graph: RDFGraph, engine: Optional[str] = None) -> Summary:
    """Build the type-based summary ``T_G`` (quotient by ``≡T``)."""
    return summarize(graph, "type", engine=engine)


def typed_weak_summary(graph: RDFGraph, engine: Optional[str] = None) -> Summary:
    """Build the typed weak summary ``TW_G = UW(T_G)``."""
    return summarize(graph, "typed_weak", engine=engine)


def typed_strong_summary(graph: RDFGraph, engine: Optional[str] = None) -> Summary:
    """Build the typed strong summary ``TS_G = US(T_G)``."""
    return summarize(graph, "typed_strong", engine=engine)


#: Mapping from kind name to builder, used by :func:`summarize` and the CLI.
SUMMARY_KINDS: Dict[str, Callable[[RDFGraph], Summary]] = {
    "weak": weak_summary,
    "strong": strong_summary,
    "type": type_summary,
    "typed_weak": typed_weak_summary,
    "typed_strong": typed_strong_summary,
}

#: Short aliases accepted by :func:`summarize` (the paper's W / S / TW / TS).
_ALIASES = {
    "w": "weak",
    "s": "strong",
    "t": "type",
    "tw": "typed_weak",
    "ts": "typed_strong",
    "typed-weak": "typed_weak",
    "typed-strong": "typed_strong",
}

_ENGINE_ALIASES = {"legacy": "term"}

#: Every engine name a user may pass (canonical names plus aliases) — the
#: single source for CLI ``choices`` lists.
ENGINE_CHOICES = tuple(SUMMARY_ENGINES) + tuple(sorted(_ENGINE_ALIASES))


def normalize_kind(kind: str) -> str:
    """Resolve a summary-kind name (or alias) to its canonical form.

    Shared by :func:`summarize`, the CLI and the query-service catalog so
    every entry point accepts the same spellings.
    """
    normalized = kind.strip().lower()
    normalized = _ALIASES.get(normalized, normalized)
    if normalized not in _PARTITIONS:
        supported = ", ".join(sorted(_PARTITIONS))
        raise UnknownSummaryKindError(f"unknown summary kind {kind!r}; supported: {supported}")
    return normalized


def normalize_engine(engine: Optional[str]) -> str:
    """Resolve an engine name (or ``None``) to ``"encoded"`` or ``"term"``."""
    if engine is None:
        return DEFAULT_ENGINE
    normalized = engine.strip().lower()
    normalized = _ENGINE_ALIASES.get(normalized, normalized)
    if normalized not in SUMMARY_ENGINES:
        supported = ", ".join(SUMMARY_ENGINES)
        raise UnknownSummaryKindError(
            f"unknown summary engine {engine!r}; supported: {supported}"
        )
    return normalized


def summarize(graph: RDFGraph, kind: str = "weak", engine: Optional[str] = None) -> Summary:
    """Summarize *graph* with the requested summary *kind*.

    Parameters
    ----------
    graph:
        The input RDF graph.
    kind:
        One of ``"weak"``, ``"strong"``, ``"type"``, ``"typed_weak"``,
        ``"typed_strong"`` (or the aliases ``w`` / ``s`` / ``t`` / ``tw`` /
        ``ts``).
    engine:
        ``"encoded"`` (default) to run the integer-encoded pipeline, or
        ``"term"`` / ``"legacy"`` for the original ``Term``-object pipeline.
        Both produce isomorphic summaries.

    Raises
    ------
    UnknownSummaryKindError
        When *kind* does not name a supported summary (or *engine* a
        supported engine).
    """
    normalized = normalize_kind(kind)
    if normalize_engine(engine) == "encoded":
        return summarize_graph_encoded(graph, normalized)
    return _term_summary(graph, normalized)
