"""Representation functions: minting summary node URIs.

The paper uses two injective functions to name quotient nodes:

* ``N(TC, SC)`` (Section 4.1) — given the set of target data properties and
  the set of source data properties of an equivalence class, return a fresh
  URI.  ``N(∅, ∅)`` is the special node written ``Nτ``.
* ``C(X)`` (Section 4.2) — given a set of class URIs, return a URI; given
  the empty set, return a *new* URI on every call (used to copy untyped
  nodes in the type-based summary).

Both are realised by :class:`SummaryNamer`, which produces deterministic,
human-readable URIs in a dedicated summary namespace and guarantees
injectivity by appending a disambiguating counter when readable labels
collide.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, FrozenSet, Hashable, Iterable, Optional, Tuple

from repro.model.namespaces import Namespace
from repro.model.terms import Term, URI

__all__ = ["SUMMARY_NS", "SummaryNamer"]

#: Namespace under which every summary node URI is minted.
SUMMARY_NS = Namespace("http://rdfsummary.example.org/node/")

_MAX_LABEL_PARTS = 4


def _short_label(uris: Iterable[URI]) -> str:
    """Build a compact, readable label out of property/class local names."""
    names = sorted(uri.local_name for uri in uris)
    if not names:
        return ""
    if len(names) > _MAX_LABEL_PARTS:
        shown = names[:_MAX_LABEL_PARTS]
        return "_".join(shown) + f"_and{len(names) - _MAX_LABEL_PARTS}more"
    return "_".join(names)


def _stable_digest(key: Hashable) -> str:
    """A short stable digest of an arbitrary hashable key."""
    return hashlib.sha1(repr(key).encode("utf-8")).hexdigest()[:8]


class SummaryNamer:
    """Mints injective summary-node URIs for quotient blocks.

    A single namer instance must be used for one summary construction so that
    equal keys map to equal URIs and distinct keys to distinct URIs.
    """

    def __init__(self, namespace: Namespace = SUMMARY_NS):
        self._namespace = namespace
        self._by_key: Dict[Hashable, URI] = {}
        self._used_values: set = set()
        self._fresh_counter = 0
        self._minters: Dict[str, Callable[[], URI]] = {}

    # ------------------------------------------------------------------
    def _mint(self, key: Hashable, label: str) -> URI:
        existing = self._by_key.get(key)
        if existing is not None:
            return existing
        base = label or "N"
        candidate = self._namespace.term(base)
        if candidate.value in self._used_values:
            candidate = self._namespace.term(f"{base}_{_stable_digest(key)}")
        while candidate.value in self._used_values:
            self._fresh_counter += 1
            candidate = self._namespace.term(f"{base}_{self._fresh_counter}")
        self._by_key[key] = candidate
        self._used_values.add(candidate.value)
        return candidate

    # ------------------------------------------------------------------
    def representation(self, target_clique: FrozenSet[URI], source_clique: FrozenSet[URI]) -> URI:
        """The paper's ``N(TC, SC)`` function."""
        key = ("N", target_clique, source_clique)
        if not target_clique and not source_clique:
            return self._mint(key, "Ntau")
        target_label = _short_label(target_clique)
        source_label = _short_label(source_clique)
        if target_label and source_label:
            label = f"N_{source_label}__from_{target_label}"
        elif source_label:
            label = f"N_{source_label}"
        else:
            label = f"N_from_{target_label}"
        return self._mint(key, label)

    def class_set(self, classes: FrozenSet[URI]) -> URI:
        """The paper's ``C(X)`` function for a non-empty class set."""
        if not classes:
            return self.fresh("C_untyped")
        key = ("C", classes)
        return self._mint(key, f"C_{_short_label(classes)}")

    def fresh(self, hint: str = "fresh") -> URI:
        """A brand-new URI on every call (``C(∅)`` behaviour)."""
        return self.fresh_minter(hint)()

    def fresh_minter(self, hint: str = "fresh") -> Callable[[], URI]:
        """An arena-style mint function for bulk ``C(∅)`` / ``Nτ`` naming.

        The type summary copies every untyped data node, so graphs with
        millions of untyped resources mint millions of fresh URIs.  The
        returned closure amortizes that: the namespace prefix is concatenated
        once, the counter lives in a cell instead of an attribute, and the
        only per-mint work is one string build plus one membership probe on
        the used-value set (still required for global injectivity against the
        other naming paths).  Calling the method again with the same hint
        returns the same arena, so the counter never restarts from a used
        range.
        """
        minter = self._minters.get(hint)
        if minter is not None:
            return minter
        base = self._namespace.prefix + hint + "_"
        used = self._used_values
        counter_cell = [0]

        def mint() -> URI:
            counter = counter_cell[0]
            while True:
                counter += 1
                value = base + str(counter)
                if value not in used:
                    counter_cell[0] = counter
                    used.add(value)
                    return URI(value)

        self._minters[hint] = mint
        return mint

    def for_key(self, key: Hashable, hint: str = "N") -> URI:
        """An injective URI for an arbitrary block key (fallback naming)."""
        return self._mint(key, f"{hint}_{_stable_digest(key)}")
