"""Quotient-graph construction (Definitions 4 and 9).

Given an input graph ``G = ⟨D_G, S_G, T_G⟩`` and a partition of its data
nodes, the RDF summary is the graph ``H_G = ⟨D_H, S_H, T_H⟩`` where:

* ``S_H = S_G`` — schema triples are copied verbatim (item SCH of Def. 9);
* ``T_H ∪ D_H`` is the quotient of ``T_G ∪ D_G`` by the equivalence: each
  data triple ``s p o`` becomes ``rep(s) p rep(o)`` and each type triple
  ``s τ C`` becomes ``rep(s) τ C`` (item TYP+DAT of Def. 9).

Class nodes and literals never survive as-is: classes are kept as triple
objects, literals disappear into the summary node representing them, which
is why summaries are typically orders of magnitude smaller than the input.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Optional

from repro.core.equivalence import NodePartition
from repro.core.naming import SummaryNamer
from repro.core.summary import Summary
from repro.model.graph import RDFGraph
from repro.model.namespaces import RDF_TYPE
from repro.model.terms import Term, URI
from repro.model.triple import Triple

__all__ = ["build_quotient_summary", "default_block_namer"]


def default_block_namer(namer: SummaryNamer) -> Callable[[Hashable], URI]:
    """Return a block-key → URI function implementing the paper's N and C.

    Block keys produced by :mod:`repro.core.equivalence` have one of these
    shapes, and are named accordingly:

    * ``(TC, SC)`` — weak/strong blocks: ``N(TC, SC)``;
    * ``("types", X)`` — type-based blocks: ``C(X)``;
    * ``("typed", node)`` — an untouched typed node in a typed summary:
      ``C(types)`` is *not* applicable here (the block is per node), so the
      node key falls back to an injective per-key URI;
    * ``("untyped", (TC, SC))`` — untyped blocks of typed summaries:
      ``N(TC, SC)``;
    * anything else — injective fallback naming.
    """

    def name_block(key: Hashable) -> URI:
        if isinstance(key, tuple) and len(key) == 2:
            first, second = key
            if isinstance(first, frozenset) and isinstance(second, frozenset):
                return namer.representation(first, second)
            if first == "types" and isinstance(second, frozenset):
                return namer.class_set(second)
            if first == "untyped" and isinstance(second, tuple) and len(second) == 2:
                target, source = second
                if isinstance(target, frozenset) and isinstance(source, frozenset):
                    return namer.representation(target, source)
            if first == "untyped" and isinstance(second, frozenset):
                return namer.class_set(frozenset())
        return namer.for_key(key)

    return name_block


def build_quotient_summary(
    graph: RDFGraph,
    partition: NodePartition,
    kind: str,
    namer: Optional[SummaryNamer] = None,
    block_namer: Optional[Callable[[Hashable], URI]] = None,
) -> Summary:
    """Build the RDF summary of *graph* for the given data-node *partition*.

    Parameters
    ----------
    graph:
        The input graph ``G``.
    partition:
        A partition of ``G``'s data nodes (see :mod:`repro.core.equivalence`).
    kind:
        Label stored on the resulting :class:`Summary`.
    namer / block_namer:
        Naming machinery; by default a fresh :class:`SummaryNamer` with
        :func:`default_block_namer` is used.
    """
    if namer is None:
        namer = SummaryNamer()
    if block_namer is None:
        block_namer = default_block_namer(namer)

    summary_node_of_block: Dict[Hashable, URI] = {}

    def summary_node_for(block_key: Hashable) -> URI:
        existing = summary_node_of_block.get(block_key)
        if existing is not None:
            return existing
        node = block_namer(block_key)
        summary_node_of_block[block_key] = node
        return node

    representative_of: Dict[Term, Term] = {}

    def representative(node: Term) -> URI:
        existing = representative_of.get(node)
        if existing is not None:
            return existing
        block_key = partition.key_of(node)
        summary_node = summary_node_for(block_key)
        representative_of[node] = summary_node
        return summary_node

    summary_graph = RDFGraph(name=f"{graph.name}.{kind}" if graph.name else kind)

    # SCH: schema triples are copied verbatim.
    for triple in graph.schema_triples:
        summary_graph.add(triple)

    # DAT: data triples are quotiented on both endpoints.
    for triple in graph.data_triples:
        summary_graph.add(
            Triple(representative(triple.subject), triple.predicate, representative(triple.object))
        )

    # TYP: type triples keep their class object, quotienting the subject.
    for triple in graph.type_triples:
        summary_graph.add(Triple(representative(triple.subject), RDF_TYPE, triple.object))

    # Nodes that carry no triple at all never appear; every node of the
    # partition that does appear has been registered through representative().
    return Summary(
        kind=kind,
        graph=summary_graph,
        representative_of=representative_of,
        source_statistics=graph.statistics(),
        source_name=graph.name,
    )
