"""Incremental, store-driven weak summarization (Section 6.2, Algorithms 1-3).

The paper's prototype builds the weak summary in a single pass over the
encoded data-triples table followed by a pass over the type-triples table,
maintaining the maps described in Section 6.1:

* ``rd`` / ``dr`` — input node → summary node, and its inverse;
* ``dpSrc`` / ``dpTarg`` — data property → its (unique, Prop. 4) summary
  source / target node;
* ``srcDps`` / ``targDps`` — summary node → the data properties it is the
  source / target of;
* ``dcls`` — summary node → its class set;
* ``dtp`` — data property → the single summary data triple it labels.

Whenever a new data triple reveals that two previously distinct summary
nodes must coincide (the subject is already represented *and* the property
already has a source, but they differ), the two nodes are merged —
``MERGEDATANODES`` — keeping the one with more *data* edges (class
memberships do not count, and ties go to the older node so the result is
deterministic across insertion orders).  This mirrors the union-by-size
policy of the underlying equivalence computation and keeps the overall pass
linear in the number of data triples.

The resulting summary is isomorphic to the quotient-based
:func:`repro.core.builders.weak_summary`; the test suite asserts this.

Beyond the one-shot :meth:`IncrementalWeakSummarizer.build` pass, the maps
are maintainable *online*: :meth:`ingest_data` / :meth:`ingest_type` /
:meth:`ingest_row` apply one encoded triple each, in any arrival order, and
:meth:`snapshot` decodes the current state into a :class:`Summary` without
mutating it — so a long-lived summarizer (the weak-summary maintenance of
:class:`repro.service.catalog.GraphCatalog`) can serve a fresh summary after
every batch of additions at cost proportional to the *summary*, never
re-scanning the store.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from repro.core.naming import SUMMARY_NS, SummaryNamer
from repro.core.summary import Summary
from repro.model.dictionary import EncodedTriple
from repro.model.graph import RDFGraph
from repro.model.namespaces import RDF_TYPE
from repro.model.terms import Term, URI
from repro.model.triple import Triple, TripleKind
from repro.store.base import TripleStore

__all__ = ["IncrementalWeakSummarizer", "incremental_weak_summary"]


class IncrementalWeakSummarizer:
    """Builds the weak summary of the graph loaded in a :class:`TripleStore`."""

    def __init__(self, store: TripleStore):
        self.store = store
        # paper's maps (integer-encoded summary nodes, negative of nothing —
        # summary node ids are plain consecutive ints minted locally)
        self._next_node = 0
        self.rd: Dict[int, int] = {}
        self.dr: Dict[int, Set[int]] = {}
        self.dp_src: Dict[int, int] = {}
        self.dp_targ: Dict[int, int] = {}
        self.src_dps: Dict[int, Set[int]] = {}
        self.targ_dps: Dict[int, Set[int]] = {}
        self.dcls: Dict[int, Set[int]] = {}
        self.dtp: Dict[int, Tuple[int, int, int]] = {}
        # resources seen only as subjects of type triples so far, with their
        # class ids.  They are *not* pooled into the shared ``Nτ`` node
        # eagerly: a data triple may still arrive for them (in which case the
        # classes move to the proper data node), and pooling them early would
        # wrongly glue unrelated resources together.  The pooling of the
        # batch algorithm (Algorithm 3's trailing step) happens at
        # :meth:`snapshot` time instead, on the decoded output only.
        self._typed_only: Dict[int, Set[int]] = {}

    # ------------------------------------------------------------------
    # node management
    # ------------------------------------------------------------------
    def _create_data_node(self, resource: Optional[int] = None) -> int:
        node = self._next_node
        self._next_node += 1
        self.dr[node] = set()
        if resource is not None:
            self.rd[resource] = node
            self.dr[node].add(resource)
        return node

    def _edge_count(self, node: int) -> int:
        """Number of summary *data* edges the node is an endpoint of.

        Class memberships (``dcls``) deliberately do not count: the paper's
        union-by-size policy sizes a node by the data edges that must be
        rewritten when it is dropped, and counting classes would skew the
        keep/drop choice toward heavily-typed nodes whose merge is no
        cheaper.
        """
        return len(self.src_dps.get(node, ())) + len(self.targ_dps.get(node, ()))

    def _merge_data_nodes(self, first: int, second: int) -> int:
        """Merge two summary nodes, keeping the one with more data edges.

        Ties are broken toward the node minted first (smaller id), so the
        summary structure is reproducible regardless of dict iteration or
        triple insertion order.
        """
        if first == second:
            return first
        first_edges = self._edge_count(first)
        second_edges = self._edge_count(second)
        if first_edges != second_edges:
            keep, drop = (first, second) if first_edges > second_edges else (second, first)
        else:
            keep, drop = (first, second) if first < second else (second, first)
        for resource in self.dr.pop(drop, set()):
            self.rd[resource] = keep
            self.dr.setdefault(keep, set()).add(resource)
        for prop in self.src_dps.pop(drop, set()):
            self.dp_src[prop] = keep
            self.src_dps.setdefault(keep, set()).add(prop)
            subject, predicate, obj = self.dtp[prop]
            self.dtp[prop] = (keep, predicate, obj)
        for prop in self.targ_dps.pop(drop, set()):
            self.dp_targ[prop] = keep
            self.targ_dps.setdefault(keep, set()).add(prop)
            subject, predicate, obj = self.dtp[prop]
            self.dtp[prop] = (subject, predicate, keep)
        if drop in self.dcls:
            self.dcls.setdefault(keep, set()).update(self.dcls.pop(drop))
        return keep

    # ------------------------------------------------------------------
    # Algorithm 2: representing subjects and objects of data triples
    # ------------------------------------------------------------------
    def _get_source(self, subject: int, prop: int) -> int:
        source_of_property = self.dp_src.get(prop)
        source_of_subject = self.rd.get(subject)
        if source_of_property is None and source_of_subject is None:
            return self._create_data_node(subject)
        if source_of_property is not None and source_of_subject is None:
            self.rd[subject] = source_of_property
            self.dr.setdefault(source_of_property, set()).add(subject)
            return source_of_property
        if source_of_property is None:
            return source_of_subject
        if source_of_property == source_of_subject:
            return source_of_subject
        return self._merge_data_nodes(source_of_subject, source_of_property)

    def _get_target(self, obj: int, prop: int) -> int:
        target_of_property = self.dp_targ.get(prop)
        target_of_object = self.rd.get(obj)
        if target_of_property is None and target_of_object is None:
            return self._create_data_node(obj)
        if target_of_property is not None and target_of_object is None:
            self.rd[obj] = target_of_property
            self.dr.setdefault(target_of_property, set()).add(obj)
            return target_of_property
        if target_of_property is None:
            return target_of_object
        if target_of_property == target_of_object:
            return target_of_object
        return self._merge_data_nodes(target_of_object, target_of_property)

    # ------------------------------------------------------------------
    # Algorithm 1: summarizing data triples
    # ------------------------------------------------------------------
    def ingest_data(self, subject: int, prop: int, obj: int) -> None:
        """Apply one encoded data triple to the summary maps (Algorithm 1).

        Safe in any arrival order: a resource previously known only from
        type triples is promoted to a proper data node here, carrying its
        pending classes along.
        """
        pending_subject = self._typed_only.pop(subject, None)
        pending_object = self._typed_only.pop(obj, None)
        self._get_source(subject, prop)
        self._get_target(obj, prop)
        # GETTARGET may have merged the node GETSOURCE returned (and
        # vice-versa), so both are re-resolved before creating the edge.
        source = self._get_source(subject, prop)
        target = self._get_target(obj, prop)
        if prop not in self.dtp:
            self.dtp[prop] = (source, prop, target)
            self.dp_src[prop] = source
            self.src_dps.setdefault(source, set()).add(prop)
            self.dp_targ[prop] = target
            self.targ_dps.setdefault(target, set()).add(prop)
        if pending_subject:
            self.dcls.setdefault(self.rd[subject], set()).update(pending_subject)
        if pending_object:
            self.dcls.setdefault(self.rd[obj], set()).update(pending_object)

    # ------------------------------------------------------------------
    # Algorithm 3: summarizing type triples
    # ------------------------------------------------------------------
    def ingest_type(self, subject: int, class_id: int) -> None:
        """Apply one encoded type triple (Algorithm 3, order-independent)."""
        node = self.rd.get(subject)
        if node is None:
            self._typed_only.setdefault(subject, set()).add(class_id)
        else:
            self.dcls.setdefault(node, set()).add(class_id)

    def ingest_row(self, kind: TripleKind, row: EncodedTriple) -> None:
        """Apply one encoded store row of any kind.

        Schema rows carry no summarization state — they are copied from the
        store at decode time — so they are accepted and ignored here, which
        lets callers feed the raw output of
        :meth:`repro.store.base.TripleStore.insert_triples` straight through.
        """
        if kind is TripleKind.DATA:
            self.ingest_data(row[0], row[1], row[2])
        elif kind is TripleKind.TYPE:
            self.ingest_type(row[0], row[2])

    def ingest_rows(self, rows: Iterable[Tuple[TripleKind, EncodedTriple]]) -> None:
        """Apply a batch of ``(kind, row)`` pairs (insert-order preserved)."""
        for kind, row in rows:
            self.ingest_row(kind, row)

    # ------------------------------------------------------------------
    # durable state (the persistent-catalog warm-start path)
    # ------------------------------------------------------------------
    #: The attributes that fully determine the summarizer's state.  Every
    #: one is a pure-integer structure (dicts / sets / tuples of term ids),
    #: so a state dict serializes safely across processes — unlike
    #: :class:`~repro.model.terms.Term` objects, whose memoized hashes are
    #: salted per process and must never be persisted.
    _STATE_KEYS = (
        "rd",
        "dr",
        "dp_src",
        "dp_targ",
        "src_dps",
        "targ_dps",
        "dcls",
        "dtp",
        "_typed_only",
        "_next_node",
    )

    def state_dict(self) -> Dict[str, object]:
        """The summarizer's maps as one plain dictionary of integer structures.

        The returned dict *references* the live maps (no copy): serialize or
        deep-copy it before the summarizer ingests anything further.  This is
        what the persistent catalog checkpoints, so a restarted process can
        :meth:`load_state` and keep maintaining the weak summary without
        re-scanning the store.
        """
        return {key: getattr(self, key) for key in self._STATE_KEYS}

    def load_state(self, state: Dict[str, object]) -> None:
        """Adopt a :meth:`state_dict` (ownership transfers to the summarizer).

        The summarizer behaves exactly as if it had ingested the rows the
        state was built from — :meth:`snapshot` decodes the same summary, and
        further ``ingest_*`` calls continue from there.
        """
        missing = [key for key in self._STATE_KEYS if key not in state]
        if missing:
            raise ValueError(f"incomplete summarizer state: missing {missing}")
        for key in self._STATE_KEYS:
            setattr(self, key, state[key])

    # ------------------------------------------------------------------
    def build(self) -> Summary:
        """Run the two summarization passes over the store and decode."""
        for row in self.store.scan_data():
            self.ingest_data(row[0], row[1], row[2])
        for row in self.store.scan_types():
            self.ingest_type(row[0], row[2])
        return self.snapshot()

    def snapshot(self) -> Summary:
        """Decode the current maps into a :class:`Summary` without mutating.

        Resources still waiting in the typed-only buffer are pooled into one
        shared ``Nτ`` node *of the output only* — exactly the trailing step
        of the batch Algorithm 3 — so the snapshot matches the from-scratch
        weak summary of the triples ingested so far, while the live maps stay
        ready for further :meth:`ingest_data` / :meth:`ingest_type` calls.
        """
        namer = SummaryNamer()
        node_uri: Dict[int, URI] = {}

        def uri_of(node: int) -> URI:
            existing = node_uri.get(node)
            if existing is not None:
                return existing
            properties = self.src_dps.get(node, set()) | self.targ_dps.get(node, set())
            label = "Ntau" if not properties else "N"
            minted = namer.for_key(("incremental", node), hint=label)
            node_uri[node] = minted
            return minted

        summary_graph = RDFGraph(name="incremental_weak")
        for row in self.store.scan_schema():
            summary_graph.add(self.store.decode_triple(row))
        for prop, (source, predicate, target) in self.dtp.items():
            summary_graph.add(
                Triple(uri_of(source), self.store.decode_term(predicate), uri_of(target))
            )
        for node, classes in self.dcls.items():
            for class_id in classes:
                class_term = self.store.decode_term(class_id)
                summary_graph.add(Triple(uri_of(node), RDF_TYPE, class_term))

        representative_of: Dict[Term, Term] = {}
        for resource, node in self.rd.items():
            representative_of[self.store.decode_term(resource)] = uri_of(node)

        if self._typed_only:
            ntau_uri = namer.for_key(("incremental", "typed-only"), hint="Ntau")
            class_ids: Set[int] = set()
            for resource, classes in self._typed_only.items():
                representative_of[self.store.decode_term(resource)] = ntau_uri
                class_ids |= classes
            for class_id in class_ids:
                summary_graph.add(Triple(ntau_uri, RDF_TYPE, self.store.decode_term(class_id)))

        return Summary(
            kind="weak",
            graph=summary_graph,
            representative_of=representative_of,
            source_statistics=None,
            source_name="store",
        )


def incremental_weak_summary(store: TripleStore) -> Summary:
    """Convenience wrapper around :class:`IncrementalWeakSummarizer`."""
    return IncrementalWeakSummarizer(store).build()
