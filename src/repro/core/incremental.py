"""Incremental, store-driven weak summarization (Section 6.2, Algorithms 1-3).

The paper's prototype builds the weak summary in a single pass over the
encoded data-triples table followed by a pass over the type-triples table,
maintaining the maps described in Section 6.1:

* ``rd`` / ``dr`` — input node → summary node, and its inverse;
* ``dpSrc`` / ``dpTarg`` — data property → its (unique, Prop. 4) summary
  source / target node;
* ``srcDps`` / ``targDps`` — summary node → the data properties it is the
  source / target of;
* ``dcls`` — summary node → its class set;
* ``dtp`` — data property → the single summary data triple it labels.

Whenever a new data triple reveals that two previously distinct summary
nodes must coincide (the subject is already represented *and* the property
already has a source, but they differ), the two nodes are merged —
``MERGEDATANODES`` — keeping the one with more *data* edges (class
memberships do not count, and ties go to the older node so the result is
deterministic across insertion orders).  This mirrors the union-by-size
policy of the underlying equivalence computation and keeps the overall pass
linear in the number of data triples.

The resulting summary is isomorphic to the quotient-based
:func:`repro.core.builders.weak_summary`; the test suite asserts this.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.core.naming import SUMMARY_NS, SummaryNamer
from repro.core.summary import Summary
from repro.model.graph import RDFGraph
from repro.model.namespaces import RDF_TYPE
from repro.model.terms import Term, URI
from repro.model.triple import Triple
from repro.store.base import TripleStore

__all__ = ["IncrementalWeakSummarizer", "incremental_weak_summary"]


class IncrementalWeakSummarizer:
    """Builds the weak summary of the graph loaded in a :class:`TripleStore`."""

    def __init__(self, store: TripleStore):
        self.store = store
        # paper's maps (integer-encoded summary nodes, negative of nothing —
        # summary node ids are plain consecutive ints minted locally)
        self._next_node = 0
        self.rd: Dict[int, int] = {}
        self.dr: Dict[int, Set[int]] = {}
        self.dp_src: Dict[int, int] = {}
        self.dp_targ: Dict[int, int] = {}
        self.src_dps: Dict[int, Set[int]] = {}
        self.targ_dps: Dict[int, Set[int]] = {}
        self.dcls: Dict[int, Set[int]] = {}
        self.dtp: Dict[int, Tuple[int, int, int]] = {}

    # ------------------------------------------------------------------
    # node management
    # ------------------------------------------------------------------
    def _create_data_node(self, resource: Optional[int] = None) -> int:
        node = self._next_node
        self._next_node += 1
        self.dr[node] = set()
        if resource is not None:
            self.rd[resource] = node
            self.dr[node].add(resource)
        return node

    def _edge_count(self, node: int) -> int:
        """Number of summary *data* edges the node is an endpoint of.

        Class memberships (``dcls``) deliberately do not count: the paper's
        union-by-size policy sizes a node by the data edges that must be
        rewritten when it is dropped, and counting classes would skew the
        keep/drop choice toward heavily-typed nodes whose merge is no
        cheaper.
        """
        return len(self.src_dps.get(node, ())) + len(self.targ_dps.get(node, ()))

    def _merge_data_nodes(self, first: int, second: int) -> int:
        """Merge two summary nodes, keeping the one with more data edges.

        Ties are broken toward the node minted first (smaller id), so the
        summary structure is reproducible regardless of dict iteration or
        triple insertion order.
        """
        if first == second:
            return first
        first_edges = self._edge_count(first)
        second_edges = self._edge_count(second)
        if first_edges != second_edges:
            keep, drop = (first, second) if first_edges > second_edges else (second, first)
        else:
            keep, drop = (first, second) if first < second else (second, first)
        for resource in self.dr.pop(drop, set()):
            self.rd[resource] = keep
            self.dr.setdefault(keep, set()).add(resource)
        for prop in self.src_dps.pop(drop, set()):
            self.dp_src[prop] = keep
            self.src_dps.setdefault(keep, set()).add(prop)
            subject, predicate, obj = self.dtp[prop]
            self.dtp[prop] = (keep, predicate, obj)
        for prop in self.targ_dps.pop(drop, set()):
            self.dp_targ[prop] = keep
            self.targ_dps.setdefault(keep, set()).add(prop)
            subject, predicate, obj = self.dtp[prop]
            self.dtp[prop] = (subject, predicate, keep)
        if drop in self.dcls:
            self.dcls.setdefault(keep, set()).update(self.dcls.pop(drop))
        return keep

    # ------------------------------------------------------------------
    # Algorithm 2: representing subjects and objects of data triples
    # ------------------------------------------------------------------
    def _get_source(self, subject: int, prop: int) -> int:
        source_of_property = self.dp_src.get(prop)
        source_of_subject = self.rd.get(subject)
        if source_of_property is None and source_of_subject is None:
            return self._create_data_node(subject)
        if source_of_property is not None and source_of_subject is None:
            self.rd[subject] = source_of_property
            self.dr.setdefault(source_of_property, set()).add(subject)
            return source_of_property
        if source_of_property is None:
            return source_of_subject
        if source_of_property == source_of_subject:
            return source_of_subject
        return self._merge_data_nodes(source_of_subject, source_of_property)

    def _get_target(self, obj: int, prop: int) -> int:
        target_of_property = self.dp_targ.get(prop)
        target_of_object = self.rd.get(obj)
        if target_of_property is None and target_of_object is None:
            return self._create_data_node(obj)
        if target_of_property is not None and target_of_object is None:
            self.rd[obj] = target_of_property
            self.dr.setdefault(target_of_property, set()).add(obj)
            return target_of_property
        if target_of_property is None:
            return target_of_object
        if target_of_property == target_of_object:
            return target_of_object
        return self._merge_data_nodes(target_of_object, target_of_property)

    # ------------------------------------------------------------------
    # Algorithm 1: summarizing data triples
    # ------------------------------------------------------------------
    def _summarize_data_triples(self) -> None:
        for row in self.store.scan_data():
            subject, prop, obj = row.subject, row.predicate, row.object
            self._get_source(subject, prop)
            self._get_target(obj, prop)
            # GETTARGET may have merged the node GETSOURCE returned (and
            # vice-versa), so both are re-resolved before creating the edge.
            source = self._get_source(subject, prop)
            target = self._get_target(obj, prop)
            if prop not in self.dtp:
                self.dtp[prop] = (source, prop, target)
                self.dp_src[prop] = source
                self.src_dps.setdefault(source, set()).add(prop)
                self.dp_targ[prop] = target
                self.targ_dps.setdefault(target, set()).add(prop)

    # ------------------------------------------------------------------
    # Algorithm 3: summarizing type triples
    # ------------------------------------------------------------------
    def _summarize_type_triples(self) -> None:
        typed_only_resources = []
        typed_only_classes = []
        for row in self.store.scan_types():
            subject, class_id = row.subject, row.object
            node = self.rd.get(subject)
            if node is None:
                typed_only_resources.append(subject)
                typed_only_classes.append(class_id)
                continue
            self.dcls.setdefault(node, set()).add(class_id)
        if typed_only_resources:
            node = self._create_data_node()
            for resource in typed_only_resources:
                self.rd[resource] = node
                self.dr[node].add(resource)
            self.dcls.setdefault(node, set()).update(typed_only_classes)

    # ------------------------------------------------------------------
    def build(self) -> Summary:
        """Run the two summarization passes and decode the result."""
        self._summarize_data_triples()
        self._summarize_type_triples()

        namer = SummaryNamer()
        node_uri: Dict[int, URI] = {}

        def uri_of(node: int) -> URI:
            existing = node_uri.get(node)
            if existing is not None:
                return existing
            properties = self.src_dps.get(node, set()) | self.targ_dps.get(node, set())
            label = "Ntau" if not properties else "N"
            minted = namer.for_key(("incremental", node), hint=label)
            node_uri[node] = minted
            return minted

        summary_graph = RDFGraph(name="incremental_weak")
        for row in self.store.scan_schema():
            summary_graph.add(self.store.decode_triple(row))
        for prop, (source, predicate, target) in self.dtp.items():
            summary_graph.add(
                Triple(uri_of(source), self.store.decode_term(predicate), uri_of(target))
            )
        for node, classes in self.dcls.items():
            for class_id in classes:
                class_term = self.store.decode_term(class_id)
                summary_graph.add(Triple(uri_of(node), RDF_TYPE, class_term))

        representative_of: Dict[Term, Term] = {}
        for resource, node in self.rd.items():
            representative_of[self.store.decode_term(resource)] = uri_of(node)

        return Summary(
            kind="weak",
            graph=summary_graph,
            representative_of=representative_of,
            source_statistics=None,
            source_name="store",
        )


def incremental_weak_summary(store: TripleStore) -> Summary:
    """Convenience wrapper around :class:`IncrementalWeakSummarizer`."""
    return IncrementalWeakSummarizer(store).build()
