"""Property relations and cliques (Definitions 5 and 6, Lemma 1).

Two data properties are *source-related* when some resource has both of
them, or transitively through a third property; *target-related* is the
symmetric notion on property values.  Maximal sets of pairwise source-
(target-) related properties are the *source (target) property cliques*;
they partition the data properties of the graph, and every resource's
outgoing (incoming) data properties all fall into a single source (target)
clique — written ``SC(r)`` and ``TC(r)`` in the paper.

The computation is a single union-find pass over the data triples: for each
data node, all its outgoing properties are unioned together (source cliques)
and all its incoming properties are unioned together (target cliques), which
is linear in ``|D_G|_e``.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.model.graph import RDFGraph
from repro.model.terms import Term, URI
from repro.schema.rdfs import RDFSchema
from repro.utils.unionfind import UnionFind

__all__ = ["PropertyCliques", "compute_cliques", "property_distance", "saturated_clique"]

#: A clique is an immutable set of property URIs; the empty clique is ``frozenset()``.
Clique = FrozenSet[URI]

EMPTY_CLIQUE: Clique = frozenset()


class PropertyCliques:
    """The source and target property cliques of a graph.

    Attributes
    ----------
    source_cliques / target_cliques:
        The list of non-empty cliques (each a ``frozenset`` of property URIs).
    """

    def __init__(
        self,
        source_cliques: List[Clique],
        target_cliques: List[Clique],
        source_clique_of: Dict[Term, Clique],
        target_clique_of: Dict[Term, Clique],
    ):
        self.source_cliques = source_cliques
        self.target_cliques = target_cliques
        self._source_clique_of = source_clique_of
        self._target_clique_of = target_clique_of

    # ------------------------------------------------------------------
    def source_clique_of(self, node: Term) -> Clique:
        """``SC(r)`` — the source clique of *node* (empty when it has no data property)."""
        return self._source_clique_of.get(node, EMPTY_CLIQUE)

    def target_clique_of(self, node: Term) -> Clique:
        """``TC(r)`` — the target clique of *node* (empty when it is no property's value)."""
        return self._target_clique_of.get(node, EMPTY_CLIQUE)

    def clique_pair_of(self, node: Term) -> Tuple[Clique, Clique]:
        """The ``(TC(r), SC(r))`` pair driving strong equivalence."""
        return (self.target_clique_of(node), self.source_clique_of(node))

    def source_clique_of_property(self, prop: URI) -> Clique:
        """The source clique containing data property *prop* (empty if unused)."""
        for clique in self.source_cliques:
            if prop in clique:
                return clique
        return EMPTY_CLIQUE

    def target_clique_of_property(self, prop: URI) -> Clique:
        """The target clique containing data property *prop* (empty if unused)."""
        for clique in self.target_cliques:
            if prop in clique:
                return clique
        return EMPTY_CLIQUE

    def nodes(self) -> Set[Term]:
        """Every data node that has a non-empty source or target clique."""
        return set(self._source_clique_of) | set(self._target_clique_of)

    def is_partition_of(self, properties: Iterable[URI]) -> bool:
        """Check that the source and target cliques both partition *properties*."""
        properties = set(properties)
        for cliques in (self.source_cliques, self.target_cliques):
            covered: Set[URI] = set()
            for clique in cliques:
                if covered & clique:
                    return False
                covered |= clique
            if covered != properties:
                return False
        return True

    def __repr__(self):
        return (
            f"PropertyCliques({len(self.source_cliques)} source cliques, "
            f"{len(self.target_cliques)} target cliques)"
        )


def compute_cliques(
    graph: RDFGraph,
    source_nodes: Optional[Set[Term]] = None,
    target_nodes: Optional[Set[Term]] = None,
) -> PropertyCliques:
    """Compute the source and target property cliques of *graph*.

    Parameters
    ----------
    graph:
        The input graph; only its data component is inspected.
    source_nodes:
        When given, only triples whose *subject* belongs to this set
        contribute to source-relatedness — used by the typed summaries,
        where only untyped data nodes are merged (Section 6.1).
    target_nodes:
        Symmetric restriction on the *object* side for target-relatedness.
    """
    source_union = UnionFind()
    target_union = UnionFind()
    outgoing: Dict[Term, Set[URI]] = defaultdict(set)
    incoming: Dict[Term, Set[URI]] = defaultdict(set)

    for triple in graph.data_triples:
        source_union.add(triple.predicate)
        target_union.add(triple.predicate)
        if source_nodes is None or triple.subject in source_nodes:
            outgoing[triple.subject].add(triple.predicate)
        if target_nodes is None or triple.object in target_nodes:
            incoming[triple.object].add(triple.predicate)

    for properties in outgoing.values():
        iterator = iter(properties)
        first = next(iterator)
        for prop in iterator:
            source_union.union(first, prop)
    for properties in incoming.values():
        iterator = iter(properties)
        first = next(iterator)
        for prop in iterator:
            target_union.union(first, prop)

    source_cliques = [frozenset(group) for group in source_union.groups()]
    target_cliques = [frozenset(group) for group in target_union.groups()]

    source_by_root: Dict[URI, Clique] = {}
    for clique in source_cliques:
        root = source_union.find(next(iter(clique)))
        source_by_root[root] = clique
    target_by_root: Dict[URI, Clique] = {}
    for clique in target_cliques:
        root = target_union.find(next(iter(clique)))
        target_by_root[root] = clique

    source_clique_of: Dict[Term, Clique] = {}
    for node, properties in outgoing.items():
        root = source_union.find(next(iter(properties)))
        source_clique_of[node] = source_by_root[root]
    target_clique_of: Dict[Term, Clique] = {}
    for node, properties in incoming.items():
        root = target_union.find(next(iter(properties)))
        target_clique_of[node] = target_by_root[root]

    return PropertyCliques(source_cliques, target_cliques, source_clique_of, target_clique_of)


def property_distance(graph: RDFGraph, first: URI, second: URI, on_source: bool = True) -> Optional[int]:
    """Distance between two data properties within a clique (Definition 6).

    The distance is 0 when some resource carries both properties, and more
    generally the length of the shortest chain of resources linking them.
    Returns ``None`` when the two properties are not in the same clique
    (i.e. not related at all) or either is unused.
    """
    if first == second:
        return 0
    # Build the property co-occurrence graph: an edge between two properties
    # at distance 0 (some resource has/is value of both).
    co_occurrence: Dict[URI, Set[URI]] = defaultdict(set)
    grouping: Dict[Term, Set[URI]] = defaultdict(set)
    for triple in graph.data_triples:
        anchor = triple.subject if on_source else triple.object
        grouping[anchor].add(triple.predicate)
    for properties in grouping.values():
        for prop in properties:
            co_occurrence[prop] |= properties - {prop}

    if first not in co_occurrence or second not in co_occurrence:
        return None

    # Breadth-first search counts intermediate *edges*; the paper's distance
    # is the number of intermediate resources, i.e. edges - 1 beyond zero.
    queue = deque([(first, 0)])
    seen = {first}
    while queue:
        current, hops = queue.popleft()
        for neighbour in co_occurrence[current]:
            if neighbour == second:
                return hops
            if neighbour not in seen:
                seen.add(neighbour)
                queue.append((neighbour, hops + 1))
    return None


def saturated_clique(clique: Iterable[URI], schema: RDFSchema) -> Clique:
    """The paper's ``C+``: the clique plus all generalizations of its properties."""
    return frozenset(schema.saturated_property_set(clique))
