"""The :class:`Summary` result object.

A summary is itself an RDF graph (Definition 9) but, to support the formal
property checks and exploration use-cases, the object also carries the
*provenance* of the quotient:

* ``representative_of`` — the mapping from each data node of the input graph
  ``G`` to the summary node standing for it (the paper's ``rd`` map);
* ``extents`` — the inverse multi-map, from each summary node to the set of
  input nodes it represents (the paper's ``dr`` map).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from repro.model.graph import GraphStatistics, RDFGraph
from repro.model.terms import Literal, Term, URI

__all__ = ["Summary", "SummaryStatistics"]


class SummaryStatistics:
    """Size metrics of a summary, in the vocabulary of the paper's Section 7.

    ``data_node_count`` / ``all_node_count`` correspond to Figure 11, and
    ``data_edge_count`` / ``all_edge_count`` to Figure 12.
    """

    __slots__ = (
        "data_node_count",
        "class_node_count",
        "all_node_count",
        "data_edge_count",
        "type_edge_count",
        "schema_edge_count",
        "all_edge_count",
        "input_node_count",
        "input_edge_count",
    )

    def __init__(self, **values):
        for name in self.__slots__:
            setattr(self, name, values.get(name, 0))

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    @property
    def compression_ratio(self) -> float:
        """Summary edges divided by input edges (the paper's 0.028 figure).

        ``nan`` when the input edge count is unknown or zero — a ``0.0``
        here used to read as "perfect compression" in reports, which is the
        opposite of "no input to compress".
        """
        if not self.input_edge_count:
            return float("nan")
        return self.all_edge_count / self.input_edge_count

    def __repr__(self):
        return (
            f"SummaryStatistics(nodes={self.all_node_count}, edges={self.all_edge_count}, "
            f"ratio={self.compression_ratio:.6f})"
        )


class Summary:
    """The result of summarizing an RDF graph.

    Parameters
    ----------
    kind:
        The summary kind: ``"weak"``, ``"strong"``, ``"typed_weak"``,
        ``"typed_strong"`` or ``"type"``.
    graph:
        The summary RDF graph ``H_G``.
    representative_of:
        Mapping from input data nodes to their summary node.
    source_statistics:
        Statistics of the input graph, kept for compression reporting.
    """

    def __init__(
        self,
        kind: str,
        graph: RDFGraph,
        representative_of: Dict[Term, Term],
        source_statistics: Optional[GraphStatistics] = None,
        source_name: str = "",
    ):
        self.kind = kind
        self.graph = graph
        self.representative_of: Dict[Term, Term] = dict(representative_of)
        self.source_statistics = source_statistics
        self.source_name = source_name
        self.extents: Dict[Term, Set[Term]] = {}
        for input_node, summary_node in self.representative_of.items():
            self.extents.setdefault(summary_node, set()).add(input_node)

    def __repr__(self):
        return (
            f"<Summary kind={self.kind!r} nodes={len(self.graph.nodes())} "
            f"edges={len(self.graph)}>"
        )

    # ------------------------------------------------------------------
    # provenance
    # ------------------------------------------------------------------
    def representative(self, input_node: Term) -> Optional[Term]:
        """The summary node representing *input_node* (``None`` when unknown)."""
        return self.representative_of.get(input_node)

    def represents(self, summary_node: Term) -> bool:
        """``True`` when *summary_node* represents at least one input node."""
        return summary_node in self.extents

    def extent(self, summary_node: Term) -> Set[Term]:
        """The set of input nodes represented by *summary_node*."""
        return set(self.extents.get(summary_node, set()))

    def summary_data_nodes(self) -> Set[Term]:
        """The data nodes of the summary graph (the quotient nodes)."""
        return set(self.extents.keys())

    def literal_only_nodes(self) -> Set[Term]:
        """Summary nodes whose extent contains only literals.

        Useful when exploring a summary: such nodes stand purely for literal
        values (titles, dates, ...) of the input graph.
        """
        return {
            node
            for node, members in self.extents.items()
            if members and all(isinstance(member, Literal) for member in members)
        }

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def statistics(self) -> SummaryStatistics:
        """Node/edge counts of the summary, in the paper's Figure 11/12 terms."""
        graph_statistics = self.graph.statistics()
        data_nodes = self.graph.data_nodes()
        class_nodes = self.graph.class_nodes()
        input_nodes = self.source_statistics.node_count if self.source_statistics else 0
        input_edges = self.source_statistics.edge_count if self.source_statistics else 0
        return SummaryStatistics(
            data_node_count=len(data_nodes),
            class_node_count=len(class_nodes),
            all_node_count=len(self.graph.nodes()),
            data_edge_count=graph_statistics.data_edge_count,
            type_edge_count=graph_statistics.type_edge_count,
            schema_edge_count=graph_statistics.schema_edge_count,
            all_edge_count=graph_statistics.edge_count,
            input_node_count=input_nodes,
            input_edge_count=input_edges,
        )

    def compression_report(self) -> Dict[str, float]:
        """Ratio of summary size to input size (nodes and edges)."""
        statistics = self.statistics()
        input_nodes = statistics.input_node_count or 1
        input_edges = statistics.input_edge_count or 1
        return {
            "node_ratio": statistics.all_node_count / input_nodes,
            "edge_ratio": statistics.all_edge_count / input_edges,
            "summary_nodes": statistics.all_node_count,
            "summary_edges": statistics.all_edge_count,
            "input_nodes": statistics.input_node_count,
            "input_edges": statistics.input_edge_count,
        }
