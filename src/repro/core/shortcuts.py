"""Completeness shortcuts (Propositions 5 and 8) and their counter-examples.

The semantics of an RDF graph is its saturation ``G∞`` (Section 2.1), so the
summary a user ultimately wants is ``H(G∞)``.  Saturating a large graph is
expensive; Propositions 5 and 8 show that for the weak and strong summaries
one can instead:

1. summarize the (unsaturated) graph — the result is orders of magnitude
   smaller;
2. saturate that small summary;
3. summarize again.

i.e. ``W(G∞) = W((W_G)∞)`` and ``S(G∞) = S((S_G)∞)``.  The typed variants do
*not* enjoy this property (Propositions 7 and 10): domain/range constraints
may turn untyped resources into typed ones, which the typed summaries
represent differently.

:func:`shortcut_summary` implements the three-step pipeline,
:func:`direct_summary_of_saturation` the reference computation, and
:func:`completeness_holds` compares the two.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.builders import summarize
from repro.core.isomorphism import graphs_isomorphic
from repro.core.summary import Summary
from repro.model.graph import RDFGraph
from repro.schema.rdfs import RDFSchema
from repro.schema.saturation import saturate

__all__ = [
    "direct_summary_of_saturation",
    "shortcut_summary",
    "completeness_holds",
    "ShortcutComparison",
]


def direct_summary_of_saturation(
    graph: RDFGraph, kind: str, schema: Optional[RDFSchema] = None
) -> Summary:
    """Compute ``H(G∞)`` the direct (expensive) way: saturate, then summarize."""
    return summarize(saturate(graph, schema=schema), kind)


def shortcut_summary(
    graph: RDFGraph, kind: str, schema: Optional[RDFSchema] = None
) -> Summary:
    """Compute ``H((H_G)∞)``: summarize, saturate the small summary, re-summarize.

    For ``kind`` in ``{"weak", "strong"}`` this equals ``H(G∞)``
    (Propositions 5 and 8); for the typed kinds it may differ.
    """
    first = summarize(graph, kind)
    saturated_summary = saturate(first.graph, schema=schema)
    return summarize(saturated_summary, kind)


class ShortcutComparison:
    """Comparison of the direct and shortcut computations of ``H(G∞)``."""

    def __init__(self, kind: str, direct: Summary, shortcut: Summary, equivalent: bool):
        self.kind = kind
        self.direct = direct
        self.shortcut = shortcut
        self.equivalent = equivalent

    def __repr__(self):
        return (
            f"ShortcutComparison(kind={self.kind!r}, equivalent={self.equivalent}, "
            f"direct_edges={len(self.direct.graph)}, shortcut_edges={len(self.shortcut.graph)})"
        )


def completeness_holds(
    graph: RDFGraph, kind: str, schema: Optional[RDFSchema] = None
) -> ShortcutComparison:
    """Check whether ``H(G∞) ≅ H((H_G)∞)`` for *graph* and *kind*.

    Returns a :class:`ShortcutComparison` carrying both summaries so callers
    (tests, benchmarks) can report sizes as well as the boolean outcome.
    """
    direct = direct_summary_of_saturation(graph, kind, schema=schema)
    shortcut = shortcut_summary(graph, kind, schema=schema)
    equivalent = graphs_isomorphic(direct.graph, shortcut.graph)
    return ShortcutComparison(kind, direct, shortcut, equivalent)
