"""Node equivalence relations (Definitions 7, 8, 13, 16).

Each relation yields a partition of the *data nodes* of the input graph
(class and property nodes are never quotiented):

* **weak** ``≡W`` — nodes sharing a same non-empty source or target clique,
  directly or through a chain of other data nodes;
* **strong** ``≡S`` — nodes having the same source clique *and* the same
  target clique;
* **type-based** ``≡T`` — typed nodes having exactly the same set of types
  (untyped nodes are only equivalent to themselves);
* **untyped-weak** ``≡UW`` / **untyped-strong** ``≡US`` — the weak / strong
  relations restricted to untyped nodes (typed nodes stay untouched).

The partitions are represented as :class:`NodePartition`: a mapping from
each data node to a *block key*, where nodes with equal keys are equivalent.
Block keys are chosen to carry the information the representation functions
N and C need (the pair of clique sets, or the type set).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Set, Tuple

from repro.core.cliques import EMPTY_CLIQUE, Clique, PropertyCliques, compute_cliques
from repro.model.graph import RDFGraph
from repro.model.terms import Term, URI
from repro.utils.unionfind import UnionFind

__all__ = [
    "NodePartition",
    "weak_partition",
    "strong_partition",
    "type_partition",
    "untyped_weak_partition",
    "untyped_strong_partition",
]


class NodePartition:
    """A partition of data nodes into equivalence blocks.

    Attributes
    ----------
    block_of:
        Mapping from each data node to its block key.
    blocks:
        Mapping from block key to the set of member nodes.
    """

    def __init__(self, block_of: Dict[Term, Hashable]):
        self.block_of: Dict[Term, Hashable] = dict(block_of)
        self.blocks: Dict[Hashable, Set[Term]] = defaultdict(set)
        for node, key in self.block_of.items():
            self.blocks[key].add(node)

    def __len__(self) -> int:
        """Number of blocks."""
        return len(self.blocks)

    def __contains__(self, node: Term) -> bool:
        return node in self.block_of

    def key_of(self, node: Term) -> Hashable:
        """The block key of *node* (raises ``KeyError`` when unknown)."""
        return self.block_of[node]

    def equivalent(self, first: Term, second: Term) -> bool:
        """``True`` when both nodes belong to the same block."""
        return (
            first in self.block_of
            and second in self.block_of
            and self.block_of[first] == self.block_of[second]
        )

    def members(self, key: Hashable) -> Set[Term]:
        """The nodes of the block identified by *key*."""
        return set(self.blocks.get(key, set()))

    def node_count(self) -> int:
        """Total number of partitioned nodes."""
        return len(self.block_of)

    def is_valid_partition(self) -> bool:
        """Sanity check: blocks are disjoint and cover every node exactly once."""
        total = sum(len(members) for members in self.blocks.values())
        return total == len(self.block_of)


# ----------------------------------------------------------------------
# weak equivalence  (Definition 7, second part)
# ----------------------------------------------------------------------
def weak_partition(
    graph: RDFGraph, cliques: Optional[PropertyCliques] = None
) -> NodePartition:
    """Partition the data nodes of *graph* by weak equivalence ``≡W``.

    Nodes sharing a non-empty source clique or a non-empty target clique are
    merged, transitively.  Data nodes with neither (typed-only resources) all
    share the block key ``(frozenset(), frozenset())`` — they are represented
    by the single node ``Nτ`` in the weak summary (Section 4.1).
    """
    if cliques is None:
        cliques = compute_cliques(graph)

    union = UnionFind()
    anchor_for_source: Dict[Clique, Term] = {}
    anchor_for_target: Dict[Clique, Term] = {}
    data_nodes = graph.data_nodes()

    for node in data_nodes:
        union.add(node)
        source = cliques.source_clique_of(node)
        target = cliques.target_clique_of(node)
        if source:
            anchor = anchor_for_source.setdefault(source, node)
            union.union(anchor, node)
        if target:
            anchor = anchor_for_target.setdefault(target, node)
            union.union(anchor, node)

    # Block key: the pair (union of member target cliques, union of member
    # source cliques) — exactly the input of the representation function N.
    members_of_root: Dict[Term, Set[Term]] = defaultdict(set)
    for node in data_nodes:
        members_of_root[union.find(node)].add(node)

    block_of: Dict[Term, Hashable] = {}
    for root, members in members_of_root.items():
        target_union: Set[URI] = set()
        source_union: Set[URI] = set()
        for member in members:
            target_union |= cliques.target_clique_of(member)
            source_union |= cliques.source_clique_of(member)
        key = (frozenset(target_union), frozenset(source_union))
        for member in members:
            block_of[member] = key
    return NodePartition(block_of)


# ----------------------------------------------------------------------
# strong equivalence  (Definition 7, first part)
# ----------------------------------------------------------------------
def strong_partition(
    graph: RDFGraph, cliques: Optional[PropertyCliques] = None
) -> NodePartition:
    """Partition the data nodes of *graph* by strong equivalence ``≡S``.

    The block key is the node's ``(TC(r), SC(r))`` pair.
    """
    if cliques is None:
        cliques = compute_cliques(graph)
    block_of: Dict[Term, Hashable] = {}
    for node in graph.data_nodes():
        block_of[node] = cliques.clique_pair_of(node)
    return NodePartition(block_of)


# ----------------------------------------------------------------------
# type-based equivalence  (Definition 8)
# ----------------------------------------------------------------------
def type_partition(graph: RDFGraph) -> NodePartition:
    """Partition the data nodes of *graph* by type equivalence ``≡T``.

    Typed nodes with identical type sets share a block whose key is that
    frozen type set; every untyped node forms its own singleton block (keyed
    by the node itself), since ``≡T`` only relates nodes that *have* types.
    """
    block_of: Dict[Term, Hashable] = {}
    for node in graph.data_nodes():
        types = graph.types_of(node)
        if types:
            block_of[node] = ("types", frozenset(types))
        else:
            block_of[node] = ("untyped", node)
    return NodePartition(block_of)


# ----------------------------------------------------------------------
# untyped-weak / untyped-strong  (Definitions 13 and 16)
# ----------------------------------------------------------------------
def _restricted_partition(graph: RDFGraph, strong: bool) -> NodePartition:
    """Partition for the typed weak / typed strong summaries.

    ``TW_G = UW(T_G)`` and ``TS_G = US(T_G)`` (Definitions 14 and 17): typed
    resources are first grouped by their exact type set (the type-based
    summary ``T_G``), and the untyped-weak / untyped-strong equivalence is
    then applied to the untyped resources.  As in the paper's prototype
    (Section 6.1), the clique structures only track *untyped* sources and
    targets of the data properties: a property occurrence with a typed
    endpoint never causes two untyped nodes to be merged through that
    endpoint.
    """
    typed = graph.typed_resources()
    untyped_nodes = {node for node in graph.data_nodes() if node not in typed}
    cliques = compute_cliques(graph, source_nodes=untyped_nodes, target_nodes=untyped_nodes)

    block_of: Dict[Term, Hashable] = {}
    for node in graph.data_nodes():
        if node in typed:
            block_of[node] = ("types", frozenset(graph.types_of(node)))

    if strong:
        for node in untyped_nodes:
            block_of[node] = ("untyped", cliques.clique_pair_of(node))
        return NodePartition(block_of)

    # weak case: union untyped nodes sharing a non-empty (untyped) clique
    union = UnionFind()
    anchor_for_source: Dict[Clique, Term] = {}
    anchor_for_target: Dict[Clique, Term] = {}
    for node in untyped_nodes:
        union.add(node)
        source = cliques.source_clique_of(node)
        target = cliques.target_clique_of(node)
        if source:
            union.union(anchor_for_source.setdefault(source, node), node)
        if target:
            union.union(anchor_for_target.setdefault(target, node), node)

    members_of_root: Dict[Term, Set[Term]] = defaultdict(set)
    for node in untyped_nodes:
        members_of_root[union.find(node)].add(node)

    for root, members in members_of_root.items():
        target_union: Set[URI] = set()
        source_union: Set[URI] = set()
        for member in members:
            target_union |= cliques.target_clique_of(member)
            source_union |= cliques.source_clique_of(member)
        key = ("untyped", (frozenset(target_union), frozenset(source_union)))
        for member in members:
            block_of[member] = key
    return NodePartition(block_of)


def untyped_weak_partition(graph: RDFGraph) -> NodePartition:
    """Partition by untyped-weak equivalence ``≡UW`` (Definition 13)."""
    return _restricted_partition(graph, strong=False)


def untyped_strong_partition(graph: RDFGraph) -> NodePartition:
    """Partition by untyped-strong equivalence ``≡US`` (Definition 16)."""
    return _restricted_partition(graph, strong=True)
