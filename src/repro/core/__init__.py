"""Core contribution: property cliques, node equivalences and RDF summaries."""

from repro.core.bisimulation import (
    backward_bisimulation_partition,
    bisimulation_summary,
    forward_bisimulation_partition,
    full_bisimulation_partition,
)
from repro.core.builders import (
    SUMMARY_KINDS,
    strong_summary,
    summarize,
    type_summary,
    typed_strong_summary,
    typed_weak_summary,
    weak_summary,
)
from repro.core.encoded import (
    ENCODED_KINDS,
    EncodedSummaryEngine,
    encoded_summarize,
    summarize_graph_encoded,
)
from repro.core.cliques import (
    PropertyCliques,
    compute_cliques,
    property_distance,
    saturated_clique,
)
from repro.core.equivalence import (
    NodePartition,
    strong_partition,
    type_partition,
    untyped_strong_partition,
    untyped_weak_partition,
    weak_partition,
)
from repro.core.incremental import IncrementalWeakSummarizer, incremental_weak_summary
from repro.core.isomorphism import canonical_signature, graphs_isomorphic, summaries_equivalent
from repro.core.naming import SUMMARY_NS, SummaryNamer
from repro.core.properties import (
    RepresentativenessReport,
    check_accuracy_witness,
    check_fixpoint,
    check_representativeness,
    has_unique_data_properties,
    summary_homomorphism_holds,
)
from repro.core.quotient import build_quotient_summary
from repro.core.shortcuts import (
    ShortcutComparison,
    completeness_holds,
    direct_summary_of_saturation,
    shortcut_summary,
)
from repro.core.summary import Summary, SummaryStatistics

__all__ = [
    "backward_bisimulation_partition",
    "bisimulation_summary",
    "forward_bisimulation_partition",
    "full_bisimulation_partition",
    "SUMMARY_KINDS",
    "strong_summary",
    "summarize",
    "type_summary",
    "typed_strong_summary",
    "typed_weak_summary",
    "weak_summary",
    "ENCODED_KINDS",
    "EncodedSummaryEngine",
    "encoded_summarize",
    "summarize_graph_encoded",
    "PropertyCliques",
    "compute_cliques",
    "property_distance",
    "saturated_clique",
    "NodePartition",
    "strong_partition",
    "type_partition",
    "untyped_strong_partition",
    "untyped_weak_partition",
    "weak_partition",
    "IncrementalWeakSummarizer",
    "incremental_weak_summary",
    "canonical_signature",
    "graphs_isomorphic",
    "summaries_equivalent",
    "SUMMARY_NS",
    "SummaryNamer",
    "RepresentativenessReport",
    "check_accuracy_witness",
    "check_fixpoint",
    "check_representativeness",
    "has_unique_data_properties",
    "summary_homomorphism_holds",
    "build_quotient_summary",
    "ShortcutComparison",
    "completeness_holds",
    "direct_summary_of_saturation",
    "shortcut_summary",
    "Summary",
    "SummaryStatistics",
]
