"""Graph equality up to summary-node renaming.

Summary nodes are fresh URIs minted by the representation functions N and C,
so two summaries built by different code paths (e.g. ``W(G∞)`` versus
``W((W_G)∞)`` in Proposition 5) are equal only *up to a renaming* of those
minted nodes.  This module decides that equality:

1. a colour-refinement pass assigns each node a structural signature built
   from its fixed labels (URIs/literals that are *not* renameable), its
   adjacent predicates and the signatures of its neighbours;
2. if signatures alone induce a unique correspondence, the graphs are
   compared directly; otherwise a backtracking search matches the few
   ambiguous nodes.

Renameable nodes are, by default, the URIs minted in the summary namespace
and blank nodes; every other term must match exactly.
"""

from __future__ import annotations

import hashlib
from collections import defaultdict
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.naming import SUMMARY_NS
from repro.model.graph import RDFGraph
from repro.model.terms import BlankNode, Term, URI

__all__ = ["graphs_isomorphic", "summaries_equivalent", "canonical_signature"]


def _default_is_renameable(term: Term) -> bool:
    return isinstance(term, BlankNode) or (isinstance(term, URI) and term in SUMMARY_NS)


def _signatures(
    graph: RDFGraph, is_renameable: Callable[[Term], bool], rounds: int = 4
) -> Dict[Term, str]:
    """Colour refinement: per-node structural signatures."""
    nodes = graph.nodes()
    signature: Dict[Term, str] = {}
    for node in nodes:
        signature[node] = "?" if is_renameable(node) else f"fixed:{node.n3()}"

    for _ in range(rounds):
        updated: Dict[Term, str] = {}
        for node in nodes:
            outgoing = sorted(
                f"out|{t.predicate.value}|{signature[t.object]}" for t in graph.triples(subject=node)
            )
            incoming = sorted(
                f"in|{t.predicate.value}|{signature[t.subject]}" for t in graph.triples(obj=node)
            )
            payload = signature[node] + "##" + "|".join(outgoing) + "##" + "|".join(incoming)
            updated[node] = hashlib.sha1(payload.encode("utf-8")).hexdigest()
        # keep fixed nodes' original labels as prefix so they never collide
        # with renameable nodes that happen to have the same neighbourhood.
        for node in nodes:
            if is_renameable(node):
                signature[node] = updated[node]
            else:
                signature[node] = f"fixed:{node.n3()}|{updated[node]}"
    return signature


def canonical_signature(
    graph: RDFGraph, is_renameable: Callable[[Term], bool] = _default_is_renameable
) -> str:
    """A canonical string of *graph*, invariant under renaming of summary nodes.

    Two graphs with equal canonical signatures are isomorphic in the vast
    majority of cases (the signature is a complete invariant whenever colour
    refinement separates all renameable nodes, which holds for the quotient
    graphs produced by this library); use :func:`graphs_isomorphic` for a
    sound decision.
    """
    signatures = _signatures(graph, is_renameable)
    lines = sorted(
        f"{signatures[t.subject]} {t.predicate.value} {signatures[t.object]}" for t in graph
    )
    return hashlib.sha1("\n".join(lines).encode("utf-8")).hexdigest()


def graphs_isomorphic(
    first: RDFGraph,
    second: RDFGraph,
    is_renameable: Callable[[Term], bool] = _default_is_renameable,
    max_backtrack_nodes: int = 24,
) -> bool:
    """Decide whether two graphs are equal up to renaming of renameable nodes."""
    if len(first) != len(second):
        return False

    first_signatures = _signatures(first, is_renameable)
    second_signatures = _signatures(second, is_renameable)

    # group renameable nodes by signature; fixed nodes must match exactly.
    def grouping(graph: RDFGraph, signatures: Dict[Term, str]):
        fixed: Set[str] = set()
        renameable: Dict[str, List[Term]] = defaultdict(list)
        for node in graph.nodes():
            if is_renameable(node):
                renameable[signatures[node]].append(node)
            else:
                fixed.add(node.n3())
        return fixed, renameable

    first_fixed, first_groups = grouping(first, first_signatures)
    second_fixed, second_groups = grouping(second, second_signatures)
    if first_fixed != second_fixed:
        return False
    if set(first_groups) != set(second_groups):
        return False
    for signature, members in first_groups.items():
        if len(members) != len(second_groups[signature]):
            return False

    # Build the candidate mapping.  When every signature group is a singleton
    # the mapping is forced; otherwise backtrack within groups (small for
    # quotient graphs).
    forced: Dict[Term, Term] = {}
    ambiguous: List[Tuple[List[Term], List[Term]]] = []
    for signature, members in first_groups.items():
        others = second_groups[signature]
        if len(members) == 1:
            forced[members[0]] = others[0]
        else:
            ambiguous.append((members, others))

    total_ambiguous = sum(len(members) for members, _ in ambiguous)
    if total_ambiguous > max_backtrack_nodes:
        # fall back to signature-level equality (sound in practice for
        # quotient graphs; documented limitation).
        return canonical_signature(first, is_renameable) == canonical_signature(
            second, is_renameable
        )

    second_triple_set = set(t.as_tuple() for t in second)

    def rename(term: Term, mapping: Dict[Term, Term]) -> Term:
        if is_renameable(term):
            return mapping.get(term, term)
        return term

    def check_mapping(mapping: Dict[Term, Term]) -> bool:
        for triple in first:
            renamed = (
                rename(triple.subject, mapping),
                rename(triple.predicate, mapping),
                rename(triple.object, mapping),
            )
            if renamed not in second_triple_set:
                return False
        return True

    def backtrack(index: int, mapping: Dict[Term, Term], used: Set[Term]) -> bool:
        if index == len(ambiguous):
            return check_mapping(mapping)
        members, others = ambiguous[index]

        def assign(position: int) -> bool:
            if position == len(members):
                return backtrack(index + 1, mapping, used)
            node = members[position]
            for candidate in others:
                if candidate in used:
                    continue
                mapping[node] = candidate
                used.add(candidate)
                if assign(position + 1):
                    return True
                used.discard(candidate)
                del mapping[node]
            return False

        return assign(0)

    return backtrack(0, dict(forced), set(forced.values()))


def summaries_equivalent(first, second) -> bool:
    """Decide whether two :class:`~repro.core.summary.Summary` objects have
    isomorphic summary graphs (the notion used by the fixpoint and
    completeness propositions)."""
    return graphs_isomorphic(first.graph, second.graph)
