"""Disjoint-set (union-find) structure used by clique computation and
incremental node merging.

The paper's Algorithm 2 gradually merges summary data nodes whenever it
discovers that two nodes of ``G`` share a data property at the source or at
the target; that merging process is exactly a union-find over graph nodes
(respectively over data properties when computing cliques, Definition 5).
This implementation uses path compression and union by size, so a sequence of
``m`` operations over ``n`` elements runs in near-linear time — matching the
paper's claim that summarization stays linear in ``|G|_e``.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Set

__all__ = ["UnionFind"]


class UnionFind:
    """A disjoint-set forest over arbitrary hashable elements."""

    def __init__(self, elements: Iterable[Hashable] = ()):
        self._parent: Dict[Hashable, Hashable] = {}
        self._size: Dict[Hashable, int] = {}
        self._set_count = 0
        for element in elements:
            self.add(element)

    def __len__(self) -> int:
        """Number of elements tracked."""
        return len(self._parent)

    def __contains__(self, element: Hashable) -> bool:
        return element in self._parent

    @property
    def set_count(self) -> int:
        """Number of disjoint sets currently tracked."""
        return self._set_count

    def add(self, element: Hashable) -> bool:
        """Register *element* as a singleton set if unseen; return whether new."""
        if element in self._parent:
            return False
        self._parent[element] = element
        self._size[element] = 1
        self._set_count += 1
        return True

    def find(self, element: Hashable) -> Hashable:
        """Return the canonical representative of *element*'s set.

        The element is registered on the fly when unseen.
        """
        if element not in self._parent:
            self.add(element)
            return element
        root = element
        while self._parent[root] != root:
            root = self._parent[root]
        # path compression
        while self._parent[element] != root:
            self._parent[element], element = root, self._parent[element]
        return root

    def union(self, first: Hashable, second: Hashable) -> Hashable:
        """Merge the sets containing *first* and *second*; return the new root."""
        root_a = self.find(first)
        root_b = self.find(second)
        if root_a == root_b:
            return root_a
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        self._set_count -= 1
        return root_a

    def connected(self, first: Hashable, second: Hashable) -> bool:
        """``True`` when both elements are in the same set."""
        if first not in self._parent or second not in self._parent:
            return False
        return self.find(first) == self.find(second)

    def groups(self) -> List[Set[Hashable]]:
        """Return the current partition as a list of sets (deterministic order)."""
        buckets: Dict[Hashable, Set[Hashable]] = {}
        for element in self._parent:
            buckets.setdefault(self.find(element), set()).add(element)
        return [buckets[root] for root in sorted(buckets, key=repr)]

    def group_of(self, element: Hashable) -> Set[Hashable]:
        """Return the set containing *element* (empty set when unseen)."""
        if element not in self._parent:
            return set()
        root = self.find(element)
        return {other for other in self._parent if self.find(other) == root}

    def elements(self) -> Iterator[Hashable]:
        """Iterate over every registered element."""
        return iter(self._parent)
