"""Opt-in dynamic lock-order sanitizer (``REPRO_LOCKCHECK=1``).

PR 7's ingest-vs-respawn deadlock (entry write lock → full delta queue →
broadcaster holding a ship lock → re-ship blocked on the entry read lock)
survived review because nothing *watched the order in which threads take
locks*.  This module is that watcher: an instrumentation layer over
:class:`repro.utils.concurrency.ReadWriteLock` and every mutex created
through :func:`repro.utils.concurrency.named_lock` that maintains the
process-wide **lock-acquisition-order graph** — a directed edge ``A -> B``
whenever some thread acquires ``B`` while holding ``A`` — and checks, at
acquire time, that the new edge does not close a cycle.  A cycle means two
code paths take the same locks in opposite orders: a latent deadlock, even
if this particular run got lucky with timing.

Violations raise :class:`PotentialDeadlockError` carrying **both**
acquisition stacks: the stack of the acquire that closed the cycle and the
stack that established the conflicting order, so the report names the two
call sites that disagree rather than just the lock.

Same-thread re-acquisition of a lock already held (the non-reentrant
``ReadWriteLock`` contract, or any plain ``Lock``) is reported the same
way — that cycle has length one and needs no second thread.

Enablement
----------
Set ``REPRO_LOCKCHECK=1`` before the process starts (the cluster tier's
spawned workers inherit it) or call :func:`install` programmatically.
When not installed the hooks are a single ``is None`` test per acquire;
when installed each acquire captures a short stack and updates the graph,
roughly a 2-5x slowdown on lock-heavy paths — a sanitizer for CI and
debugging, not production.
"""

from __future__ import annotations

import threading
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

__all__ = [
    "PotentialDeadlockError",
    "LockOrderTracker",
    "TrackedLock",
    "install",
    "uninstall",
    "enabled",
    "reset",
    "get_installed_tracker",
]

#: Frames kept per captured acquisition stack (innermost last).
_STACK_LIMIT = 16


class PotentialDeadlockError(RuntimeError):
    """A lock acquisition would close a cycle in the lock-order graph.

    Attributes
    ----------
    cycle:
        Lock names along the cycle, starting and ending with the lock
        whose acquisition was rejected.
    this_stack:
        Formatted stack of the acquisition that closed the cycle.
    other_stack:
        Formatted stack of the earlier acquisition that established the
        conflicting order (or the original acquire, for re-entry).
    """

    def __init__(
        self, message: str, cycle: List[str], this_stack: str, other_stack: str
    ):
        super().__init__(message)
        self.cycle = list(cycle)
        self.this_stack = this_stack
        self.other_stack = other_stack

    def __str__(self) -> str:  # pragma: no cover - formatting only
        return (
            f"{self.args[0]}\n"
            f"--- acquisition closing the cycle ---\n{self.this_stack}"
            f"--- conflicting earlier acquisition ---\n{self.other_stack}"
        )


def _capture_stack() -> str:
    frames = traceback.extract_stack(limit=_STACK_LIMIT)
    # Drop the sanitizer's own frames so the report starts at caller code.
    while frames and frames[-1].filename == __file__:
        frames = frames[:-1]
    return "".join(traceback.format_list(frames))


@dataclass
class _Edge:
    """First observation of the order ``src -> dst``."""

    src: str
    dst: str
    thread_name: str
    #: Stack of the acquire of ``dst`` that created the edge.
    acquire_stack: str


@dataclass
class _Held:
    name: str
    mode: Optional[str]
    stack: str


@dataclass
class _ThreadState:
    held: List[_Held] = field(default_factory=list)
    pending: Dict[str, _Held] = field(default_factory=dict)


class LockOrderTracker:
    """Process-wide lock-order graph with acquire-time cycle detection."""

    def __init__(self):
        # Plain Lock on purpose: the tracker's own mutex must never be
        # tracked, and it is only ever held for graph bookkeeping.
        self._graph_lock = threading.Lock()
        self._edges: Dict[Tuple[str, str], _Edge] = {}
        self._successors: Dict[str, Set[str]] = {}
        self._local = threading.local()
        self.edges_recorded = 0
        self.violations = 0

    # -- thread-local state -------------------------------------------
    def _state(self) -> _ThreadState:
        state = getattr(self._local, "state", None)
        if state is None:
            state = _ThreadState()
            self._local.state = state
        return state

    def held_names(self) -> List[str]:
        """Names of locks the calling thread currently holds (oldest first)."""
        return [h.name for h in self._state().held]

    # -- graph queries ------------------------------------------------
    def _path(self, src: str, dst: str) -> Optional[List[str]]:
        """A path ``src -> ... -> dst`` in the order graph, if one exists."""
        if src == dst:
            return [src]
        stack = [(src, [src])]
        seen = {src}
        while stack:
            node, path = stack.pop()
            for succ in self._successors.get(node, ()):
                if succ == dst:
                    return path + [succ]
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, path + [succ]))
        return None

    def edges(self) -> List[Tuple[str, str]]:
        """Snapshot of the recorded order edges (for tests/diagnostics)."""
        with self._graph_lock:
            return sorted(self._edges)

    # -- acquire/release hooks ----------------------------------------
    def before_acquire(self, name: str, mode: Optional[str] = None) -> None:
        """Validate that acquiring *name* now cannot deadlock; may raise.

        Called **before** blocking on the lock, so a rejected acquisition
        never actually waits.
        """
        state = self._state()
        this_stack = _capture_stack()
        for held in state.held:
            if held.name == name:
                self.violations += 1
                raise PotentialDeadlockError(
                    f"re-entrant acquisition of non-reentrant lock {name!r} "
                    f"(mode={mode or 'lock'}) by thread "
                    f"{threading.current_thread().name!r}: already held "
                    f"since the first acquisition below",
                    cycle=[name, name],
                    this_stack=this_stack,
                    other_stack=held.stack,
                )
        with self._graph_lock:
            for held in state.held:
                if (held.name, name) in self._edges:
                    continue
                reverse = self._path(name, held.name)
                if reverse is not None:
                    first_edge = self._edges.get((reverse[0], reverse[1]))
                    other_stack = (
                        first_edge.acquire_stack if first_edge else "<unknown>"
                    )
                    other_thread = first_edge.thread_name if first_edge else "?"
                    cycle = [held.name, name] + reverse[1:]
                    self.violations += 1
                    raise PotentialDeadlockError(
                        f"lock-order cycle: acquiring {name!r} while holding "
                        f"{held.name!r} (thread "
                        f"{threading.current_thread().name!r}), but the "
                        f"opposite order { ' -> '.join(reverse) } was "
                        f"established by thread {other_thread!r}",
                        cycle=cycle,
                        this_stack=this_stack,
                        other_stack=other_stack,
                    )
                self._edges[(held.name, name)] = _Edge(
                    src=held.name,
                    dst=name,
                    thread_name=threading.current_thread().name,
                    acquire_stack=this_stack,
                )
                self._successors.setdefault(held.name, set()).add(name)
                self.edges_recorded += 1
        state.pending[name] = _Held(name=name, mode=mode, stack=this_stack)

    def acquired(self, name: str) -> None:
        """Record that the calling thread now holds *name*."""
        state = self._state()
        held = state.pending.pop(name, None)
        if held is None:
            held = _Held(name=name, mode=None, stack=_capture_stack())
        state.held.append(held)

    def abandoned(self, name: str) -> None:
        """Forget a pending acquire that did not complete (timeout)."""
        self._state().pending.pop(name, None)

    def released(self, name: str) -> None:
        """Record that the calling thread released *name*."""
        held = self._state().held
        for index in range(len(held) - 1, -1, -1):
            if held[index].name == name:
                del held[index]
                return

    def reset(self) -> None:
        """Clear the order graph (thread-local held sets are untouched)."""
        with self._graph_lock:
            self._edges.clear()
            self._successors.clear()


class TrackedLock:
    """A ``threading.Lock`` look-alike that feeds the order tracker.

    Produced by :func:`repro.utils.concurrency.named_lock` while lockcheck
    is installed; supports the subset of the ``Lock`` API the codebase
    uses (``with``, ``acquire(blocking, timeout)``, ``release``,
    ``locked``).
    """

    __slots__ = ("_lock", "name")

    def __init__(self, name: str):
        self._lock = threading.Lock()
        self.name = name

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        tracker = get_installed_tracker()
        if tracker is None:
            return self._lock.acquire(blocking, timeout)
        tracker.before_acquire(self.name, mode="lock")
        ok = self._lock.acquire(blocking, timeout)
        if ok:
            tracker.acquired(self.name)
        else:
            tracker.abandoned(self.name)
        return ok

    def release(self) -> None:
        self._lock.release()
        tracker = get_installed_tracker()
        if tracker is not None:
            tracker.released(self.name)

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"<TrackedLock {self.name} locked={self._lock.locked()}>"


_installed: Optional[LockOrderTracker] = None
_install_lock = threading.Lock()


def install() -> LockOrderTracker:
    """Arm the sanitizer process-wide (idempotent); returns the tracker."""
    global _installed
    from repro.utils import concurrency

    with _install_lock:
        if _installed is None:
            _installed = LockOrderTracker()
        concurrency.set_tracker(_installed)
        return _installed


def uninstall() -> None:
    """Disarm the sanitizer (the recorded graph is discarded)."""
    global _installed
    from repro.utils import concurrency

    with _install_lock:
        concurrency.set_tracker(None)
        _installed = None


def enabled() -> bool:
    """``True`` while the sanitizer is armed."""
    return _installed is not None


def reset() -> None:
    """Clear the recorded order graph, keeping the sanitizer armed."""
    if _installed is not None:
        _installed.reset()


def get_installed_tracker() -> Optional[LockOrderTracker]:
    return _installed
