"""Small timing utilities used by the experiment harness and the CLI."""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple, TypeVar

__all__ = ["Stopwatch", "TimingLog", "time_call"]

T = TypeVar("T")


class Stopwatch:
    """A context-manager stopwatch measuring wall-clock elapsed seconds.

    Example
    -------
    >>> with Stopwatch() as watch:
    ...     _ = sum(range(1000))
    >>> watch.elapsed >= 0.0
    True
    """

    def __init__(self):
        self._start: Optional[float] = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        if self._start is not None:
            self.elapsed = time.perf_counter() - self._start
        return False

    def restart(self) -> None:
        """Reset the stopwatch and start a new measurement."""
        self._start = time.perf_counter()
        self.elapsed = 0.0

    def lap(self) -> float:
        """Return the elapsed time since the last (re)start without stopping."""
        if self._start is None:
            return 0.0
        return time.perf_counter() - self._start


class TimingLog:
    """Accumulates named timing measurements for reporting.

    Each record is a ``(label, seconds)`` pair; ``summary()`` aggregates them
    by label (count, total, mean).
    """

    def __init__(self):
        self._records: List[Tuple[str, float]] = []

    def record(self, label: str, seconds: float) -> None:
        """Append a measurement."""
        self._records.append((label, seconds))

    def measure(self, label: str, callable_: Callable[[], T]) -> T:
        """Call *callable_*, record its duration under *label*, return its result."""
        with Stopwatch() as watch:
            result = callable_()
        self.record(label, watch.elapsed)
        return result

    def records(self) -> List[Tuple[str, float]]:
        """Return a copy of the raw measurements."""
        return list(self._records)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Aggregate measurements per label."""
        aggregated: Dict[str, Dict[str, float]] = {}
        for label, seconds in self._records:
            entry = aggregated.setdefault(label, {"count": 0, "total": 0.0})
            entry["count"] += 1
            entry["total"] += seconds
        for entry in aggregated.values():
            entry["mean"] = entry["total"] / entry["count"]
        return aggregated


def time_call(callable_: Callable[[], T]) -> Tuple[T, float]:
    """Call *callable_* and return ``(result, elapsed_seconds)``."""
    with Stopwatch() as watch:
        result = callable_()
    return result, watch.elapsed
