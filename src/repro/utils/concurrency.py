"""Concurrency primitives for the serving layer.

The serving layer (``repro.server``) runs many reader threads against
catalog entries that a writer occasionally updates in place.  The standard
library has no reader/writer lock, so this module provides the one the
per-entry locking discipline is built on:

* any number of threads may hold the **read** side simultaneously;
* the **write** side is exclusive against both readers and other writers;
* writers are *preferred*: once a writer is waiting, new readers queue
  behind it, so a steady query stream cannot starve ingest.

The lock is deliberately **non-reentrant** (a thread must not re-acquire
either side while holding one — the holder is not tracked, so a nested
acquire can deadlock behind a waiting writer).  The serving layer acquires
it exactly once per operation, at the outermost entry point
(:meth:`repro.service.service.QueryService.answer` takes the read side,
:meth:`repro.service.catalog.CatalogEntry.add_triples` the write side), and
never calls one of those entry points from inside another.  That contract
is machine-checked two ways: statically by the ``no-nested-rwlock`` rule of
``repro lint``, and dynamically by :mod:`repro.utils.lockcheck` when
``REPRO_LOCKCHECK=1`` is set (see :func:`named_lock` and the ``_tracker``
hook below).
"""

from __future__ import annotations

import itertools
import os
import threading
from contextlib import contextmanager

__all__ = ["ReadWriteLock", "named_lock", "set_tracker", "get_tracker"]

#: Active lock-order tracker installed by :mod:`repro.utils.lockcheck`,
#: or ``None`` (the default — zero per-acquire overhead).
_tracker = None

_rwlock_serial = itertools.count(1)


def set_tracker(tracker) -> None:
    """Install (or, with ``None``, remove) the lockcheck tracker.

    Called by :func:`repro.utils.lockcheck.install` / ``uninstall``; user
    code never calls this directly.
    """
    global _tracker
    _tracker = tracker


def get_tracker():
    """The installed lockcheck tracker, or ``None``."""
    return _tracker


class ReadWriteLock:
    """A writer-preferring readers/writer lock.

    Use the :meth:`read_locked` / :meth:`write_locked` context managers;
    the raw ``acquire_*`` / ``release_*`` pairs exist for callers that need
    to span a lock across non-lexical scopes.
    """

    __slots__ = (
        "_condition",
        "_readers",
        "_writer_active",
        "_writers_waiting",
        "name",
    )

    def __init__(self, name: str | None = None):
        self._condition = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0
        #: Stable identity used by lockcheck's lock-order graph; instance
        #: serials keep distinct locks distinct even after id() reuse.
        self.name = name or f"rwlock#{next(_rwlock_serial)}"

    # ------------------------------------------------------------------
    def acquire_read(self) -> None:
        tracker = _tracker
        if tracker is not None:
            tracker.before_acquire(self.name, mode="read")
        with self._condition:
            while self._writer_active or self._writers_waiting:
                self._condition.wait()
            self._readers += 1
        if tracker is not None:
            tracker.acquired(self.name)

    def release_read(self) -> None:
        with self._condition:
            self._readers -= 1
            if self._readers < 0:
                self._readers = 0
                raise RuntimeError("release_read() without a matching acquire_read()")
            if not self._readers:
                self._condition.notify_all()
        if _tracker is not None:
            _tracker.released(self.name)

    def acquire_write(self) -> None:
        tracker = _tracker
        if tracker is not None:
            tracker.before_acquire(self.name, mode="write")
        with self._condition:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._condition.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
        if tracker is not None:
            tracker.acquired(self.name)

    def release_write(self) -> None:
        with self._condition:
            if not self._writer_active:
                raise RuntimeError("release_write() without a matching acquire_write()")
            self._writer_active = False
            self._condition.notify_all()
        if _tracker is not None:
            _tracker.released(self.name)

    # ------------------------------------------------------------------
    def locked_for_read(self) -> bool:
        """``True`` while any thread holds the shared (read) side.

        Instantaneous introspection — the answer may be stale by the time
        the caller acts on it, so this is for diagnostics (lockcheck,
        ``__repr__``-style reporting), never for synchronisation.
        """
        with self._condition:
            return self._readers > 0

    def locked_for_write(self) -> bool:
        """``True`` while a thread holds the exclusive (write) side."""
        with self._condition:
            return self._writer_active

    # ------------------------------------------------------------------
    @contextmanager
    def read_locked(self):
        """Hold the shared (read) side for the duration of the block."""
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self):
        """Hold the exclusive (write) side for the duration of the block."""
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()

    def __repr__(self):
        with self._condition:
            return (
                f"<ReadWriteLock {self.name} readers={self._readers} "
                f"writer={'active' if self._writer_active else 'idle'} "
                f"waiting_writers={self._writers_waiting}>"
            )


def named_lock(name: str) -> threading.Lock:
    """A ``threading.Lock`` that participates in lockcheck when enabled.

    The serving and cluster tiers create their plain mutexes through this
    factory so the lock-order sanitizer can see them.  With no tracker
    installed (the default) this returns a bare ``threading.Lock`` — the
    production fast path is untouched.
    """
    if _tracker is None:
        return threading.Lock()
    from repro.utils import lockcheck

    return lockcheck.TrackedLock(name)


# Opt-in dynamic lock-order sanitizer: REPRO_LOCKCHECK=1 arms it for this
# process and (because the environment is inherited) every worker process
# spawned by the cluster tier.
if os.environ.get("REPRO_LOCKCHECK", "").strip().lower() in {"1", "true", "yes", "on"}:
    from repro.utils import lockcheck as _lockcheck_module

    _lockcheck_module.install()
