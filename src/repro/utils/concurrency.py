"""Concurrency primitives for the serving layer.

The serving layer (``repro.server``) runs many reader threads against
catalog entries that a writer occasionally updates in place.  The standard
library has no reader/writer lock, so this module provides the one the
per-entry locking discipline is built on:

* any number of threads may hold the **read** side simultaneously;
* the **write** side is exclusive against both readers and other writers;
* writers are *preferred*: once a writer is waiting, new readers queue
  behind it, so a steady query stream cannot starve ingest.

The lock is deliberately **non-reentrant** (a thread must not re-acquire
either side while holding one — the holder is not tracked, so a nested
acquire can deadlock behind a waiting writer).  The serving layer acquires
it exactly once per operation, at the outermost entry point
(:meth:`repro.service.service.QueryService.answer` takes the read side,
:meth:`repro.service.catalog.CatalogEntry.add_triples` the write side), and
never calls one of those entry points from inside another.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

__all__ = ["ReadWriteLock"]


class ReadWriteLock:
    """A writer-preferring readers/writer lock.

    Use the :meth:`read_locked` / :meth:`write_locked` context managers;
    the raw ``acquire_*`` / ``release_*`` pairs exist for callers that need
    to span a lock across non-lexical scopes.
    """

    __slots__ = ("_condition", "_readers", "_writer_active", "_writers_waiting")

    def __init__(self):
        self._condition = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # ------------------------------------------------------------------
    def acquire_read(self) -> None:
        with self._condition:
            while self._writer_active or self._writers_waiting:
                self._condition.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._condition:
            self._readers -= 1
            if self._readers < 0:
                self._readers = 0
                raise RuntimeError("release_read() without a matching acquire_read()")
            if not self._readers:
                self._condition.notify_all()

    def acquire_write(self) -> None:
        with self._condition:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._condition.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._condition:
            if not self._writer_active:
                raise RuntimeError("release_write() without a matching acquire_write()")
            self._writer_active = False
            self._condition.notify_all()

    # ------------------------------------------------------------------
    @contextmanager
    def read_locked(self):
        """Hold the shared (read) side for the duration of the block."""
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self):
        """Hold the exclusive (write) side for the duration of the block."""
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()

    def __repr__(self):
        with self._condition:
            return (
                f"<ReadWriteLock readers={self._readers} "
                f"writer={'active' if self._writer_active else 'idle'} "
                f"waiting_writers={self._writers_waiting}>"
            )
