"""Shared utilities: disjoint sets and timing helpers."""

from repro.utils.timing import Stopwatch, TimingLog, time_call
from repro.utils.unionfind import UnionFind

__all__ = ["Stopwatch", "TimingLog", "time_call", "UnionFind"]
