"""Shared utilities: disjoint sets, timing helpers, and lock discipline."""

from repro.utils.concurrency import ReadWriteLock, named_lock
from repro.utils.lockcheck import PotentialDeadlockError
from repro.utils.timing import Stopwatch, TimingLog, time_call
from repro.utils.unionfind import UnionFind

__all__ = [
    "PotentialDeadlockError",
    "ReadWriteLock",
    "Stopwatch",
    "TimingLog",
    "named_lock",
    "time_call",
    "UnionFind",
]
