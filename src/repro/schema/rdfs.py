"""RDF Schema model: the constraint triples of a graph, in closed form.

The paper (Figure 1, bottom) considers four kinds of RDFS constraints:
``rdfs:subClassOf`` (≺sc), ``rdfs:subPropertyOf`` (≺sp), ``rdfs:domain``
(←d) and ``rdfs:range`` (→r), interpreted under the open-world assumption.

:class:`RDFSchema` extracts those constraints from a graph's schema
component ``S_G`` and computes their *closure*:

* transitive closure of the subclass and subproperty hierarchies;
* propagation of domain/range up the subclass hierarchy
  (``p ←d c, c ≺sc d  ⟹  p ←d d``);
* inheritance of domain/range along subproperties
  (``p ≺sp q, q ←d c  ⟹  p ←d c``).

These closed relations are what the saturation engine and Lemma 1
(saturation vs. property cliques) consume.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Set

from repro.model.graph import RDFGraph
from repro.model.namespaces import (
    RDFS_DOMAIN,
    RDFS_RANGE,
    RDFS_SUBCLASSOF,
    RDFS_SUBPROPERTYOF,
)
from repro.model.terms import Term, URI
from repro.model.triple import Triple

__all__ = ["RDFSchema"]


def _transitive_closure(direct: Dict[Term, Set[Term]]) -> Dict[Term, Set[Term]]:
    """Compute, for every key, the set of all ancestors reachable through *direct*.

    A fixpoint loop rather than a memoized DFS: the DFS cached *truncated*
    ancestor sets for nodes visited inside a cycle (whichever cycle member
    the hash-ordered iteration entered first kept an incomplete set), which
    made saturation non-idempotent on ``subClassOf``/``subPropertyOf``
    cycles and dependent on ``PYTHONHASHSEED``.  The fixpoint is insensitive
    to iteration order, and on a cycle every member correctly reaches every
    other — including itself, which is exactly the ``C ≺sc C`` entailment
    rdfs11 derives.  Schemas are small (tens to hundreds of constraints),
    so the extra passes are irrelevant next to the instance-triple work.
    """
    closure: Dict[Term, Set[Term]] = {node: set(parents) for node, parents in direct.items()}
    changed = True
    while changed:
        changed = False
        for ancestors in closure.values():
            additions: Set[Term] = set()
            for parent in ancestors:
                parent_ancestors = closure.get(parent)
                if parent_ancestors is not None:
                    additions |= parent_ancestors
            if not additions <= ancestors:
                ancestors |= additions
                changed = True
    return closure


class RDFSchema:
    """The closed RDFS constraints of a graph.

    Parameters
    ----------
    schema_triples:
        The schema component ``S_G`` (any iterable of schema triples; non
        schema triples are ignored).
    """

    def __init__(self, schema_triples: Iterable[Triple] = ()):
        self._direct_subclass: Dict[Term, Set[Term]] = defaultdict(set)
        self._direct_subproperty: Dict[Term, Set[Term]] = defaultdict(set)
        self._direct_domain: Dict[Term, Set[Term]] = defaultdict(set)
        self._direct_range: Dict[Term, Set[Term]] = defaultdict(set)
        self._triples: Set[Triple] = set()
        for triple in schema_triples:
            self.add(triple)
        self._closed = False
        self._superclasses: Dict[Term, Set[Term]] = {}
        self._superproperties: Dict[Term, Set[Term]] = {}
        self._domains: Dict[Term, Set[Term]] = {}
        self._ranges: Dict[Term, Set[Term]] = {}

    @classmethod
    def from_graph(cls, graph: RDFGraph) -> "RDFSchema":
        """Build the schema from a graph's schema component."""
        return cls(graph.schema_triples)

    # ------------------------------------------------------------------
    def add(self, triple: Triple) -> bool:
        """Register one schema triple; returns ``False`` for non-schema triples."""
        predicate = triple.predicate
        if predicate == RDFS_SUBCLASSOF:
            self._direct_subclass[triple.subject].add(triple.object)
        elif predicate == RDFS_SUBPROPERTYOF:
            self._direct_subproperty[triple.subject].add(triple.object)
        elif predicate == RDFS_DOMAIN:
            self._direct_domain[triple.subject].add(triple.object)
        elif predicate == RDFS_RANGE:
            self._direct_range[triple.subject].add(triple.object)
        else:
            return False
        self._triples.add(triple)
        self._closed = False
        return True

    def __len__(self) -> int:
        return len(self._triples)

    def is_empty(self) -> bool:
        """``True`` when the graph carries no RDFS constraints."""
        return not self._triples

    def triples(self) -> Set[Triple]:
        """The original (direct, non-closed) schema triples."""
        return set(self._triples)

    # ------------------------------------------------------------------
    def _ensure_closure(self) -> None:
        if self._closed:
            return
        self._superclasses = _transitive_closure(self._direct_subclass)
        self._superproperties = _transitive_closure(self._direct_subproperty)

        # domains/ranges: start from the direct declarations, inherit from
        # superproperties, and propagate up the subclass hierarchy.
        domains: Dict[Term, Set[Term]] = defaultdict(set)
        ranges: Dict[Term, Set[Term]] = defaultdict(set)
        properties = (
            set(self._direct_domain)
            | set(self._direct_range)
            | set(self._direct_subproperty)
            | set(self._superproperties)
        )
        for prop in properties:
            related = {prop} | self._superproperties.get(prop, set())
            for candidate in related:
                domains[prop] |= self._direct_domain.get(candidate, set())
                ranges[prop] |= self._direct_range.get(candidate, set())
            for cls in list(domains[prop]):
                domains[prop] |= self._superclasses.get(cls, set())
            for cls in list(ranges[prop]):
                ranges[prop] |= self._superclasses.get(cls, set())
        self._domains = dict(domains)
        self._ranges = dict(ranges)
        self._closed = True

    # ------------------------------------------------------------------
    def superclasses(self, cls: Term) -> Set[Term]:
        """All (strict) superclasses of *cls* under the closed ≺sc relation."""
        self._ensure_closure()
        return set(self._superclasses.get(cls, set()))

    def superproperties(self, prop: Term) -> Set[Term]:
        """All (strict) superproperties of *prop* under the closed ≺sp relation."""
        self._ensure_closure()
        return set(self._superproperties.get(prop, set()))

    def domains(self, prop: Term) -> Set[Term]:
        """Closed set of domain classes of *prop* (including inherited ones)."""
        self._ensure_closure()
        return set(self._domains.get(prop, set()))

    def ranges(self, prop: Term) -> Set[Term]:
        """Closed set of range classes of *prop* (including inherited ones)."""
        self._ensure_closure()
        return set(self._ranges.get(prop, set()))

    def saturated_property_set(self, properties: Iterable[Term]) -> Set[Term]:
        """The paper's ``C+``: *properties* together with all their generalizations."""
        result: Set[Term] = set()
        for prop in properties:
            result.add(prop)
            result |= self.superproperties(prop)
        return result

    def classes(self) -> Set[Term]:
        """Every class mentioned by the schema constraints."""
        self._ensure_closure()
        result: Set[Term] = set()
        for subject, parents in self._direct_subclass.items():
            result.add(subject)
            result |= parents
        for values in self._direct_domain.values():
            result |= values
        for values in self._direct_range.values():
            result |= values
        for values in self._superclasses.values():
            result |= values
        return result

    def properties(self) -> Set[Term]:
        """Every property mentioned by ≺sp / ←d / →r constraints."""
        result: Set[Term] = set()
        for subject, parents in self._direct_subproperty.items():
            result.add(subject)
            result |= parents
        result |= set(self._direct_domain)
        result |= set(self._direct_range)
        return result

    # ------------------------------------------------------------------
    def closure_triples(self) -> Set[Triple]:
        """The schema triples entailed by the constraints (closed form).

        Includes the original triples plus the transitive subclass and
        subproperty edges and the propagated domain/range declarations.
        """
        self._ensure_closure()
        result: Set[Triple] = set(self._triples)
        for cls, ancestors in self._superclasses.items():
            for ancestor in ancestors:
                result.add(Triple(cls, RDFS_SUBCLASSOF, ancestor))
        for prop, ancestors in self._superproperties.items():
            for ancestor in ancestors:
                result.add(Triple(prop, RDFS_SUBPROPERTYOF, ancestor))
        for prop, classes in self._domains.items():
            for cls in classes:
                result.add(Triple(prop, RDFS_DOMAIN, cls))
        for prop, classes in self._ranges.items():
            for cls in classes:
                result.add(Triple(prop, RDFS_RANGE, cls))
        return result
